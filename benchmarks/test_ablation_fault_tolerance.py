"""Chaos bench: injected faults vs. the resilient crawl pipeline.

The paper attributes every failed visit to the *website* (Table 1), which
is only honest if measurement-side transients are retried away first.
This bench proves the pipeline earns that attribution: a seeded fault
plan injects resolver failures, connection resets, TLS handshake errors,
a bounded uplink outage and storage write faults into a full multi-OS
campaign, and the results — Table 1 success counts and the set of
locally-active sites (Table 5's input) — must be *identical* to a
fault-free run.  A second campaign is crash-killed mid-run and resumed
from its checkpoint database; the merged result must again be identical.
"""

import pytest

from repro.analysis import tables
from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.executor import ExecutorConfig
from repro.crawler.retry import RetryPolicy
from repro.faults import FaultKind, FaultPlan, FaultSpec, InjectedCrashError
from repro.storage.db import TelemetryStore
from repro.web.population import build_top_population

from .conftest import write_artifact

#: Four campaign runs (baseline, chaos, crash, resume), so a reduced
#: population — every seeded site plus 1% filler, like the other ablations.
CHAOS_SCALE = 0.01

#: max_attempts=4 masks any transient of depth <= 3; the plan's deepest
#: transient is depth 2, so every injected fault is recoverable.
RETRIES = RetryPolicy(max_attempts=4)

CHAOS_PLAN = FaultPlan(
    seed="chaos-bench",
    faults=(
        FaultSpec(kind=FaultKind.DNS, rate=0.05, times=2),
        FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=0.03),
        FaultSpec(kind=FaultKind.TLS, rate=0.02),
        FaultSpec(kind=FaultKind.OUTAGE, at_count=25, duration=2),
        FaultSpec(kind=FaultKind.STORAGE_WRITE, rate=0.02),
    ),
)

#: Same plan plus a hard crash partway through the second OS pass.
CRASH_PLAN = FaultPlan(
    seed=CHAOS_PLAN.seed,
    faults=CHAOS_PLAN.faults + (FaultSpec(kind=FaultKind.CRASH, at_count=400),),
)


def _table1(result):
    """The invariant slice of per-OS statistics (Table 1's columns)."""
    return {
        os_name: (stats.successes, stats.failures, dict(stats.errors or {}), stats.skipped)
        for os_name, stats in result.stats.items()
    }


def _fingerprints(result):
    return [finding_fingerprint(finding) for finding in result.findings]


@pytest.fixture(scope="module")
def chaos():
    population = build_top_population(2020, scale=CHAOS_SCALE)

    # Fault-free reference, with the connectivity gate on so both runs
    # execute the same code path.
    baseline = Campaign(check_connectivity=True).run(population)

    # The same campaign under the chaos plan with retries.
    chaotic_campaign = Campaign(
        retry_policy=RETRIES, fault_plan=CHAOS_PLAN, check_connectivity=True
    )
    chaotic = chaotic_campaign.run(population)

    # Crash-kill a persistent campaign mid-run, then resume it.
    store = TelemetryStore()
    crashing = Campaign(
        retry_policy=RETRIES,
        fault_plan=CRASH_PLAN,
        check_connectivity=True,
        store=store,
        checkpoint_every=50,
    )
    crashed_rows = None
    try:
        crashing.run(population)
    except InjectedCrashError:
        crashed_rows = len(store.visits(population.name))
    resuming = Campaign(
        retry_policy=RETRIES,
        fault_plan=CRASH_PLAN.without(FaultKind.CRASH),
        check_connectivity=True,
        store=store,
        checkpoint_every=50,
    )
    resumed = resuming.run(population, resume=True)

    return {
        "population": population,
        "baseline": baseline,
        "chaotic": chaotic,
        "injector": chaotic_campaign.last_injector,
        "crashed_rows": crashed_rows,
        "resumed": resumed,
    }


def test_fault_tolerance_ablation(benchmark, chaos):
    population = chaos["population"]
    baseline, chaotic = chaos["baseline"], chaos["chaotic"]
    injector, resumed = chaos["injector"], chaos["resumed"]
    crashed_rows = chaos["crashed_rows"]

    def render():
        lines = ["Fault-tolerance ablation (chaos plan vs. fault-free run)"]
        lines.append(f"  {'OS':<10}{'baseline':>10}{'chaos':>10}{'retried':>10}")
        for os_name in population.oses:
            base = baseline.stats[os_name]
            chao = chaotic.stats[os_name]
            lines.append(
                f"  {os_name:<10}{base.successes:>10}{chao.successes:>10}"
                f"{chao.retried:>10}"
            )
        injected = ", ".join(
            f"{kind.value}={count}"
            for kind, count in sorted(
                injector.injected.items(), key=lambda kv: kv[0].value
            )
        )
        lines.append(f"  injected: {injected}")
        lines.append(
            f"  crash after {crashed_rows} persisted visits; resume found "
            f"{len(resumed.findings)} sites (chaos run: {len(chaotic.findings)})"
        )
        return "\n".join(lines)

    text = benchmark(render)
    write_artifact("ablation_fault_tolerance.txt", text)
    print("\n" + text)

    # The plan actually fired — a chaos run that injects nothing proves
    # nothing about resilience.
    assert injector is not None and injector.injected_total() > 0
    for kind in (FaultKind.DNS, FaultKind.CONNECTION_RESET, FaultKind.OUTAGE):
        assert injector.injected.get(kind, 0) > 0, kind

    # Chaos invariance: injected transients never surface in Table 1 or
    # change the set (and content) of locally-active site findings.
    assert _table1(chaotic) == _table1(baseline)
    assert _fingerprints(chaotic) == _fingerprints(baseline)

    # The crash really interrupted the campaign partway through.
    total_visits = len(population.websites) * len(population.oses)
    assert crashed_rows is not None and 0 < crashed_rows < total_visits

    # Crash-and-resume equivalence: the merged run is indistinguishable
    # from one that was never interrupted.
    assert _table1(resumed) == _table1(chaotic)
    assert _fingerprints(resumed) == _fingerprints(chaotic)


# ---------------------------------------------------------------------------
# Supervised executor: worker-count invariance under hang/slow chaos
# ---------------------------------------------------------------------------

#: Hang cancellations cost real wall-clock time (the watchdog must catch
#: them), so the supervised ablation runs at half the chaos scale.
SUPERVISED_SCALE = 0.005

#: Short deadlines keep the bench fast; the determinism claims hold at
#: any setting because every fault is a pure function of the visit.
SUPERVISED_KNOBS = dict(
    wall_deadline_s=0.15,
    watchdog_poll_s=0.03,
    quarantine_after=3,
    handle_signals=False,
)

#: Allowance for thread-scheduling latency on loaded CI hosts: the
#: watchdog's *mechanism* bounds cancellation at one poll interval past
#: the deadline, and the assertion adds only scheduler jitter on top.
#: Generous on purpose — a regressed watchdog (polls an order of
#: magnitude slower, or stops rescuing at all) still blows through it.
SCHED_SLACK_S = 0.35

SUPERVISED_PLAN = FaultPlan(
    seed="supervised-chaos",
    faults=(
        # The sequential chaos kinds still fire (scoped per visit) ...
        FaultSpec(kind=FaultKind.DNS, rate=0.05, times=2),
        # ... plus the supervised-only kinds: transient hangs the
        # watchdog rescues and the executor re-attempts,
        FaultSpec(kind=FaultKind.HANG, rate=0.02, times=1),
        # deterministic failers (depth >= quarantine_after) that must be
        # dead-lettered exactly once,
        FaultSpec(kind=FaultKind.HANG, rate=0.005, times=10),
        # a slow stall inside the simulated budget (ridden out),
        FaultSpec(kind=FaultKind.SLOW, rate=0.05, duration=3_000),
        # and one past it (20s window + 10s stall > 25s deadline; the
        # stall is single-shot, so the re-attempt recovers).
        FaultSpec(kind=FaultKind.SLOW, rate=0.01, duration=10_000),
    ),
)

SUPERVISED_CRASH_PLAN = FaultPlan(
    seed=SUPERVISED_PLAN.seed,
    faults=SUPERVISED_PLAN.faults
    + (FaultSpec(kind=FaultKind.CRASH, at_count=400),),
)


def _supervised_campaign(workers, plan, store=None):
    return Campaign(
        retry_policy=RETRIES,
        fault_plan=plan,
        store=store,
        executor=ExecutorConfig(workers=workers, **SUPERVISED_KNOBS),
    )


@pytest.fixture(scope="module")
def supervised():
    population = build_top_population(2020, scale=SUPERVISED_SCALE)

    runs = {}
    for workers in (1, 8):
        store = TelemetryStore(serialized=True)
        campaign = _supervised_campaign(workers, SUPERVISED_PLAN, store)
        result = campaign.run(population)
        runs[workers] = {
            "campaign": campaign,
            "store": store,
            "result": result,
        }

    # Crash-kill a supervised 8-worker campaign mid-run, then resume it
    # (crash spec dropped, like a restarted operator) on the same store.
    crash_store = TelemetryStore(serialized=True, commit_every=25)
    crashing = _supervised_campaign(8, SUPERVISED_CRASH_PLAN, crash_store)
    crashed_rows = None
    try:
        crashing.run(population)
    except InjectedCrashError:
        crashed_rows = len(crash_store.visits(population.name))
    resuming = _supervised_campaign(
        8, SUPERVISED_CRASH_PLAN.without(FaultKind.CRASH), crash_store
    )
    resumed = resuming.run(population, resume=True)

    return {
        "population": population,
        "runs": runs,
        "crashed_rows": crashed_rows,
        "resumed": resumed,
        "crash_store": crash_store,
    }


def test_supervised_worker_invariance(benchmark, supervised):
    population = supervised["population"]
    solo, pooled = supervised["runs"][1], supervised["runs"][8]

    def render():
        lines = ["Supervised executor ablation (hang/slow chaos plan)"]
        lines.append(f"  {'workers':<9}{'hangs':>7}{'slow':>7}{'quarantined':>13}{'overshoot':>11}")
        for workers, run in sorted(supervised["runs"].items()):
            ex = run["campaign"].last_executor.stats
            lines.append(
                f"  {workers:<9}{ex.deadline_cancelled:>7}"
                f"{ex.deadline_exceeded + ex.slow_ridden_out:>7}"
                f"{ex.quarantined:>13}{ex.max_overshoot_s:>10.3f}s"
            )
        lines.append(
            f"  crash after {supervised['crashed_rows']} persisted visits; "
            f"resume found {len(supervised['resumed'].findings)} sites "
            f"(uninterrupted: {len(pooled['result'].findings)})"
        )
        return "\n".join(lines)

    text = benchmark(render)
    write_artifact("ablation_supervised_executor.txt", text)
    print("\n" + text)

    # The supervised fault kinds actually fired.
    injector = pooled["campaign"].last_injector
    assert injector.injected.get(FaultKind.HANG, 0) > 0
    assert injector.injected.get(FaultKind.SLOW, 0) > 0

    # Worker-count invariance, down to the rendered bytes: Table 1
    # (with its dynamic VISIT_DEADLINE column) and Table 5 agree.
    r1, r8 = solo["result"], pooled["result"]
    assert _table1(r1) == _table1(r8)
    assert _fingerprints(r1) == _fingerprints(r8)
    assert (
        tables.table_1(list(r1.stats.values())).text
        == tables.table_1(list(r8.stats.values())).text
    )
    assert tables.table_5(r1.findings).text == tables.table_5(r8.findings).text

    # The watchdog held its latency bound: no cancelled visit ran more
    # than one poll interval (plus scheduler jitter) past its deadline.
    for run in supervised["runs"].values():
        ex = run["campaign"].last_executor.stats
        assert ex.deadline_cancelled > 0
        assert ex.max_overshoot_s <= (
            SUPERVISED_KNOBS["watchdog_poll_s"] + SCHED_SLACK_S
        )

    # Every deterministic failer — and nothing else — is dead-lettered
    # exactly once per OS, with the configured failure count.
    failers = SUPERVISED_PLAN.schedule(
        FaultKind.HANG, [w.domain for w in population.websites]
    )
    expected = sorted(
        (domain, os_name)
        for domain, depth in failers.items()
        if depth >= SUPERVISED_KNOBS["quarantine_after"]
        for os_name in population.oses
    )
    assert expected, "plan selected no deterministic failers"
    for run in supervised["runs"].values():
        letters = run["store"].dead_letters(population.name)
        assert sorted((l.domain, l.os_name) for l in letters) == expected
        assert all(
            l.failures == SUPERVISED_KNOBS["quarantine_after"] for l in letters
        )


def test_supervised_crash_resume_equivalence(supervised):
    """A crash-killed 8-worker campaign resumes to the uninterrupted result."""
    population = supervised["population"]
    uninterrupted = supervised["runs"][8]["result"]
    resumed = supervised["resumed"]
    crashed_rows = supervised["crashed_rows"]

    total_visits = len(population.websites) * len(population.oses)
    assert crashed_rows is not None and 0 < crashed_rows < total_visits

    assert _table1(resumed) == _table1(uninterrupted)
    assert _fingerprints(resumed) == _fingerprints(uninterrupted)

    # The dead-letter queue converged to the same set, still once each.
    merged = supervised["crash_store"].dead_letters(population.name)
    reference = supervised["runs"][8]["store"].dead_letters(population.name)
    assert [
        (l.domain, l.os_name, l.failures) for l in merged
    ] == [(l.domain, l.os_name, l.failures) for l in reference]


def test_fault_schedule_determinism(chaos):
    """The same plan (even JSON round-tripped) fires at the same sites."""
    population = chaos["population"]
    domains = [website.domain for website in population.websites]
    schedule = CHAOS_PLAN.schedule(FaultKind.DNS, domains)
    round_tripped = FaultPlan.loads(CHAOS_PLAN.dumps())
    assert round_tripped.schedule(FaultKind.DNS, domains) == schedule
    assert schedule, "chaos plan selected no DNS fault sites"
