"""Chaos bench: injected faults vs. the resilient crawl pipeline.

The paper attributes every failed visit to the *website* (Table 1), which
is only honest if measurement-side transients are retried away first.
This bench proves the pipeline earns that attribution: a seeded fault
plan injects resolver failures, connection resets, TLS handshake errors,
a bounded uplink outage and storage write faults into a full multi-OS
campaign, and the results — Table 1 success counts and the set of
locally-active sites (Table 5's input) — must be *identical* to a
fault-free run.  A second campaign is crash-killed mid-run and resumed
from its checkpoint database; the merged result must again be identical.
"""

import pytest

from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.retry import RetryPolicy
from repro.faults import FaultKind, FaultPlan, FaultSpec, InjectedCrashError
from repro.storage.db import TelemetryStore
from repro.web.population import build_top_population

from .conftest import write_artifact

#: Four campaign runs (baseline, chaos, crash, resume), so a reduced
#: population — every seeded site plus 1% filler, like the other ablations.
CHAOS_SCALE = 0.01

#: max_attempts=4 masks any transient of depth <= 3; the plan's deepest
#: transient is depth 2, so every injected fault is recoverable.
RETRIES = RetryPolicy(max_attempts=4)

CHAOS_PLAN = FaultPlan(
    seed="chaos-bench",
    faults=(
        FaultSpec(kind=FaultKind.DNS, rate=0.05, times=2),
        FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=0.03),
        FaultSpec(kind=FaultKind.TLS, rate=0.02),
        FaultSpec(kind=FaultKind.OUTAGE, at_count=25, duration=2),
        FaultSpec(kind=FaultKind.STORAGE_WRITE, rate=0.02),
    ),
)

#: Same plan plus a hard crash partway through the second OS pass.
CRASH_PLAN = FaultPlan(
    seed=CHAOS_PLAN.seed,
    faults=CHAOS_PLAN.faults + (FaultSpec(kind=FaultKind.CRASH, at_count=400),),
)


def _table1(result):
    """The invariant slice of per-OS statistics (Table 1's columns)."""
    return {
        os_name: (stats.successes, stats.failures, dict(stats.errors or {}), stats.skipped)
        for os_name, stats in result.stats.items()
    }


def _fingerprints(result):
    return [finding_fingerprint(finding) for finding in result.findings]


@pytest.fixture(scope="module")
def chaos():
    population = build_top_population(2020, scale=CHAOS_SCALE)

    # Fault-free reference, with the connectivity gate on so both runs
    # execute the same code path.
    baseline = Campaign(check_connectivity=True).run(population)

    # The same campaign under the chaos plan with retries.
    chaotic_campaign = Campaign(
        retry_policy=RETRIES, fault_plan=CHAOS_PLAN, check_connectivity=True
    )
    chaotic = chaotic_campaign.run(population)

    # Crash-kill a persistent campaign mid-run, then resume it.
    store = TelemetryStore()
    crashing = Campaign(
        retry_policy=RETRIES,
        fault_plan=CRASH_PLAN,
        check_connectivity=True,
        store=store,
        checkpoint_every=50,
    )
    crashed_rows = None
    try:
        crashing.run(population)
    except InjectedCrashError:
        crashed_rows = len(store.visits(population.name))
    resuming = Campaign(
        retry_policy=RETRIES,
        fault_plan=CRASH_PLAN.without(FaultKind.CRASH),
        check_connectivity=True,
        store=store,
        checkpoint_every=50,
    )
    resumed = resuming.run(population, resume=True)

    return {
        "population": population,
        "baseline": baseline,
        "chaotic": chaotic,
        "injector": chaotic_campaign.last_injector,
        "crashed_rows": crashed_rows,
        "resumed": resumed,
    }


def test_fault_tolerance_ablation(benchmark, chaos):
    population = chaos["population"]
    baseline, chaotic = chaos["baseline"], chaos["chaotic"]
    injector, resumed = chaos["injector"], chaos["resumed"]
    crashed_rows = chaos["crashed_rows"]

    def render():
        lines = ["Fault-tolerance ablation (chaos plan vs. fault-free run)"]
        lines.append(f"  {'OS':<10}{'baseline':>10}{'chaos':>10}{'retried':>10}")
        for os_name in population.oses:
            base = baseline.stats[os_name]
            chao = chaotic.stats[os_name]
            lines.append(
                f"  {os_name:<10}{base.successes:>10}{chao.successes:>10}"
                f"{chao.retried:>10}"
            )
        injected = ", ".join(
            f"{kind.value}={count}"
            for kind, count in sorted(
                injector.injected.items(), key=lambda kv: kv[0].value
            )
        )
        lines.append(f"  injected: {injected}")
        lines.append(
            f"  crash after {crashed_rows} persisted visits; resume found "
            f"{len(resumed.findings)} sites (chaos run: {len(chaotic.findings)})"
        )
        return "\n".join(lines)

    text = benchmark(render)
    write_artifact("ablation_fault_tolerance.txt", text)
    print("\n" + text)

    # The plan actually fired — a chaos run that injects nothing proves
    # nothing about resilience.
    assert injector is not None and injector.injected_total() > 0
    for kind in (FaultKind.DNS, FaultKind.CONNECTION_RESET, FaultKind.OUTAGE):
        assert injector.injected.get(kind, 0) > 0, kind

    # Chaos invariance: injected transients never surface in Table 1 or
    # change the set (and content) of locally-active site findings.
    assert _table1(chaotic) == _table1(baseline)
    assert _fingerprints(chaotic) == _fingerprints(baseline)

    # The crash really interrupted the campaign partway through.
    total_visits = len(population.websites) * len(population.oses)
    assert crashed_rows is not None and 0 < crashed_rows < total_visits

    # Crash-and-resume equivalence: the merged run is indistinguishable
    # from one that was never interrupted.
    assert _table1(resumed) == _table1(chaotic)
    assert _fingerprints(resumed) == _fingerprints(chaotic)


def test_fault_schedule_determinism(chaos):
    """The same plan (even JSON round-tripped) fires at the same sites."""
    population = chaos["population"]
    domains = [website.domain for website in population.websites]
    schedule = CHAOS_PLAN.schedule(FaultKind.DNS, domains)
    round_tripped = FaultPlan.loads(CHAOS_PLAN.dumps())
    assert round_tripped.schedule(FaultKind.DNS, domains) == schedule
    assert schedule, "chaos plan selected no DNS fault sites"
