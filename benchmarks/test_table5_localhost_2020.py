"""Bench: regenerate Table 5 — 2020 localhost requesters by reason.

Paper targets: 107 sites total — 35 fraud detection (WSS, 14 ports,
Windows-only), 10 bot detection (HTTP, 7 ports, Windows-only), 12 native
application, 45 developer error (Table 11), 5 unknown.
"""

from collections import Counter

from repro.analysis import tables
from repro.core.signatures import BehaviorClass

from .conftest import write_artifact


def test_table5_regeneration(benchmark, top2020):
    _, result = top2020
    rendered = benchmark(tables.table_5, result.findings)
    write_artifact("table5.txt", rendered.text)
    print("\n" + rendered.text)

    assert len(rendered.rows) == 107
    counts = Counter(row["behavior"] for row in rendered.rows)
    assert counts[BehaviorClass.FRAUD_DETECTION] == 35
    assert counts[BehaviorClass.BOT_DETECTION] == 10
    assert counts[BehaviorClass.NATIVE_APPLICATION] == 12
    assert counts[BehaviorClass.DEVELOPER_ERROR] == 45
    assert counts[BehaviorClass.UNKNOWN] == 5

    fraud_rows = [
        r for r in rendered.rows if r["behavior"] is BehaviorClass.FRAUD_DETECTION
    ]
    for row in fraud_rows:
        assert row["schemes"] == ["wss"]
        assert len(row["ports"]) == 14
        assert row["oses"] == ("windows",)

    bot_rows = [
        r for r in rendered.rows if r["behavior"] is BehaviorClass.BOT_DETECTION
    ]
    for row in bot_rows:
        assert row["schemes"] == ["http"]
        assert len(row["ports"]) == 7
        assert row["oses"] == ("windows",)

    domains = {row["domain"] for row in rendered.rows}
    for expected in (
        "ebay.com", "fidelity.com", "betfair.com", "sbi.co.in",
        "faceit.com", "samsungcard.com", "hola.org", "rkn.gov.ru",
    ):
        assert expected in domains
