"""Bench: regenerate Table 10 — 2021 LAN requesters.

Paper targets: 8 sites; unib.ac.id is the only site making LAN requests
in both 2020 and 2021; highest-ranked at 4847 (blogsky.com, another
censorship-blackhole case); ports include 5000, 8450 and 1117 beside
80/443.
"""

from repro.analysis import tables
from repro.core.addresses import Locality

from .conftest import write_artifact


def test_table10_regeneration(benchmark, top2021, top2020, full_scale):
    _, result_2021 = top2021
    _, result_2020 = top2020
    rendered = benchmark(tables.table_10, result_2021.findings)
    write_artifact("table10.txt", rendered.text)
    print("\n" + rendered.text)

    assert len(rendered.rows) == 8
    domains_2021 = {row["domain"] for row in rendered.rows}
    domains_2020 = {
        f.domain for f in result_2020.findings if f.has_lan_activity
    }
    assert domains_2021 & domains_2020 == {"unib.ac.id"}

    all_ports = {p for row in rendered.rows for p in row["ports"]}
    assert {5000, 8450, 1117} <= all_ports

    if full_scale:
        assert rendered.rows[0]["domain"] == "blogsky.com"
        assert rendered.rows[0]["rank"] == 4847

    # 2021 crawled Windows+Linux only.
    for finding in result_2021.findings:
        assert "mac" not in finding.oses_with_activity(Locality.LAN)
