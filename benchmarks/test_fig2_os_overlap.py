"""Bench: regenerate Figure 2 — OS overlap (Venn) of localhost sites.

Paper targets (2a, 2020 top-100K): Windows 92 / Linux 54 / Mac 54,
Windows-exclusive 48, Linux-exclusive 2, Mac-exclusive 5, all-three 41.
(2b, malicious): per-OS totals implied by Table 2 (W 97 / L 124 / M 84).
"""

from repro.analysis import figures

from .conftest import write_artifact


def test_figure2a_regeneration(benchmark, top2020):
    _, result = top2020
    fig = benchmark(figures.figure_2, result.findings)
    write_artifact("figure2a.txt", fig.text)
    print("\n" + fig.text)

    assert fig.data["total"] == 107
    assert fig.data["per_os"] == {"windows": 92, "linux": 54, "mac": 54}
    regions = fig.data["regions"]
    assert regions["windows"] == 48
    assert regions["linux"] == 2
    assert regions["mac"] == 5
    assert regions["linux+windows"] == 3
    assert regions["linux+mac"] == 8
    assert regions["linux+mac+windows"] == 41
    assert "mac+windows" not in regions


def test_figure2b_regeneration(benchmark, malicious):
    _, result = malicious
    fig = benchmark(figures.figure_2, result.findings, name="Figure 2b")
    write_artifact("figure2b.txt", fig.text)
    print("\n" + fig.text)

    assert fig.data["total"] == 148
    assert fig.data["per_os"] == {"windows": 97, "linux": 124, "mac": 84}
