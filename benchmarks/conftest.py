"""Benchmark fixtures: full-scale campaigns, run once per session.

The three crawl campaigns (top-100K 2020 on three OSes, top-100K 2021 on
two, ~146K malicious on three) are executed at **full scale** exactly once
and shared by every bench.  Each bench then measures its analysis/render
step and writes the regenerated table/figure to ``benchmarks/output/``.

``REPRO_BENCH_SCALE`` (default 1.0) can shrink the populations for quick
iterations; paper-exact assertions are only enforced at full scale.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.crawler.campaign import run_campaign
from repro.web.population import (
    build_malicious_population,
    build_top_population,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL_SCALE = SCALE >= 0.999

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def write_artifact(name: str, text: str) -> None:
    """Persist a regenerated table/figure next to the bench results."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def top2020():
    population = build_top_population(2020, scale=SCALE)
    result = run_campaign(population)
    return population, result


@pytest.fixture(scope="session")
def top2021(top2020):
    population_2020, _ = top2020
    population = build_top_population(
        2021, scale=SCALE, base_list=population_2020.top_list
    )
    result = run_campaign(population)
    return population, result


@pytest.fixture(scope="session")
def malicious():
    population = build_malicious_population(scale=SCALE)
    result = run_campaign(population)
    return population, result


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL_SCALE
