"""Ablation bench: fingerprinting entropy of local scans (§5.2).

The paper argues the anti-abuse host profiling "can naturally be
extended for user fingerprinting", with localhost services and LAN
devices serving as "high entropy features".  This bench measures the
Shannon entropy and uniqueness a scan observable yields over a synthetic
user population, for three scan scopes: the two deployed profiles and a
greedy scan of every service in the pool.
"""

from repro.core.fingerprint import (
    DEFAULT_SERVICE_POOL,
    run_study,
    synthetic_host_population,
)
from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS

from .conftest import write_artifact

POPULATION = 5_000


def test_fingerprint_entropy_ablation(benchmark):
    pool = [port for port, _ in DEFAULT_SERVICE_POOL]
    rates = [rate for _, rate in DEFAULT_SERVICE_POOL]
    profiles = synthetic_host_population(
        POPULATION, service_pool=pool, adoption=rates
    )

    def run_studies():
        return {
            "ThreatMetrix profile (14 ports)": run_study(
                profiles, THREATMETRIX_PORTS
            ),
            "BIG-IP ASM profile (7 ports)": run_study(
                profiles, BIGIP_ASM_PORTS
            ),
            "greedy tracker (all pooled services)": run_study(profiles, pool),
        }

    studies = benchmark(run_studies)

    lines = [
        f"Fingerprinting-entropy ablation over {POPULATION} hosts",
        f"{'scan scope':<40}{'entropy':>9}{'unique':>8}{'median set':>12}",
    ]
    for label, study in studies.items():
        lines.append(
            f"{label:<40}{study.entropy_bits():>7.2f}b"
            f"{study.unique_fraction():>8.1%}"
            f"{study.median_anonymity_set():>12.0f}"
        )
    text = "\n".join(lines)
    write_artifact("ablation_fingerprint.txt", text)
    print("\n" + text)

    tm = studies["ThreatMetrix profile (14 ports)"]
    asm = studies["BIG-IP ASM profile (7 ports)"]
    greedy = studies["greedy tracker (all pooled services)"]

    # The deployed profiles already leak identifying signal...
    assert tm.entropy_bits() > 0.3
    # ...and a tracker that widens the scan gains much more (§5.2's
    # warning): more ports, more entropy, smaller anonymity sets.
    assert greedy.entropy_bits() > tm.entropy_bits() > asm.entropy_bits()
    assert greedy.entropy_bits() > 2.0
    assert greedy.median_anonymity_set() < tm.median_anonymity_set()
