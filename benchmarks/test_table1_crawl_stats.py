"""Bench: regenerate Table 1 — crawl statistics for all eight crawls.

Paper targets (Table 1): per-(crawl, OS) success/failure counts and the
failure-type breakdown.  At full scale the top-100K rows must match the
paper **exactly**; the malicious rows match the per-OS totals exactly and
the per-type counts to within rounding of the per-category allocation.
"""

from repro.analysis import tables
from repro.web import seeds as S

from .conftest import write_artifact


def _all_stats(top2020, top2021, malicious):
    _, result_2020 = top2020
    _, result_2021 = top2021
    _, result_malicious = malicious
    return (
        list(result_2020.stats.values())
        + list(result_2021.stats.values())
        + list(result_malicious.stats.values())
    )


def test_table1_regeneration(benchmark, top2020, top2021, malicious, full_scale):
    stats = _all_stats(top2020, top2021, malicious)
    rendered = benchmark(tables.table_1, stats)
    write_artifact("table1.txt", rendered.text)
    print("\n" + rendered.text)

    if not full_scale:
        return
    for stat in stats:
        key = (stat.crawl, stat.os_name)
        successes, error_counts = S.TABLE1_TARGETS[key]
        assert stat.total in (S.TOP_LIST_SIZE, S.MALICIOUS_TOTAL)
        if stat.crawl.startswith("top"):
            assert stat.successes == successes, key
            assert stat.errors == error_counts, key
        else:
            # Malicious: per-OS totals exact; per-type within the rounding
            # slack of the per-category proportional allocation.
            assert stat.successes == successes, key
            assert stat.failures == sum(error_counts.values()), key
            for bucket, expected in error_counts.items():
                measured = (stat.errors or {}).get(bucket, 0)
                assert abs(measured - expected) <= max(10, expected * 0.02), (
                    key,
                    bucket,
                )
