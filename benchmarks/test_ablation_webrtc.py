"""Ablation: WebRTC leak channel — byte-stability and detector overhead.

Two claims about the WebRTC/mDNS subsystem are pinned here:

* **byte-stability** — the era leak tables (5W/6W) and the per-site
  finding fingerprints are identical across repeated runs, across
  supervised worker counts, and across sharded-fabric runs, for both
  policy eras; the era comparison itself (pre-m74 leaks strictly more
  than mdns) is asserted, not assumed.
* **channel-off overhead** — a detector built with
  ``webrtc_channel=False`` must cost no more than 1% extra wall time on
  a corpus with no WebRTC traffic at all (the dispatch is one flow-flag
  test; nobody crawling without the channel should pay for it).

The resulting ``BENCH_webrtc.json`` is a ``repro-metrics-v1`` snapshot
with both figures in ``meta``, written like every other bench artifact.
"""

import gc
import json
import os
import tempfile
import time

from repro import obs
from repro.analysis import tables
from repro.core.detector import LocalTrafficDetector
from repro.crawler.campaign import Campaign, finding_fingerprint, run_campaign
from repro.crawler.executor import ExecutorConfig
from repro.crawler.fabric import CrawlFabric, FabricConfig
from repro.crawler.shard import PopulationSpec
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.export import snapshot
from repro.web.population import build_top_population
from repro.webrtc.ice import POLICIES

from .conftest import write_artifact

#: The webrtc seeds all live in the top slice, so a small scale keeps the
#: bench quick while still exercising both leak tables on every era.
WEBRTC_SCALE = 0.001
WORKER_COUNTS = (1, 4)
SHARD_COUNT = 2

#: Timing repetitions for the overhead measurement (paired, median-of-N).
TIMING_REPS = 31
#: Corpus multiplier: detection passes long enough to dwarf timer jitter.
TIMING_CORPUS_REPEAT = 4

#: Channel-off overhead budget; the 1% default is the subsystem's claim,
#: relaxable for shared/noisy CI runners (cf. REPRO_OBS_OVERHEAD_BUDGET).
OVERHEAD_BUDGET = float(os.environ.get("REPRO_WEBRTC_OVERHEAD_BUDGET", "0.01"))


def _campaign(policy, *, workers=1):
    population = build_top_population(
        2020, scale=WEBRTC_SCALE, webrtc_policy=policy
    )
    if workers == 1:
        return run_campaign(population)
    return Campaign(executor=ExecutorConfig(workers=workers)).run(population)


def _era_texts(findings):
    return (
        tables.table_5w(findings).text,
        tables.table_6w(findings).text,
    )


def _fingerprints(findings):
    return [finding_fingerprint(f) for f in findings]


def _stability(policy) -> dict:
    baseline = _campaign(policy)
    texts = _era_texts(baseline.findings)
    prints = _fingerprints(baseline.findings)

    runs = 0
    for _ in range(2):  # reruns, serial
        again = _campaign(policy)
        assert _era_texts(again.findings) == texts
        assert _fingerprints(again.findings) == prints
        runs += 1
    for workers in WORKER_COUNTS[1:]:  # supervised worker pool
        pooled = _campaign(policy, workers=workers)
        assert _era_texts(pooled.findings) == texts
        assert _fingerprints(pooled.findings) == prints
        runs += 1

    # Masked-fault equivalence: striking both webrtc seams at rate 1.0
    # must leave every leak table and fingerprint untouched (the STUN
    # request was already on the wire; a failed mDNS registration
    # withholds only the non-leaking obfuscated candidate).
    plan = FaultPlan(
        seed="webrtc-bench",
        faults=(
            FaultSpec(kind=FaultKind.STUN_TIMEOUT, rate=1.0),
            FaultSpec(kind=FaultKind.MDNS_RESOLVE_FAIL, rate=1.0),
        ),
    )
    struck = Campaign(fault_plan=plan).run(
        build_top_population(2020, scale=WEBRTC_SCALE, webrtc_policy=policy)
    )
    assert _era_texts(struck.findings) == texts
    assert _fingerprints(struck.findings) == prints
    runs += 1

    with tempfile.TemporaryDirectory(prefix="repro-webrtc-bench-") as top:
        fabric = CrawlFabric(
            PopulationSpec(
                population="top2020",
                scale=WEBRTC_SCALE,
                webrtc_policy=policy,
            ),
            FabricConfig(shards=SHARD_COUNT, heartbeat_timeout_s=30.0),
            workdir=os.path.join(top, "fleet"),
        )
        outcome = fabric.run()
        assert _era_texts(outcome.result.findings) == texts
        assert _fingerprints(outcome.result.findings) == prints
        runs += 1

    localhost_rows, lan_rows = (
        len(tables.table_5w(baseline.findings).rows),
        len(tables.table_6w(baseline.findings).rows),
    )
    leaks = sum(
        row["leaks"]
        for table in (tables.table_5w, tables.table_6w)
        for row in table(baseline.findings).rows
    )
    return {
        "equivalent_runs": runs,
        "localhost_sites": localhost_rows,
        "lan_sites": lan_rows,
        "leaks": leaks,
        "findings": baseline.findings,
    }


def _channel_off_overhead() -> dict:
    """Channel-off detector cost on a corpus with no WebRTC traffic."""
    from repro.browser.chrome import SimulatedChrome
    from repro.browser.useragent import identity_for

    population = build_top_population(2020, scale=WEBRTC_SCALE)
    corpus = []
    chrome = SimulatedChrome(identity_for("windows"))
    for website in population.websites[:40]:
        corpus.extend(chrome.visit(website.page()).events)
    corpus = corpus * TIMING_CORPUS_REPEAT

    detector_on = LocalTrafficDetector()
    detector_off = LocalTrafficDetector(webrtc_channel=False)
    # Paired median-of-N with the cyclic collector parked: both detectors
    # run the identical code path on channel-free flows, so any measured
    # gap is scheduler/allocator noise — pairing adjacent passes cancels
    # the slow drift, the median discards bursts, and collecting *between*
    # reps keeps GC pauses out of the timed sections.
    detector_on.detect(corpus)
    detector_off.detect(corpus)
    ratios = []
    on = off = float("inf")
    gc.disable()
    try:
        for _ in range(TIMING_REPS):
            started = time.perf_counter()
            detector_on.detect(corpus)
            on_s = time.perf_counter() - started
            started = time.perf_counter()
            detector_off.detect(corpus)
            off_s = time.perf_counter() - started
            gc.collect()
            ratios.append(off_s / on_s)
            on = min(on, on_s)
            off = min(off, off_s)
    finally:
        gc.enable()
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    assert overhead <= OVERHEAD_BUDGET, (
        f"webrtc_channel=False costs {overhead:.2%} over the default "
        f"detector on a channel-free corpus (budget: {OVERHEAD_BUDGET:.0%})"
    )
    return {
        "events": len(corpus),
        "detect_on_s": round(on, 6),
        "detect_off_s": round(off, 6),
        "overhead_percent": round(overhead * 100.0, 3),
        "budget_percent": round(OVERHEAD_BUDGET * 100.0, 3),
    }


def test_webrtc_leak_stability_and_channel_overhead():
    obs.enable()
    try:
        eras = {}
        findings_by_policy = {}
        for policy in POLICIES:
            report = _stability(policy)
            findings_by_policy[policy] = report.pop("findings")
            eras[policy] = report
        # Era semantics: raw host candidates leak strictly more than the
        # mDNS-obfuscated era over the same population.
        assert eras["pre-m74"]["leaks"] > eras["mdns"]["leaks"]
        era_table = tables.table_webrtc_era(findings_by_policy)
        assert any(row["delta"] > 0 for row in era_table.rows)

        overhead = _channel_off_overhead()
        snapshot_doc = snapshot(
            obs.registry(),
            meta={
                "bench": "ablation-webrtc",
                "kinds": len(FaultKind),
                "scale": WEBRTC_SCALE,
                "eras": eras,
                "era_sites": len(era_table.rows),
                "channel_off_overhead": overhead,
            },
        )
        write_artifact("BENCH_webrtc.json", json.dumps(snapshot_doc, indent=2))
    finally:
        obs.disable()
