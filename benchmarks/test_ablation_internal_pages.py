"""Ablation bench: landing pages vs internal pages (§3.3 / future work).

The paper's count of local-traffic sites is "a lower bound" because only
landing pages were crawled; a blog investigation it cites found
ThreatMetrix on *login pages* of further sites.  This bench crawls the
2020 population both ways: the landing-only crawl reproduces the paper's
107 localhost sites; enabling internal-page crawling surfaces the five
seeded login-page scanners on top — demonstrating the lower-bound claim
quantitatively.

Also audits the attack class: across every finding of both crawls, the
number of sites classified INTERNAL_ATTACK is zero, matching the paper's
central negative result.
"""

from repro.core.signatures import BehaviorClass
from repro.crawler.campaign import Campaign
from repro.web.internal import LOGIN_PAGE_SCANNERS
from repro.web.population import build_top_population

from .conftest import write_artifact

ABLATION_SCALE = 0.01


def test_internal_pages_ablation(benchmark):
    population = build_top_population(2020, scale=ABLATION_SCALE)

    def run_both():
        shallow = Campaign().run(population)
        deep = Campaign(include_internal=True).run(population)
        return shallow, deep

    shallow, deep = benchmark(run_both)

    shallow_sites = {
        f.domain for f in shallow.findings if f.has_localhost_activity
    }
    deep_sites = {f.domain for f in deep.findings if f.has_localhost_activity}
    surfaced = sorted(deep_sites - shallow_sites)

    lines = [
        "Internal-page crawl ablation (2020 population)",
        f"  landing pages only : {len(shallow_sites)} localhost sites "
        "(the paper's crawl)",
        f"  + internal pages   : {len(deep_sites)} localhost sites",
        "  surfaced by the deeper crawl:",
    ]
    for domain in surfaced:
        finding = deep.finding(domain)
        assert finding is not None
        lines.append(f"    {domain:<20} {finding.behavior.value}")
    text = "\n".join(lines)
    write_artifact("ablation_internal_pages.txt", text)
    print("\n" + text)

    assert len(shallow_sites) == 107  # the paper's number is a lower bound
    assert set(surfaced) == {s.domain for s in LOGIN_PAGE_SCANNERS}
    for domain in surfaced:
        finding = deep.finding(domain)
        assert finding is not None
        assert finding.behavior is BehaviorClass.FRAUD_DETECTION

    # The paper's negative result holds in both crawl depths: zero sites
    # exhibit internal-network attack behaviour.
    for result in (shallow, deep):
        attacks = [
            f
            for f in result.findings
            if f.behavior is BehaviorClass.INTERNAL_ATTACK
        ]
        assert attacks == []
