"""Bench: regenerate Table 7 — localhost requesters new in the 2021 crawl.

Paper targets: 82 localhost sites total in 2021 (Windows 82 / Linux 48),
of which ~40 are newly observed: 5-6 new ThreatMetrix deployers (cibc,
highlow.com, moneybookers, ebay.com.hk, marks.com), 14 native-application
sites (the iQIYI family, E-IMZO, Thunder, GNWay), and ~20 developer
errors.  No bot-detection sites remain.
"""

from collections import Counter

from repro.analysis import tables
from repro.core.addresses import Locality
from repro.core.signatures import BehaviorClass

from .conftest import write_artifact


def test_table7_regeneration(benchmark, top2021, top2020):
    _, result_2021 = top2021
    _, result_2020 = top2020
    rendered = benchmark(
        tables.table_7, result_2021.findings, result_2020.findings
    )
    write_artifact("table7.txt", rendered.text)
    print("\n" + rendered.text)

    total_2021 = sum(
        1 for f in result_2021.findings if f.has_localhost_activity
    )
    assert total_2021 == 82

    assert len(rendered.rows) == 39
    counts = Counter(row["behavior"] for row in rendered.rows)
    assert counts[BehaviorClass.FRAUD_DETECTION] == 5
    assert counts[BehaviorClass.NATIVE_APPLICATION] == 14
    assert counts[BehaviorClass.DEVELOPER_ERROR] == 20
    assert counts.get(BehaviorClass.BOT_DETECTION, 0) == 0

    domains = {row["domain"] for row in rendered.rows}
    for expected in (
        "cibc.com", "ebay.com.hk", "iqiyi.com", "soliqservis.uz",
        "gnway.com", "phonearena.com", "wealthcareportal.com",
    ):
        assert expected in domains

    # Per-OS totals (Figure 9): all 82 on Windows, 48 on Linux.
    per_os = Counter()
    for finding in result_2021.findings:
        for os_name in finding.oses_with_activity(Locality.LOCALHOST):
            per_os[os_name] += 1
    assert per_os["windows"] == 82
    assert per_os["linux"] == 48
