"""Bench: regenerate Figure 7 — timing CDFs for malicious webpages.

Paper targets: consistent with the top-list crawls — most malicious
local traffic is developer-error resource fetches that fire early; the
Windows series carries a late tail from the ThreatMetrix clones.
"""

from repro.analysis import figures
from repro.analysis.stats import median

from .conftest import write_artifact


def test_figure7_regeneration(benchmark, malicious):
    _, result = malicious
    fig = benchmark(figures.figure_7, result.findings)
    write_artifact("figure7.txt", fig.text)
    print("\n" + fig.text)

    localhost = fig.data["localhost"]
    assert set(localhost) == {"windows", "linux", "mac"}
    assert len(localhost["windows"]) == 97
    assert len(localhost["linux"]) == 124
    assert len(localhost["mac"]) == 84
    # Dev-error dominated series fire early...
    assert median(localhost["linux"]) <= 5.5
    assert median(localhost["mac"]) <= 5.5
    # ...while the clone scans give Windows a late tail.
    assert max(localhost["windows"]) > 10.0
    assert all(max(v) < 20.0 for v in localhost.values())

    lan = fig.data["lan"]
    for values in lan.values():
        assert median(values) <= 5.5
