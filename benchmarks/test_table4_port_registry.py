"""Bench: regenerate Table 4 — the scanned-port knowledge base.

Paper targets: 21 port rows covering the 14 ThreatMetrix fraud-detection
ports (remote desktop software) and the 7 BIG-IP ASM bot-detection ports
(malware + automation), with 4 malware-associated ports.
"""

from repro.analysis import tables
from repro.core.ports import DEFAULT_REGISTRY, ScanPurpose

from .conftest import write_artifact


def test_table4_regeneration(benchmark):
    rendered = benchmark(tables.table_4, DEFAULT_REGISTRY)
    write_artifact("table4.txt", rendered.text)
    print("\n" + rendered.text)

    assert len(rendered.rows) == 21
    fraud_ports = {
        r.port for r in rendered.rows
        if r.purpose is ScanPurpose.FRAUD_DETECTION
    }
    bot_ports = {
        r.port for r in rendered.rows if r.purpose is ScanPurpose.BOT_DETECTION
    }
    assert len(fraud_ports) == 14
    assert len(bot_ports) == 7
    assert {3389, 5939, 7070} <= fraud_ports
    assert {4444, 17556} <= bot_ports
    assert sum(1 for r in rendered.rows if r.is_malware) == 4


def test_port_lookup_throughput(benchmark):
    """Lookup speed over the registry (sanity: classification-time cost)."""

    def lookups():
        total = 0
        for port in range(1, 65536, 97):
            if DEFAULT_REGISTRY.lookup(port) is not None:
                total += 1
        return total

    assert benchmark(lookups) >= 0
