"""Bench: regenerate Table 11 — developer-error localhost sites (2020).

Paper targets: 45 table rows across six sub-kinds — 25 local-file-server
sites, 1 pen-test artefact (rkn.gov.ru's xook.js), 5 LiveReload.js, 2
bare redirects to 127.0.0.1, 5 SockJS-node sites (Mac-only), 7 leftover
local services.
"""

from repro.analysis import rq3, tables
from repro.core.addresses import Locality
from repro.core.signatures import DeveloperErrorKind

from .conftest import write_artifact


def test_table11_regeneration(benchmark, top2020):
    _, result = top2020
    rendered = benchmark(tables.table_11, result.findings)
    write_artifact("table11.txt", rendered.text)
    print("\n" + rendered.text)

    assert len(rendered.rows) == 45
    breakdown = rq3.dev_error_breakdown(result.findings, Locality.LOCALHOST)
    assert breakdown == {
        DeveloperErrorKind.LOCAL_FILE_SERVER: 25,
        DeveloperErrorKind.PEN_TEST: 1,
        DeveloperErrorKind.LIVERELOAD: 5,
        DeveloperErrorKind.REDIRECT: 2,
        DeveloperErrorKind.SOCKJS_NODE: 5,
        DeveloperErrorKind.OTHER_LOCAL_SERVICE: 7,
    }

    sockjs = [
        row for row in rendered.rows
        if row["dev_kind"] is DeveloperErrorKind.SOCKJS_NODE
    ]
    assert all(row["oses"] == ("mac",) for row in sockjs)

    pen_test = [
        row for row in rendered.rows
        if row["dev_kind"] is DeveloperErrorKind.PEN_TEST
    ]
    assert pen_test[0]["domain"] == "rkn.gov.ru"
    assert pen_test[0]["paths"] == ["/xook.js"]
