"""Bench: regenerate Table 9 — malicious LAN requesters.

Paper targets: 9 LAN-requesting sites (8 malware incl. the www./apex
crasar.org pair, 1 abuse), with per-OS malware counts 8/7/7 and one site
using the non-standard port 1080.
"""

from repro.analysis import tables
from repro.core.addresses import Locality

from .conftest import write_artifact


def test_table9_regeneration(benchmark, malicious):
    _, result = malicious
    rendered = benchmark(tables.table_9, result.findings)
    write_artifact("table9.txt", rendered.text)
    print("\n" + rendered.text)

    assert len(rendered.rows) == 9
    by_category = {}
    for row in rendered.rows:
        by_category.setdefault(row["category"], []).append(row)
    assert len(by_category["malware"]) == 8
    assert len(by_category["abuse"]) == 1

    # One site (wangzonghang.cn) requested HTTP on port 1080.
    nonstandard = [
        row for row in rendered.rows if set(row["ports"]) - {80, 443}
    ]
    assert len(nonstandard) == 1
    assert nonstandard[0]["ports"] == [1080]

    per_os = {"windows": 0, "linux": 0, "mac": 0}
    for finding in result.findings:
        if finding.category != "malware":
            continue
        for os_name in finding.oses_with_activity(Locality.LAN):
            per_os[os_name] += 1
    assert per_os == {"windows": 8, "linux": 7, "mac": 7}
