"""Bench: regenerate Figure 5 — time-to-first-local-request CDFs (2020).

Paper targets: (a) localhost — Linux/Mac median ≤5 s, Windows median
≈10 s, maxima 14 s (Mac) and 17 s (Windows/Linux); (b) LAN — all medians
≤5 s, maxima 5 s (Windows), 15 s (Mac), 16 s (Linux).
"""

from repro.analysis import figures
from repro.analysis.stats import median

from .conftest import write_artifact


def test_figure5_regeneration(benchmark, top2020):
    _, result = top2020
    fig = benchmark(figures.figure_5, result.findings)
    write_artifact("figure5.txt", fig.text)
    print("\n" + fig.text)

    localhost = fig.data["localhost"]
    assert 8.0 <= median(localhost["windows"]) <= 12.0
    assert median(localhost["linux"]) <= 5.5
    assert median(localhost["mac"]) <= 5.5
    assert max(localhost["windows"]) <= 17.5
    assert max(localhost["linux"]) <= 17.5
    assert max(localhost["mac"]) <= 14.5
    # Everything inside the 20-second monitoring window.
    assert all(max(v) < 20.0 for v in localhost.values())

    lan = fig.data["lan"]
    for os_name in ("windows", "linux", "mac"):
        assert median(lan[os_name]) <= 5.5
    assert max(lan["windows"]) <= 5.5
    assert 14.0 <= max(lan["mac"]) <= 16.0
    assert 15.0 <= max(lan["linux"]) <= 17.0
