"""Ablation: streaming sink pipeline vs. the buffered batch path.

The single-pass pipeline's contract has three legs:

* **invariance** — per-site detections and archived NetLog documents are
  byte-identical whether a visit streams through the sink graph or
  buffers events and runs the batch APIs afterwards;
* **memory** — streaming detection memory is bounded by the number of
  open flows: growing a document 10× in event count (same flow count)
  must not grow the streaming peak proportionally, while it does grow
  the batch peak;
* **throughput** — the streaming visit (detection folded into emission)
  is at least as fast as the buffered visit plus a batch detection pass,
  within a noise budget (``REPRO_PIPELINE_SLACK``, default 10%).
"""

import json
import os
import time
import tracemalloc

from repro.browser.chrome import SimulatedChrome
from repro.browser.useragent import identity_for
from repro.core.detector import LocalTrafficDetector
from repro.crawler.crawl import Crawler
from repro.crawler.vm import OSEnvironment
from repro.netlog import (
    EventPhase,
    EventType,
    NetLogArchive,
    NetLogEvent,
    NetLogSource,
    SourceType,
    dumps,
    iter_events_streaming,
)
from repro.web.population import build_top_population

from .conftest import write_artifact

ABLATION_SCALE = 0.002  # 200 sites incl. all seeded ones
TIMING_REPS = 5
PIPELINE_SLACK = float(os.environ.get("REPRO_PIPELINE_SLACK", "0.10"))
#: Absolute timing slack: one scheduler preemption on a loaded CI host.
EPSILON_S = 0.05

#: Synthetic-document shape for the memory leg: a few long-lived flows
#: carrying many events each — the scanner-socket profile that made the
#: buffered path's memory O(events).
MEMORY_FLOWS = 50
MEMORY_EVENTS_PER_FLOW = 40
MEMORY_GROWTH = 10


def _population():
    return build_top_population(2020, scale=ABLATION_SCALE)


def test_streaming_matches_buffered_per_site(tmp_path):
    """Detection and archive bytes agree between the two capture paths."""
    population = _population()
    environment = OSEnvironment.for_os("windows")
    crawler = Crawler(
        environment, capture_events=True, capture_netlog=True
    )
    batch_archive = NetLogArchive(tmp_path / "batch")
    stream_archive = NetLogArchive(tmp_path / "stream")
    detector = LocalTrafficDetector()
    sites = compared = 0
    for website in population.websites:
        record = crawler.crawl_site(website)
        if not record.success:
            continue
        sites += 1
        # Streamed detection (built by the DetectionSink during the
        # visit) vs. batch detection over the buffered event list.
        assert record.detection == detector.detect(record.events)
        if not record.has_local_activity:
            continue
        compared += 1
        meta = {"crawl": "bench", "domain": website.domain, "os": "windows"}
        batch = batch_archive.write(
            "bench", "windows", website.domain, record.events, meta=meta
        )
        streamed = stream_archive.write_buffered(
            "bench", "windows", website.domain, record.netlog, meta=meta
        )
        assert batch.read_bytes() == streamed.read_bytes()
    assert sites > 0 and compared > 0  # the diff was not vacuous
    write_artifact(
        "pipeline-invariance.json",
        json.dumps(
            {"sites": sites, "archives_byte_identical": compared}, indent=2
        ),
    )


def _synthetic_document(events_per_flow: int) -> str:
    events = []
    for step in range(events_per_flow):
        for flow in range(MEMORY_FLOWS):
            source = NetLogSource(
                id=flow + 1, type=SourceType.URL_REQUEST
            )
            if step == 0:
                events.append(
                    NetLogEvent(
                        time=float(step),
                        type=EventType.URL_REQUEST_START_JOB,
                        source=source,
                        phase=EventPhase.BEGIN,
                        params={"url": f"http://localhost:{6000 + flow}/"},
                    )
                )
            else:
                events.append(
                    NetLogEvent(
                        time=float(step),
                        type=EventType.HTTP_TRANSACTION_READ_HEADERS,
                        source=source,
                        phase=EventPhase.NONE,
                        params={"byte_count": 64},
                    )
                )
    return dumps(events)


def _batch_peak(path: str) -> int:
    from repro.netlog import load

    tracemalloc.start()
    with open(path) as fp:
        events = load(fp, strict=False)
    LocalTrafficDetector().detect(events)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _streaming_peak(path: str) -> int:
    tracemalloc.start()
    sink = LocalTrafficDetector().sink()
    with open(path) as fp:
        for event in iter_events_streaming(fp, strict=False):
            sink.accept(event)
    sink.finish()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_streaming_memory_is_bounded_by_open_flows(tmp_path):
    paths = {}
    for growth in (1, MEMORY_GROWTH):
        path = tmp_path / f"synthetic-{growth}x.json"
        path.write_text(_synthetic_document(MEMORY_EVENTS_PER_FLOW * growth))
        paths[growth] = str(path)

    batch_1 = _batch_peak(paths[1])
    batch_10 = _batch_peak(paths[MEMORY_GROWTH])
    stream_1 = _streaming_peak(paths[1])
    stream_10 = _streaming_peak(paths[MEMORY_GROWTH])

    write_artifact(
        "pipeline-memory.json",
        json.dumps(
            {
                "flows": MEMORY_FLOWS,
                "events_1x": MEMORY_FLOWS * MEMORY_EVENTS_PER_FLOW,
                "events_10x": MEMORY_FLOWS
                * MEMORY_EVENTS_PER_FLOW
                * MEMORY_GROWTH,
                "batch_peak_bytes": {"1x": batch_1, "10x": batch_10},
                "streaming_peak_bytes": {"1x": stream_1, "10x": stream_10},
            },
            indent=2,
        ),
    )

    # The buffered path materialises every event: its peak must track the
    # event count.  The streaming path holds open-flow summaries plus
    # parse scratch: 10× the events must cost far less than 10× the peak.
    assert stream_10 < stream_1 * 3, (
        f"streaming peak grew with event count: "
        f"{stream_1} -> {stream_10} bytes over {MEMORY_GROWTH}x events"
    )
    assert stream_10 < batch_10 / 3, (
        f"streaming peak {stream_10} not meaningfully below "
        f"batch peak {batch_10}"
    )


def _min_of_n(fn, reps: int = TIMING_REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_streaming_visit_throughput_at_least_buffered():
    population = _population()
    pages = [w.page() for w in population.websites]
    detector = LocalTrafficDetector()

    def buffered():
        chrome = SimulatedChrome(identity_for("windows"))
        total = 0
        for page in pages:
            result = chrome.visit(page)
            total += len(detector.detect(result.events).requests)
        return total

    def streaming():
        chrome = SimulatedChrome(identity_for("windows"))
        total = 0
        for page in pages:
            sink = detector.sink()
            chrome.visit(page, sink=sink)
            total += len(sink.finish().requests)
        return total

    assert buffered() == streaming()  # same requests before timing
    buffered()  # warm caches before either arm is timed
    t_buffered = _min_of_n(buffered)
    t_streaming = _min_of_n(streaming)

    # Report events/s for the streaming arm alongside the comparison.
    chrome = SimulatedChrome(identity_for("windows"))
    events_total = sum(len(chrome.visit(p).events) for p in pages)
    write_artifact(
        "pipeline-throughput.json",
        json.dumps(
            {
                "sites": len(pages),
                "buffered_s": round(t_buffered, 4),
                "streaming_s": round(t_streaming, 4),
                "streaming_events_per_s": round(
                    events_total / t_streaming
                ),
                "slack": PIPELINE_SLACK,
            },
            indent=2,
        ),
    )

    budget = t_buffered * (1.0 + PIPELINE_SLACK) + EPSILON_S
    assert t_streaming <= budget, (
        f"streaming visits slower than buffered + batch detection: "
        f"{t_streaming:.3f}s vs {t_buffered:.3f}s "
        f"(budget {budget:.3f}s = +{PIPELINE_SLACK:.0%} and {EPSILON_S}s slack)"
    )
