"""Ablation: observability on vs. off — results identical, overhead bounded.

The observability subsystem's contract is that it *observes* the
pipeline without perturbing it.  Two checks pin that down:

* **invariance** — Table 1 and Table 5 render byte-identically with
  instrumentation enabled and disabled (metrics and spans never steer
  control flow);
* **overhead** — the fully-instrumented campaign costs at most 5% more
  wall time than the uninstrumented one (min-of-N timing to shed
  scheduler noise, plus a small absolute epsilon so sub-second runs on
  loaded CI hosts do not flap).

``REPRO_OBS_OVERHEAD_BUDGET`` overrides the relative budget (e.g. set
``0.15`` on a noisy shared runner).
"""

import json
import os
import time

from repro import obs
from repro.analysis import tables
from repro.crawler.campaign import run_campaign
from repro.obs.export import prometheus_text, snapshot
from repro.obs.tracing import to_chrome_trace
from repro.web.population import build_top_population

from .conftest import OUTPUT_DIR, write_artifact

ABLATION_SCALE = 0.002  # 200 sites incl. all seeded ones
TIMING_REPS = 5
OVERHEAD_BUDGET = float(os.environ.get("REPRO_OBS_OVERHEAD_BUDGET", "0.05"))
#: Absolute slack added to the relative budget: at this scale one run is
#: well under a second, where a single scheduler preemption exceeds 5%.
EPSILON_S = 0.05


def _tables(result) -> tuple[str, str]:
    table_1 = tables.table_1(list(result.stats.values())).text
    table_5 = tables.table_5(result.findings).text
    return table_1, table_5


def test_results_byte_identical_with_observability_on():
    population = build_top_population(2020, scale=ABLATION_SCALE)
    obs.disable()
    baseline = _tables(run_campaign(population))
    obs.enable()
    try:
        observed_result = run_campaign(population)
        observed = _tables(observed_result)
        registry = obs.registry()
        # The run really was observed — this is not a vacuous diff.
        visits = registry.get("repro_visits_total")
        assert sum(visits.values().values()) == len(
            population.websites
        ) * len(population.oses)
        assert len(obs.tracer().spans()) > 0
        # Sample exporter artifacts ride along for CI upload.
        OUTPUT_DIR.mkdir(exist_ok=True)
        write_artifact(
            "obs-metrics.prom", prometheus_text(registry.collect()).rstrip()
        )
        write_artifact(
            "obs-metrics.json",
            json.dumps(
                snapshot(registry, meta={"bench": "ablation-observability"}),
                indent=2,
            ),
        )
        write_artifact(
            "obs-trace.json", json.dumps(to_chrome_trace(obs.tracer()))
        )
    finally:
        obs.disable()
    assert observed == baseline


def _min_of_n(fn, reps: int = TIMING_REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_observability_overhead_within_budget():
    population = build_top_population(2020, scale=ABLATION_SCALE)

    def crawl():
        return run_campaign(population)

    obs.disable()
    crawl()  # warm caches before either arm is timed
    t_off = _min_of_n(crawl)
    obs.enable()
    try:
        t_on = _min_of_n(crawl)
    finally:
        obs.disable()

    budget = t_off * (1.0 + OVERHEAD_BUDGET) + EPSILON_S
    assert t_on <= budget, (
        f"observability overhead too high: {t_on:.3f}s instrumented vs "
        f"{t_off:.3f}s plain (budget {budget:.3f}s = "
        f"+{OVERHEAD_BUDGET:.0%} and {EPSILON_S}s slack)"
    )
