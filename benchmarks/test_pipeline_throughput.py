"""Throughput benches for the measurement pipeline itself.

Not a paper table — these quantify the cost of the harness: pages crawled
per second (browser + NetLog + detection), NetLog parse throughput, and
detection throughput over a scanner-heavy event stream.

``test_format_matrix_throughput`` is the dual-format trajectory bench:
it times the codec spine (encode, parse, streaming scan, roundtrip) for
the JSON and ``nlbin-v1`` encodings over the same corpus and writes a
``repro-metrics-v1`` snapshot to ``benchmarks/output/BENCH_pipeline.json``
(committed trajectory point: ``benchmarks/BENCH_pipeline.json``).  The
binary parse path must beat JSON by ``REPRO_PIPELINE_SPEEDUP_FLOOR``
(default 3x).
"""

import json
import os
import time

from repro import obs
from repro.browser.chrome import SimulatedChrome
from repro.browser.useragent import identity_for
from repro.core.detector import LocalTrafficDetector
from repro.crawler.campaign import run_campaign
from repro.netlog import (
    dumps,
    dumps_binary,
    iter_events_streaming,
    loads,
    to_binary,
    to_json,
)
from repro.obs.export import snapshot
from repro.web.population import build_top_population

from .conftest import write_artifact

CRAWL_SCALE = 0.002  # 200 sites incl. all seeded ones

SPEEDUP_FLOOR = float(os.environ.get("REPRO_PIPELINE_SPEEDUP_FLOOR", "3.0"))
TIMING_REPS = 7
CORPUS_SITES = 40


def test_crawl_throughput(benchmark):
    population = build_top_population(2020, scale=CRAWL_SCALE)

    def crawl():
        result = run_campaign(population)
        return len(result.findings)

    findings = benchmark(crawl)
    assert findings == 116  # 107 localhost + 9 LAN


def test_netlog_roundtrip_throughput(benchmark):
    chrome = SimulatedChrome(identity_for("windows"))
    population = build_top_population(2020, scale=CRAWL_SCALE)
    site = population.website("ebay.com")
    text = dumps(chrome.visit(site.page()).events)

    def roundtrip():
        return len(loads(text))

    assert benchmark(roundtrip) > 0


def test_detection_throughput(benchmark):
    chrome = SimulatedChrome(identity_for("windows"))
    population = build_top_population(2020, scale=CRAWL_SCALE)
    events = chrome.visit(population.website("ebay.com").page()).events
    detector = LocalTrafficDetector()

    def detect():
        return len(detector.detect(events).requests)

    assert benchmark(detect) == 14


def _min_seconds(fn, reps=TIMING_REPS):
    """Min-of-N wall time: the least-interfered-with pass."""
    fn()  # warm caches and dispatch tables outside the timed reps
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_format_matrix_throughput():
    chrome = SimulatedChrome(identity_for("windows"))
    population = build_top_population(2020, scale=CRAWL_SCALE)
    events = []
    for website in population.websites[:CORPUS_SITES]:
        events.extend(chrome.visit(website.page()).events)

    text = dumps(events, checksums=True)
    data = dumps_binary(events, checksums=True)
    # The timing comparison is only meaningful if both encodings carry
    # the identical stream — and transcode losslessly into each other.
    assert loads(text) == loads(data)
    assert to_json(to_binary(text)) == text
    assert to_binary(to_json(data)) == data

    obs.enable()
    try:
        matrix = {}
        for name, document, encode in (
            ("json", text, lambda: dumps(events, checksums=True)),
            ("binary", data, lambda: dumps_binary(events, checksums=True)),
        ):
            matrix[name] = {
                "document_bytes": len(document),
                "encode_s": round(_min_seconds(encode), 6),
                "parse_s": round(
                    _min_seconds(lambda: loads(document)), 6
                ),
                "scan_s": round(
                    _min_seconds(
                        lambda: sum(1 for _ in iter_events_streaming(document))
                    ),
                    6,
                ),
                "roundtrip_s": round(
                    _min_seconds(lambda: loads(encode())), 6
                ),
            }
        speedup = {
            metric: round(
                matrix["json"][metric] / matrix["binary"][metric], 2
            )
            for metric in ("encode_s", "parse_s", "scan_s", "roundtrip_s")
        }
        compression = round(
            matrix["json"]["document_bytes"]
            / matrix["binary"]["document_bytes"],
            2,
        )
        assert speedup["parse_s"] >= SPEEDUP_FLOOR, (
            f"binary parse is only {speedup['parse_s']}x JSON "
            f"(floor: {SPEEDUP_FLOOR}x)"
        )
        snapshot_doc = snapshot(
            obs.registry(),
            meta={
                "bench": "pipeline-throughput",
                "corpus_sites": CORPUS_SITES,
                "events": len(events),
                "formats": matrix,
                "speedup_json_over_binary": speedup,
                "speedup_floor": SPEEDUP_FLOOR,
                "compression_ratio": compression,
            },
        )
        write_artifact("BENCH_pipeline.json", json.dumps(snapshot_doc, indent=2))
    finally:
        obs.disable()
