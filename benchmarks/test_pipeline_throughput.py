"""Throughput benches for the measurement pipeline itself.

Not a paper table — these quantify the cost of the harness: pages crawled
per second (browser + NetLog + detection), NetLog parse throughput, and
detection throughput over a scanner-heavy event stream.
"""

from repro.browser.chrome import SimulatedChrome
from repro.browser.useragent import identity_for
from repro.core.detector import LocalTrafficDetector
from repro.crawler.campaign import run_campaign
from repro.netlog import dumps, loads
from repro.web.population import build_top_population

CRAWL_SCALE = 0.002  # 200 sites incl. all seeded ones


def test_crawl_throughput(benchmark):
    population = build_top_population(2020, scale=CRAWL_SCALE)

    def crawl():
        result = run_campaign(population)
        return len(result.findings)

    findings = benchmark(crawl)
    assert findings == 116  # 107 localhost + 9 LAN


def test_netlog_roundtrip_throughput(benchmark):
    chrome = SimulatedChrome(identity_for("windows"))
    population = build_top_population(2020, scale=CRAWL_SCALE)
    site = population.website("ebay.com")
    text = dumps(chrome.visit(site.page()).events)

    def roundtrip():
        return len(loads(text))

    assert benchmark(roundtrip) > 0


def test_detection_throughput(benchmark):
    chrome = SimulatedChrome(identity_for("windows"))
    population = build_top_population(2020, scale=CRAWL_SCALE)
    events = chrome.visit(population.website("ebay.com").page()).events
    detector = LocalTrafficDetector()

    def detect():
        return len(detector.detect(events).requests)

    assert benchmark(detect) == 14
