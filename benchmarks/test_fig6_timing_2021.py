"""Bench: regenerate Figure 6 — timing CDFs for the 2021 crawl (W+L).

Paper targets: delay distributions "roughly consistent" with 2020 —
Windows skews late (the fraud scanners), Linux early (dev errors and
native apps); no Mac series (the 2021 crawl had none).
"""

from repro.analysis import figures
from repro.analysis.stats import median

from .conftest import write_artifact


def test_figure6_regeneration(benchmark, top2021):
    _, result = top2021
    fig = benchmark(figures.figure_6, result.findings)
    write_artifact("figure6.txt", fig.text)
    print("\n" + fig.text)

    localhost = fig.data["localhost"]
    assert set(localhost) == {"windows", "linux"}
    assert len(localhost["windows"]) == 82
    assert len(localhost["linux"]) == 48
    assert median(localhost["windows"]) > median(localhost["linux"])
    assert all(max(v) < 20.0 for v in localhost.values())

    lan = fig.data["lan"]
    assert set(lan) <= {"windows", "linux"}
    for values in lan.values():
        assert median(values) <= 5.5
