"""Bench: regenerate Table 3 — top-10 ranked localhost requesters (2020).

Paper targets: Windows column led by ebay.com (rank 104) with eBay
properties and financial sites; Linux/Mac column led by hola.org (243),
then faceit.com, zakupki.gov.ru, rkn.gov.ru, ...
"""

from repro.analysis import tables

from .conftest import write_artifact


def test_table3_regeneration(benchmark, top2020, full_scale):
    _, result = top2020
    rendered = benchmark(tables.table_3, result.findings)
    write_artifact("table3.txt", rendered.text)
    print("\n" + rendered.text)

    (data,) = rendered.rows
    windows_domains = [domain for _, domain in data["windows"]]
    linux_domains = [domain for _, domain in data["linux"]]
    assert windows_domains[0] == "ebay.com"
    assert linux_domains[0] == "hola.org"
    assert "fidelity.com" in windows_domains
    assert "faceit.com" in linux_domains
    if full_scale:
        ranks = dict(data["windows"])
        by_domain = {domain: rank for rank, domain in data["windows"]}
        assert by_domain["ebay.com"] == 104
        assert by_domain["fidelity.com"] == 1250
        linux_by_domain = {domain: rank for rank, domain in data["linux"]}
        assert linux_by_domain["hola.org"] == 243
        del ranks
