"""Bench: regenerate Table 6 — 2020 LAN requesters.

Paper targets: 9 sites, all HTTP(S) on ports 80/443; three of them
(farsroid, tra…xyz, 1-movies) fetching the Iranian censorship blackhole
10.10.34.35; highest-ranked at 4381 (gsis.gr).
"""

from repro.analysis import tables
from repro.core.signatures import BehaviorClass

from .conftest import write_artifact


def test_table6_regeneration(benchmark, top2020, full_scale):
    _, result = top2020
    rendered = benchmark(tables.table_6, result.findings)
    write_artifact("table6.txt", rendered.text)
    print("\n" + rendered.text)

    assert len(rendered.rows) == 9
    for row in rendered.rows:
        assert set(row["ports"]) <= {80, 443}
        assert set(row["schemes"]) <= {"http", "https"}

    blackhole_rows = [
        r for r in rendered.rows if "10.10.34.35" in r["addresses"]
    ]
    assert len(blackhole_rows) == 3
    assert all(r["behavior"] is BehaviorClass.UNKNOWN for r in blackhole_rows)

    dev_rows = [
        r for r in rendered.rows
        if r["behavior"] is BehaviorClass.DEVELOPER_ERROR
    ]
    assert len(dev_rows) == 6  # section 4.3: 6 of 9 are developer errors

    if full_scale:
        assert rendered.rows[0]["domain"] == "gsis.gr"
        assert rendered.rows[0]["rank"] == 4381
