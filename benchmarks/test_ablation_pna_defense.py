"""Ablation bench: Private Network Access defense policies (section 5.3).

Evaluates three deployment scenarios of the WICG PNA proposal against the
2020 measured behaviour:

* **no adoption** — preflights unacknowledged everywhere: all local
  traffic blocked, including the legitimate native-app communication the
  paper insists must survive;
* **native-app adoption** — app vendors ship the PNA header: scans and
  developer-error fetches die, native apps keep working (the paper's
  "promising step" scenario);
* **prompt mode** — the interim human-in-the-loop variant.
"""

from repro.core.signatures import BehaviorClass
from repro.defense.evaluate import evaluate_policy, native_app_directory
from repro.defense.pna import PrivateNetworkAccessPolicy

from .conftest import write_artifact


def test_pna_policy_ablation(benchmark, top2020):
    _, result = top2020

    def run_ablation():
        evaluations = []
        evaluations.append(
            evaluate_policy(
                result.findings,
                PrivateNetworkAccessPolicy(),
                label="PNA, no service adoption",
            )
        )
        evaluations.append(
            evaluate_policy(
                result.findings,
                PrivateNetworkAccessPolicy(
                    directory=native_app_directory(result.findings)
                ),
                label="PNA, native apps opted in",
            )
        )
        evaluations.append(
            evaluate_policy(
                result.findings,
                PrivateNetworkAccessPolicy(
                    prompt_mode=True,
                    prompt_grants={"localhost": False, "127.0.0.1": False},
                ),
                label="interim prompt mode (user denies)",
            )
        )
        return evaluations

    evaluations = benchmark(run_ablation)
    text = "\n\n".join(e.render() for e in evaluations)
    write_artifact("ablation_pna.txt", text)
    print("\n" + text)

    no_adoption, with_apps, prompt = evaluations

    # Without adoption, everything locally-bound is blocked.
    for impact in no_adoption.impacts.values():
        assert impact.requests_blocked == impact.requests

    # With native-app adoption: scanners fully blocked, apps preserved.
    fraud = with_apps.impacts[BehaviorClass.FRAUD_DETECTION]
    assert fraud.sites_fully_blocked == fraud.sites == 35
    bot = with_apps.impacts[BehaviorClass.BOT_DETECTION]
    assert bot.sites_fully_blocked == bot.sites == 10
    native = with_apps.impacts[BehaviorClass.NATIVE_APPLICATION]
    assert native.sites_fully_blocked == 0
    assert native.block_rate == 0.0
    dev = with_apps.impacts[BehaviorClass.DEVELOPER_ERROR]
    # Not exactly 1.0: fsist.com.br's leftover service probes port 28337,
    # which the FACEIT client also uses — once FACEIT acknowledges PNA
    # preflights on that port, fsist's stray request rides along.  A real
    # port-collision consequence of endpoint-granular opt-in.
    assert dev.block_rate > 0.95
    assert dev.sites_fully_blocked >= dev.sites - 1

    # Prompt mode with a denying user blocks everything too.
    for impact in prompt.impacts.values():
        assert impact.requests_blocked == impact.requests
