"""Ablation bench: anti-abuse scanning adoption scenarios (§5.1).

The paper speculates that "we may observe an expansion of web-based
localhost scanning for anti-abuse on other sites".  This what-if sweep
generates synthetic webs with the measured 2020 adoption rate (~0.04% of
sites deploying the fraud scan) scaled 1×, 5× and 20×, crawls them with
the full pipeline, and reports the resulting measurement workload: sites
flagged, localhost probes a Windows user's machine receives per 10K
pages browsed.
"""

from repro.core.addresses import Locality
from repro.core.signatures import BehaviorClass
from repro.crawler.campaign import run_campaign
from repro.web.generator import ScenarioRates, generate_scenario

from .conftest import write_artifact

SCENARIO_SIZE = 5_000
BASE_FRAUD_RATE = 0.0004


def test_adoption_scenarios(benchmark):
    def run_scenarios():
        out = {}
        for multiplier in (1, 5, 20):
            scenario = generate_scenario(
                SCENARIO_SIZE,
                ScenarioRates(fraud_detection=BASE_FRAUD_RATE * multiplier),
                seed=41,
                name=f"adoption-x{multiplier}",
            )
            result = run_campaign(scenario.population)
            flagged = [
                f
                for f in result.findings
                if f.behavior is BehaviorClass.FRAUD_DETECTION
            ]
            probes = sum(
                len(f.requests(Locality.LOCALHOST, "windows"))
                for f in flagged
            )
            out[multiplier] = {
                "assigned": scenario.count("fraud"),
                "measured": len(flagged),
                "probes_per_10k_pages": probes / SCENARIO_SIZE * 10_000,
            }
        return out

    scenarios = benchmark(run_scenarios)

    lines = [
        "Anti-abuse adoption what-if (baseline = 2020 measured rate)",
        f"{'adoption':>9}{'scanning sites':>16}{'probes / 10K pages':>20}",
    ]
    for multiplier, row in sorted(scenarios.items()):
        lines.append(
            f"{multiplier:>8}x{row['measured']:>16}"
            f"{row['probes_per_10k_pages']:>20.0f}"
        )
    text = "\n".join(lines)
    write_artifact("ablation_adoption.txt", text)
    print("\n" + text)

    for row in scenarios.values():
        # The pipeline recovers every generated deployer, at every rate.
        assert row["measured"] == row["assigned"]
    assert (
        scenarios[20]["probes_per_10k_pages"]
        > scenarios[5]["probes_per_10k_pages"]
        > scenarios[1]["probes_per_10k_pages"]
    )
