"""Bench: regenerate Figure 3 — rank CDFs of localhost sites (2020).

Paper targets: fairly linear CDFs (activity spread evenly across the top
100K) with series sizes Windows 92 / Linux 54 / Mac 54, and highly-ranked
sites present (19 within the top 10K).
"""

from repro.analysis import figures
from repro.analysis.stats import fraction_below

from .conftest import write_artifact


def test_figure3_regeneration(benchmark, top2020, full_scale):
    population, result = top2020
    fig = benchmark(figures.figure_3, result.findings)
    write_artifact("figure3.txt", fig.text)
    print("\n" + fig.text)

    ranks = fig.data["ranks"]
    assert len(ranks["windows"]) == 92
    assert len(ranks["linux"]) == 54
    assert len(ranks["mac"]) == 54

    list_size = len(population)
    for series in ranks.values():
        # Roughly linear: each third of the list holds a nontrivial share.
        low = fraction_below([float(r) for r in series], list_size / 3)
        mid = fraction_below([float(r) for r in series], 2 * list_size / 3)
        assert 0.15 <= low <= 0.65
        assert 0.45 <= mid <= 0.9

    if full_scale:
        within_10k = sum(1 for r in set().union(*map(set, ranks.values()))
                         if r <= 10_000)
        assert within_10k >= 19  # "19 sites ranked within the top 10K"
