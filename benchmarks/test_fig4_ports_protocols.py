"""Bench: regenerate Figure 4 — localhost protocols/ports per OS.

Paper targets (4a, 2020): Windows dominated by WSS (490 of ~664 requests,
~60-74%), Linux and Mac dominated by HTTP(S) (~86%); (4b, malicious):
Windows WSS 252 (the 18 ThreatMetrix clones), Linux/Mac almost entirely
HTTP.
"""

from repro.analysis import figures, rq2
from repro.core.addresses import Locality

from .conftest import write_artifact


def test_figure4a_regeneration(benchmark, top2020):
    _, result = top2020
    fig = benchmark(figures.figure_ports, result.findings, name="Figure 4a")
    write_artifact("figure4a.txt", fig.text)
    print("\n" + fig.text)

    windows = fig.data["windows"]
    # 490 ThreatMetrix probes (35 sites x 14 ports; the paper's wss ring
    # totals 490) plus the two samsungcard sites' AnySign probes (2 x 3).
    wss_requests = sum(windows["wss"].values())
    assert wss_requests == 496

    breakdowns = rq2.protocol_port_breakdowns(
        result.findings, Locality.LOCALHOST
    )
    assert breakdowns["windows"].dominant_scheme() == "wss"
    for os_name in ("linux", "mac"):
        totals = breakdowns[os_name].scheme_totals()
        http_like = totals.get("http", 0) + totals.get("https", 0)
        assert http_like / breakdowns[os_name].total_requests >= 0.7

    # The 14 ThreatMetrix ports all appear in the Windows WSS ring.
    from repro.core.ports import THREATMETRIX_PORTS

    assert set(THREATMETRIX_PORTS) <= set(windows["wss"])


def test_figure4b_regeneration(benchmark, malicious):
    _, result = malicious
    fig = benchmark(figures.figure_ports, result.findings, name="Figure 4b")
    write_artifact("figure4b.txt", fig.text)
    print("\n" + fig.text)

    windows = fig.data["windows"]
    assert sum(windows["wss"].values()) == 252  # 18 clones x 14 ports
    linux = fig.data["linux"]
    assert "wss" not in linux or sum(linux["wss"].values()) == 0
    http_like = sum(linux.get("http", {}).values()) + sum(
        linux.get("https", {}).values()
    )
    assert http_like == sum(sum(p.values()) for p in linux.values())
