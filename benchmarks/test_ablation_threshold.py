"""Ablation bench: the 20-second monitoring-window choice (section 3.1).

The paper sampled 100 sites, found >98% of requests complete within 15 s
(most within 5 s), and picked a 20 s window.  This bench sweeps the
window over the seeded population and regenerates that justification: a
5-second window misses the late-firing anti-abuse scanners; 15–20 s
captures (nearly) all local activity; beyond 20 s nothing is gained.
"""

import pytest

from repro.crawler.campaign import Campaign
from repro.web.population import build_top_population

from .conftest import write_artifact

#: The threshold sweep runs the full multi-OS campaign once per window,
#: so it uses a reduced population (every seeded site, 1% filler).
ABLATION_SCALE = 0.01

WINDOWS_MS = (2_500.0, 5_000.0, 10_000.0, 15_000.0, 20_000.0, 30_000.0)


@pytest.fixture(scope="module")
def sweep():
    population = build_top_population(2020, scale=ABLATION_SCALE)
    results = {}
    for window_ms in WINDOWS_MS:
        campaign = Campaign(monitor_window_ms=window_ms)
        result = campaign.run(population)
        results[window_ms] = sum(
            1 for f in result.findings if f.has_localhost_activity
        )
    return population, results


def test_threshold_ablation(benchmark, sweep):
    population, results = sweep

    def render():
        lines = ["Monitoring-window ablation (localhost-active sites found)"]
        best = max(results.values())
        for window_ms, count in sorted(results.items()):
            lines.append(
                f"  {window_ms / 1000:>5.1f} s  {count:>4} sites"
                f"  ({count / best:>5.0%})"
            )
        return "\n".join(lines)

    text = benchmark(render)
    write_artifact("ablation_threshold.txt", text)
    print("\n" + text)

    # A 5 s window misses the late scanners; 20 s captures everything a
    # 30 s window would (the paper's justification for stopping at 20 s).
    assert results[5_000.0] < results[20_000.0]
    assert results[20_000.0] == results[30_000.0] == 107
    # The 15 s mark already captures the vast majority (>85%).
    assert results[15_000.0] / results[20_000.0] > 0.85
