"""Ablation: chaos conformance engine — sweep throughput and shrink cost.

Two claims from the coverage-guided conformance engine are pinned here:

* **full coverage within budget** — the default sweep (all 18 fault
  kinds, all four conformance drivers) reaches 100% seam coverage with
  every invariant holding, and the bench records how many schedules and
  seconds that took (``schedules_per_s``).
* **shrink cost** — a planted injector bug (digest equality breaks only
  when DNS and TLS specs ride together) is delta-debugged from a 3-kind
  schedule down to its minimal 2-spec repro; the bench records the
  iteration count and wall time of that shrink.

The resulting ``BENCH_chaos.json`` is a ``repro-metrics-v1`` snapshot
with both figures in ``meta``, written like every other bench artifact.
"""

import json
import tempfile
import time

from repro import obs
from repro.browser.errors import NetError
from repro.chaos.drivers import RETRIES, CampaignDriver, ChaosContext
from repro.chaos.engine import ChaosEngine
from repro.chaos.invariants import evaluate_invariants
from repro.chaos.shrink import shrink_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.export import snapshot

from .conftest import write_artifact


class _LeakyDnsInjector(FaultInjector):
    """Planted bug: whenever a TLS spec rides along, the DNS seam burns a
    visit's entire retry budget instead of its scheduled depth."""

    def dns_hook(self, host):
        if self.plan.specs(FaultKind.DNS) and self.plan.specs(FaultKind.TLS):
            depth = self.plan.fail_depth(FaultKind.DNS, host)
            if depth and self._next_attempt(FaultKind.DNS, host) <= RETRIES:
                self._record(FaultKind.DNS)
                return NetError.ERR_NAME_NOT_RESOLVED
            return None
        return super().dns_hook(host)


def _full_sweep(top: str) -> dict:
    engine = ChaosEngine(ChaosContext(workdir=top))
    report = engine.run()
    assert report.coverage_percent == 100.0, (
        f"uncovered seams: {sorted(k.value for k in report.uncovered)}"
    )
    assert not report.violations, [
        (v.schedule_id, v.invariant) for v in report.violations
    ]
    return {
        "schedules": len(report.schedules),
        "seconds": round(report.elapsed_s, 3),
        "schedules_per_s": round(len(report.schedules) / report.elapsed_s, 2),
        "coverage_percent": report.coverage_percent,
        "pairs_fired": len(report.coverage.pairs_fired),
        "violations": 0,
    }


def _planted_shrink(top: str) -> dict:
    ctx = ChaosContext(workdir=top, injector_factory=_LeakyDnsInjector)
    driver = CampaignDriver(ctx)
    plan = FaultPlan(
        seed="planted",
        faults=(
            FaultSpec(kind=FaultKind.DNS, rate=1.0, times=1),
            FaultSpec(kind=FaultKind.TLS, rate=1.0, times=1),
            FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=1.0, times=1),
        ),
    )

    def digest_fails(candidate: FaultPlan) -> bool:
        observation = driver.run(candidate)
        return any(
            v.invariant == "campaign-digest-equality"
            for v in evaluate_invariants(observation)
        )

    assert digest_fails(plan), "planted bug failed to trigger"
    started = time.perf_counter()
    result = shrink_plan(plan, digest_fails)
    seconds = time.perf_counter() - started
    assert len(result.plan.faults) <= 2
    assert {s.kind for s in result.plan.faults} == {FaultKind.DNS, FaultKind.TLS}
    return {
        "iterations": result.iterations,
        "seconds": round(seconds, 3),
        "minimal_specs": len(result.plan.faults),
    }


def test_chaos_conformance_sweep_and_shrink_cost():
    obs.enable()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-bench-") as top:
            sweep = _full_sweep(top)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-bench-") as top:
            shrink = _planted_shrink(top)
        snapshot_doc = snapshot(
            obs.registry(),
            meta={
                "bench": "ablation-chaos",
                "kinds": len(FaultKind),
                "sweep": sweep,
                "planted_shrink": shrink,
            },
        )
        write_artifact("BENCH_chaos.json", json.dumps(snapshot_doc, indent=2))
    finally:
        obs.disable()
