"""Ablation bench: port-moving evasion of anti-abuse scans (§5.1).

The paper predicts the fraud/bot scans are easy to evade "by modifying
the ports they operate on", because the scan profile is visible to any
visitor.  This sweep quantifies the arms race: as the fraction of
attacker hosts that randomise their service ports grows, the fixed
ThreatMetrix / BIG-IP profiles' detection rates collapse linearly to
zero.
"""

from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS
from repro.defense.evasion import PortStrategy, evasion_sweep

from .conftest import write_artifact

POPULATION = 400
FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_evasion_ablation(benchmark):
    def run_sweeps():
        return {
            "ThreatMetrix profile vs remote-control hosts": evasion_sweep(
                population=POPULATION,
                services=(3389, 5939),
                scan_ports=THREATMETRIX_PORTS,
                fractions=FRACTIONS,
            ),
            "BIG-IP ASM profile vs bot hosts": evasion_sweep(
                population=POPULATION,
                services=(4444, 9515),
                scan_ports=BIGIP_ASM_PORTS,
                fractions=FRACTIONS,
            ),
            "BIG-IP ASM vs lazily shifted ports": evasion_sweep(
                population=POPULATION,
                services=(4444, 9515),
                scan_ports=BIGIP_ASM_PORTS,
                strategy=PortStrategy.SHIFTED,
                fractions=FRACTIONS,
            ),
        }

    sweeps = benchmark(run_sweeps)

    lines = ["Evasion ablation: detection rate vs fraction of evading hosts"]
    for label, points in sweeps.items():
        lines.append(f"  {label}:")
        for point in points:
            lines.append(
                f"    {point.evading_fraction:>4.0%} evading -> "
                f"{point.detection_rate:>6.1%} detected"
            )
    text = "\n".join(lines)
    write_artifact("ablation_evasion.txt", text)
    print("\n" + text)

    for points in sweeps.values():
        rates = [p.detection_rate for p in points]
        assert rates[0] == 1.0  # everyone on standard ports is caught
        assert rates[-1] == 0.0  # full evasion defeats the fixed profile
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        # The collapse is roughly linear in the evading fraction.
        mid = rates[len(rates) // 2]
        assert 0.2 <= mid <= 0.8
