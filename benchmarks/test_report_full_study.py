"""Bench: generate the complete study report from all three campaigns.

Exercises the whole analysis stack at once — every table, figure, the
WHOIS attribution rollup, and the phishing-clone analysis — and persists
the single-document artefact (`benchmarks/output/report.txt`) plus the
machine-readable export bundle (CSV/JSON series for re-plotting).
"""

from repro.analysis.export import export_campaign
from repro.analysis.report_doc import StudyResults, render_report

from .conftest import OUTPUT_DIR, write_artifact


def test_full_study_report(benchmark, top2020, top2021, malicious):
    _, result_2020 = top2020
    _, result_2021 = top2021
    _, result_malicious = malicious

    def generate():
        return render_report(
            StudyResults(
                top2020=result_2020,
                top2021=result_2021,
                malicious=result_malicious,
            )
        )

    report = benchmark(generate)
    write_artifact("report.txt", report)

    assert "107 localhost-active sites" in report
    assert "ThreatMetrix Inc." in report
    assert "Phishing clones inheriting anti-fraud scans: 18" in report
    assert "Table 1" in report

    # Machine-readable export bundle alongside the report.
    written = export_campaign(
        result_2020.findings, OUTPUT_DIR / "export", prefix="top2020"
    )
    assert all(path.exists() for path in written.values())
