"""Chaos bench: injected corruption vs. the end-to-end integrity subsystem.

PR 1's chaos bench proved transient *failures* retry away; this one
proves *corruption* cannot hide.  A seeded plan tears holes in archived
NetLogs, silently flips digits inside them (damage that stays valid
JSON, invisible without checksums), and exhausts disk space under
archive writes; on top of that the telemetry database suffers direct
bit-rot.  ``repro fsck`` must then (a) detect every single injected
corruption — no more, no less — and (b) repair them through its tiered
ladder until the campaign digest is byte-identical to a fault-free run.
"""

import pytest

from repro.analysis.validate import integrity_scorecard
from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.retry import RetryPolicy
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.netlog import NetLogArchive
from repro.storage.db import TelemetryStore
from repro.storage.integrity import (
    FsckKind,
    campaign_digest,
    fsck,
    population_revisiter,
)
from repro.web.population import build_top_population

from .conftest import write_artifact

CHAOS_SCALE = 0.01

RETRIES = RetryPolicy(max_attempts=4)

#: ``disk-full`` depth deliberately exceeds the retry budget, so selected
#: archive writes fail permanently and leave holes for fsck to find.
INTEGRITY_PLAN = FaultPlan(
    seed="integrity-bench",
    faults=(
        FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.05, duration=48),
        FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.05),
        FaultSpec(kind=FaultKind.DISK_FULL, rate=0.03, times=8),
    ),
)

#: Database rows to bit-rot directly (beyond the archive-side plan).
DB_ROT_ROWS = 8


def _active_visits(store, crawl):
    """(domain, os) of every successful, unskipped visit."""
    return {
        (row[0], row[1])
        for row in store.connection.execute(
            "SELECT domain, os_name FROM visits "
            "WHERE crawl = ? AND success = 1 AND skipped = 0",
            (crawl,),
        )
    }


def _found(report, kind):
    return {(f.domain, f.os_name) for f in report.findings_of(kind)}


@pytest.fixture(scope="module")
def integrity(tmp_path_factory):
    population = build_top_population(2020, scale=CHAOS_SCALE)

    # Fault-free reference run, archived and persisted.
    clean_root = tmp_path_factory.mktemp("integrity-clean")
    clean_store = TelemetryStore(str(clean_root / "telemetry.db"))
    clean_archive = NetLogArchive(clean_root / "netlogs")
    clean_result = Campaign(
        store=clean_store, netlog_archive=clean_archive
    ).run(population)
    clean_store.commit()

    # The same campaign under the corruption plan.
    chaos_root = tmp_path_factory.mktemp("integrity-chaos")
    store = TelemetryStore(str(chaos_root / "telemetry.db"))
    archive = NetLogArchive(chaos_root / "netlogs")
    campaign = Campaign(
        store=store,
        netlog_archive=archive,
        fault_plan=INTEGRITY_PLAN,
        retry_policy=RETRIES,
    )
    result = campaign.run(population)
    store.commit()

    # Direct database bit-rot on a sample of healthy rows.
    rotted = store.connection.execute(
        "SELECT visit_id, domain, os_name FROM visits "
        "WHERE crawl = ? AND success = 1 AND skipped = 0 "
        "ORDER BY visit_id LIMIT ?",
        (population.name, DB_ROT_ROWS),
    ).fetchall()
    for visit_id, _, _ in rotted:
        store.connection.execute(
            "UPDATE visits SET page_load_time = "
            "COALESCE(page_load_time, 0) + 3 WHERE visit_id = ?",
            (visit_id,),
        )
    store.commit()

    detected = fsck(store, archive)
    repaired = fsck(
        store,
        archive,
        repair=True,
        revisit=population_revisiter(population, store, archive),
    )
    rescan = fsck(store, archive)

    return {
        "population": population,
        "clean_store": clean_store,
        "clean_result": clean_result,
        "store": store,
        "result": result,
        "campaign": campaign,
        "rotted": {(domain, os_name) for _, domain, os_name in rotted},
        "detected": detected,
        "repaired": repaired,
        "rescan": rescan,
    }


def test_integrity_ablation(benchmark, integrity):
    population = integrity["population"]
    store, clean_store = integrity["store"], integrity["clean_store"]
    campaign = integrity["campaign"]
    detected, repaired = integrity["detected"], integrity["repaired"]
    injector = campaign.last_injector

    def render():
        lines = ["Integrity ablation (corruption plan vs. fault-free run)"]
        injected = ", ".join(
            f"{kind.value}={count}"
            for kind, count in sorted(
                injector.injected.items(), key=lambda kv: kv[0].value
            )
        )
        lines.append(f"  injected: {injected}")
        lines.append(
            f"  archive writes abandoned to disk-full: "
            f"{campaign.archive_failures}"
        )
        by_kind = {}
        for finding in detected.findings:
            by_kind[finding.kind.value] = by_kind.get(finding.kind.value, 0) + 1
        lines.append(
            "  detected: "
            + ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        )
        tiers = {}
        for finding in repaired.findings:
            tiers[finding.repair_tier] = tiers.get(finding.repair_tier, 0) + 1
        lines.append(
            "  repaired: "
            + ", ".join(f"{k}={v}" for k, v in sorted(tiers.items()))
        )
        lines.append(
            f"  campaign digest: {campaign_digest(store, population.name)}"
        )
        return "\n".join(lines)

    text = benchmark(render)
    write_artifact("ablation_integrity.txt", text)
    print("\n" + text)

    # Every corruption kind actually fired.
    for kind in (FaultKind.TORN_WRITE, FaultKind.BIT_FLIP, FaultKind.DISK_FULL):
        assert injector.injected.get(kind, 0) > 0, kind
    assert campaign.archive_failures > 0

    # --- detection: 100% of injected corruptions, and nothing else ---
    active = _active_visits(store, population.name)
    qualified = {
        (domain, os_name): f"{population.name}:{os_name}:{domain}"
        for domain, os_name in active
    }
    keys = list(qualified.values())
    scheduled_missing = {
        visit
        for visit, key in qualified.items()
        if INTEGRITY_PLAN.schedule(FaultKind.DISK_FULL, [key])
    }
    scheduled_damage = {
        visit
        for visit, key in qualified.items()
        if (
            INTEGRITY_PLAN.schedule(FaultKind.TORN_WRITE, [key])
            or INTEGRITY_PLAN.schedule(FaultKind.BIT_FLIP, [key])
        )
    } - scheduled_missing
    assert scheduled_damage and scheduled_missing, "plan injected nothing"
    assert _found(detected, FsckKind.ARCHIVE_DAMAGE) == scheduled_damage
    assert _found(detected, FsckKind.MISSING_ARCHIVE) == scheduled_missing
    assert _found(detected, FsckKind.DIGEST_MISMATCH) == integrity["rotted"]
    assert keys  # the scan covered the campaign

    # --- repair: every finding resolved, nothing left behind ---
    assert repaired.ok and repaired.unrepaired == 0
    assert integrity["rescan"].clean
    assert integrity_scorecard(repaired).all_passed

    # --- equivalence: the repaired store is byte-identical to fault-free ---
    assert campaign_digest(store, population.name) == campaign_digest(
        clean_store, population.name
    )
    assert [
        finding_fingerprint(f) for f in integrity["result"].findings
    ] == [finding_fingerprint(f) for f in integrity["clean_result"].findings]


def test_integrity_plan_round_trip(integrity):
    """The corruption plan survives JSON serialisation bit-for-bit."""
    round_tripped = FaultPlan.loads(INTEGRITY_PLAN.dumps())
    assert round_tripped == INTEGRITY_PLAN
    keys = [
        f"{integrity['population'].name}:windows:{w.domain}"
        for w in integrity["population"].websites
    ]
    for kind in (FaultKind.TORN_WRITE, FaultKind.BIT_FLIP, FaultKind.DISK_FULL):
        assert round_tripped.schedule(kind, keys) == INTEGRITY_PLAN.schedule(
            kind, keys
        )
