"""Bench: regenerate Figure 9 — rank CDFs of localhost sites (2021).

Paper targets: Windows n=82, Linux n=48, spread fairly uniformly across
the top 100K (similar to Figure 3).
"""

from repro.analysis import figures
from repro.analysis.stats import fraction_below

from .conftest import write_artifact


def test_figure9_regeneration(benchmark, top2021):
    population, result = top2021
    fig = benchmark(figures.figure_9, result.findings)
    write_artifact("figure9.txt", fig.text)
    print("\n" + fig.text)

    ranks = fig.data["ranks"]
    assert len(ranks["windows"]) == 82
    assert len(ranks["linux"]) == 48
    assert "mac" not in ranks

    list_size = len(population)
    for series in ranks.values():
        mid = fraction_below([float(r) for r in series], list_size / 2)
        assert 0.3 <= mid <= 0.8  # roughly uniform spread
