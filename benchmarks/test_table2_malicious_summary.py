"""Bench: regenerate Table 2 — malicious crawl summary.

Paper targets: localhost activity malware W72/L83/M75, phishing
W25/L41/M9, abuse 0; LAN activity malware 8/7/7, abuse 1/1/1.
"""

from repro.analysis import tables
from repro.web import seeds as S

from .conftest import write_artifact

CATEGORY_SIZES = {
    "malware": S.MALWARE_COUNT,
    "abuse": S.ABUSE_COUNT,
    "phishing": S.PHISHING_COUNT,
}


def test_table2_regeneration(benchmark, malicious, full_scale):
    _, result = malicious
    rendered = benchmark(
        tables.table_2,
        result.findings,
        result.stats,
        CATEGORY_SIZES,
        S.MALICIOUS_CATEGORY_SUCCESSES,
    )
    write_artifact("table2.txt", rendered.text)
    print("\n" + rendered.text)

    by_category = {row["category"]: row for row in rendered.rows}
    assert by_category["malware"]["localhost"] == {
        "windows": 72, "linux": 83, "mac": 75,
    }
    assert by_category["phishing"]["localhost"] == {
        "windows": 25, "linux": 41, "mac": 9,
    }
    assert by_category["abuse"]["localhost"] == {
        "windows": 0, "linux": 0, "mac": 0,
    }
    assert by_category["malware"]["lan"] == {
        "windows": 8, "linux": 7, "mac": 7,
    }
    assert by_category["abuse"]["lan"] == {"windows": 1, "linux": 1, "mac": 1}

    if full_scale:
        # Success rates per category (Table 2: 61%/95%/73% on Windows...).
        rates = by_category["malware"]["success_rates"]
        assert abs(rates["windows"] - 0.61) < 0.02
        assert abs(rates["linux"] - 0.65) < 0.02
        assert abs(rates["mac"] - 0.65) < 0.02
