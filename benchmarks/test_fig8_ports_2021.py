"""Bench: regenerate Figure 8 — protocols/ports for the 2021 crawl.

Paper targets: a subset of 2020's ports/protocols — Windows still
WSS-dominated (the fraud scanners, now 30 deployers), Linux still
HTTP-dominated; the BIG-IP ASM ports (4444, 4653, ...) are gone.
"""

from repro.analysis import figures
from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS

from .conftest import write_artifact


def test_figure8_regeneration(benchmark, top2021):
    _, result = top2021
    fig = benchmark(figures.figure_8, result.findings)
    write_artifact("figure8.txt", fig.text)
    print("\n" + fig.text)

    windows = fig.data["windows"]
    wss = windows["wss"]
    # 30 ThreatMetrix deployers x 14 ports, plus AnySign (2 sites x 3
    # ports) and E-IMZO (2 sites x 1 port).
    assert sum(wss.values()) == 30 * 14 + 6 + 2
    assert set(THREATMETRIX_PORTS) <= set(wss)

    # The bot-detection *scan* disappeared in 2021 (section 4.3.2).  Its
    # malware/automation ports are gone; 5555 alone still shows up, via
    # madmimi.com's unrelated dev-error fetch (also present in the
    # paper's Figure 8 port ring).
    all_windows_ports = {
        port for ports in windows.values() for port in ports
    }
    assert {4444, 4653, 9515, 17556}.isdisjoint(all_windows_ports)
    assert len(set(BIGIP_ASM_PORTS) & all_windows_ports) <= 1

    linux = fig.data["linux"]
    http_like = sum(linux.get("http", {}).values()) + sum(
        linux.get("https", {}).values()
    )
    total_linux = sum(sum(ports.values()) for ports in linux.values())
    assert http_like / total_linux >= 0.7
