"""Ablation: the serve daemon under closed-loop load with full chaos.

Two claims from the service tentpole are pinned here:

* **correctness under chaos** — with every serve fault seam firing at
  once (trickling clients, torn uploads, crashing workers, wedged
  parses, a disk-full journal), a fleet of closed-loop clients that
  honours the documented backpressure contract obtains **every** report,
  each byte-identical to the batch ``repro analyze --json`` output.
  Wrong or partial reports: zero tolerated.  The server may refuse
  (429/503/408, with retry hints) — it may never lie.
* **recovery equivalence** — a second server resumed from the first
  run's journal answers the same corpus byte-identically, whether a
  digest survived in the warmed cache or has to be re-analyzed from
  scratch.

The latency distribution (submit → report in hand, including backoff)
is persisted as ``BENCH_serve.json`` in ``repro-metrics-v1`` form.
"""

import json
import tempfile

from repro import obs
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.netlog import dumps
from repro.obs.export import snapshot
from repro.serve.bench import BenchItem, run_load
from repro.serve.engine import EngineConfig, JobEngine
from repro.serve.http import ReproServer, ServerConfig
from repro.serve.report import analyze_report_text
from repro.storage.db import TelemetryStore
from repro.storage.jobs import JobJournal

from .conftest import write_artifact
from tests.conftest import EventBuilder

CLIENTS = 6
ROUNDS = 3

CHAOS = FaultPlan(
    seed="serve-bench-chaos",
    faults=(
        FaultSpec(kind=FaultKind.SLOW_CLIENT, rate=0.15, duration=30),
        FaultSpec(kind=FaultKind.TORN_UPLOAD, rate=0.3, times=1),
        FaultSpec(kind=FaultKind.WORKER_CRASH, rate=0.25, times=1),
        FaultSpec(kind=FaultKind.HANG, rate=0.15, times=1),
        FaultSpec(kind=FaultKind.JOURNAL_DISK_FULL, rate=0.2, times=2),
    ),
)


def _document(urls) -> bytes:
    builder = EventBuilder()
    builder.page_commit("https://site.example/", time=100.0)
    for index, url in enumerate(urls):
        builder.request(url, time=2100.0 + 5.0 * index)
    return dumps(builder.events).encode()


def _corpus() -> list[BenchItem]:
    """Six distinct uploads spanning the paper's traffic shapes."""
    shapes = {
        "localhost-probe": ["http://localhost:5939/check"],
        "portscan": [f"http://127.0.0.1:{p}/" for p in range(6000, 6040)],
        "lan-sweep": [f"http://192.168.1.{i}/cam.jpg" for i in range(1, 13)],
        "mixed": [
            "http://localhost:8000/setuid",
            "http://10.0.0.7/api",
            "https://cdn.example/app.js",
        ],
        "public-only": [
            f"https://cdn{i}.example/bundle.js" for i in range(8)
        ],
        "websocket-ports": [
            f"http://127.0.0.1:{p}/ws" for p in (5900, 5931, 5939, 63333)
        ],
    }
    return [
        BenchItem(name=name, body=body, expected=analyze_report_text(body))
        for name, body in (
            (name, _document(urls)) for name, urls in shapes.items()
        )
    ]


def _engine_config() -> EngineConfig:
    # backlog > clients: a re-run displaced by a crash/hang can always be
    # re-admitted, so chaos degrades latency, never verdicts.
    return EngineConfig(
        workers=2,
        backlog=16,
        job_deadline_s=1.0,
        quarantine_after=6,
        breaker_threshold=8,
        breaker_cooldown_s=0.3,
    )


def test_serve_load_under_chaos_is_byte_exact():
    obs.enable()
    try:
        corpus = _corpus()
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as top:
            db = f"{top}/serve.sqlite"
            spool = f"{top}/spool"

            # -- phase 1: chaos load -----------------------------------
            injector = FaultInjector(plan=CHAOS)
            with TelemetryStore(db, serialized=True, wal=True) as store:
                journal = JobJournal(
                    store, write_fault_hook=injector.journal_write_hook
                )
                engine = JobEngine(
                    _engine_config(),
                    journal=journal,
                    spool_dir=spool,
                    injector=injector,
                )
                server = ReproServer(
                    engine,
                    ServerConfig(read_timeout_s=5.0, sync_wait_s=5.0),
                    injector=injector,
                )
                with server:
                    result = run_load(
                        server.url,
                        corpus,
                        clients=CLIENTS,
                        rounds=ROUNDS,
                        give_up_after_s=120.0,
                    )

            expected_reports = CLIENTS * ROUNDS * len(corpus)
            assert result.wrong_reports == 0, result.summary()
            assert result.unrecovered == 0, result.summary()
            assert result.reports == expected_reports, result.summary()
            # The chaos plan actually fired: a quiet run proves nothing.
            chaos_counts = {
                kind.value: count
                for kind, count in sorted(
                    injector.injected.items(), key=lambda kv: kv[0].value
                )
            }
            assert chaos_counts, "no faults injected"
            # Round 2+ resubmissions of settled digests are cache hits.
            assert result.cache_hits > 0, result.summary()

            # -- phase 2: restart + resume equivalence -----------------
            with TelemetryStore(db, serialized=True, wal=True) as store:
                engine = JobEngine(
                    _engine_config(),
                    journal=JobJournal(store),
                    spool_dir=spool,
                )
                recovered, warmed = engine.resume()
                with ReproServer(engine) as server:
                    replay = run_load(
                        server.url, corpus, clients=2, rounds=1,
                        give_up_after_s=120.0,
                    )
            assert replay.wrong_reports == 0, replay.summary()
            assert replay.unrecovered == 0, replay.summary()
            assert replay.reports == 2 * len(corpus), replay.summary()

        document = snapshot(
            obs.registry(),
            meta={
                "bench": "ablation-serve",
                "corpus": [item.name for item in corpus],
                "clients": CLIENTS,
                "rounds": ROUNDS,
                "chaos": chaos_counts,
                "load": result.summary(),
                "restart": {
                    "recovered_jobs": recovered,
                    "warmed_reports": warmed,
                    "replay": replay.summary(),
                },
            },
        )
        write_artifact("BENCH_serve.json", json.dumps(document, indent=2))
    finally:
        obs.disable()
