"""Ablation: sharded crawl fabric — scaling curve and kill-9 chaos.

Two claims from the sharded fabric are pinned here:

* **scaling** — visits/s grows with the shard-process count when real
  cores are available.  The curve is always recorded (``BENCH_shard.json``,
  a ``repro-metrics-v1`` snapshot with the curve in ``meta``); the
  monotonicity assertion only fires when the runner exposes >= 2 CPUs
  (``os.sched_getaffinity``), because on a single core the shards
  timeshare and the curve is honestly flat.
* **crash equivalence** — a chaos run whose shards are SIGKILLed
  mid-visit and restarted-with-resume merges to the same campaign digest,
  finding fingerprints, and Table 1/Table 5 renders as a fault-free
  serial single-process campaign.

``REPRO_BENCH_SCALE`` scales the population like every other bench
(floored so the chaos plan's visit trigger always fires).
"""

import json
import os
import tempfile
import time

from repro import obs
from repro.analysis import tables
from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.fabric import CrawlFabric, FabricConfig
from repro.crawler.shard import PopulationSpec
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.export import snapshot
from repro.storage.db import TelemetryStore
from repro.storage.integrity import campaign_digest

from .conftest import SCALE, write_artifact

CRAWL = "top2021"
#: Scales with the bench run but never below 200 domains: the chaos
#: trigger (visit 7 of a shard) and a meaningful curve need a floor.
ABLATION_SCALE = max(0.002, min(0.02, 0.003 * SCALE))
SHARD_COUNTS = (1, 2, 4)
CPUS = len(os.sched_getaffinity(0))


def _serial_baseline(workdir: str):
    spec = PopulationSpec(population=CRAWL, scale=ABLATION_SCALE)
    path = os.path.join(workdir, "serial.db")
    started = time.perf_counter()
    with TelemetryStore(path, wal=True) as store:
        result = Campaign(store=store).run(spec.build())
        digest = campaign_digest(store, CRAWL)
    seconds = time.perf_counter() - started
    return spec, result, digest, seconds


def _render(result) -> tuple[str, str]:
    table_1 = tables.table_1(list(result.stats.values())).text
    table_5 = tables.table_5(result.findings).text
    return table_1, table_5


def _run_fabric(spec, workdir: str, shards: int, plan=None):
    fabric = CrawlFabric(
        spec,
        FabricConfig(shards=shards, heartbeat_timeout_s=30.0),
        workdir=workdir,
        fault_plan=plan,
    )
    started = time.perf_counter()
    outcome = fabric.run()
    seconds = time.perf_counter() - started
    return fabric, outcome, seconds


def test_sharding_scaling_curve_and_chaos_equivalence():
    obs.enable()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as top:
            spec, serial_result, serial_digest, serial_s = _serial_baseline(
                top
            )
            visits = len(spec.build().websites) * len(serial_result.oses)
            curve = [
                {
                    "shards": 0,  # 0 = the serial single-process campaign
                    "seconds": round(serial_s, 4),
                    "visits_per_s": round(visits / serial_s, 1),
                }
            ]

            # -- scaling curve ------------------------------------------
            for count in SHARD_COUNTS:
                workdir = os.path.join(top, f"fleet-{count}")
                fabric, outcome, seconds = _run_fabric(spec, workdir, count)
                with TelemetryStore(fabric.rollup_path) as store:
                    assert campaign_digest(store, CRAWL) == serial_digest
                curve.append(
                    {
                        "shards": count,
                        "seconds": round(seconds, 4),
                        "visits_per_s": round(visits / seconds, 1),
                        "chunks": outcome.report.chunks,
                        "steals": outcome.report.steals,
                    }
                )

            # -- kill-9 chaos -------------------------------------------
            plan = FaultPlan(
                seed="bench-chaos",
                faults=(
                    FaultSpec(
                        kind=FaultKind.SHARD_CRASH, rate=1.0, at_count=7
                    ),
                ),
            )
            fabric, outcome, chaos_s = _run_fabric(
                spec, os.path.join(top, "chaos"), 2, plan=plan
            )
            assert outcome.report.total_restarts >= 1, (
                "chaos plan injected no shard kills"
            )
            with TelemetryStore(fabric.rollup_path) as store:
                assert campaign_digest(store, CRAWL) == serial_digest
            assert [
                finding_fingerprint(f) for f in outcome.result.findings
            ] == [finding_fingerprint(f) for f in serial_result.findings]
            assert _render(outcome.result) == _render(serial_result)

            chaos = {
                "shards": 2,
                "seconds": round(chaos_s, 4),
                "restarts": outcome.report.total_restarts,
                "duplicate_rows": outcome.report.duplicate_rows,
                "digest_equal_serial": True,
            }

        snapshot_doc = snapshot(
            obs.registry(),
            meta={
                "bench": "ablation-sharding",
                "population": CRAWL,
                "scale": ABLATION_SCALE,
                "visits": visits,
                "cpus": CPUS,
                "curve": curve,
                "chaos": chaos,
            },
        )
        write_artifact("BENCH_shard.json", json.dumps(snapshot_doc, indent=2))

        # Scaling is only assertable with real parallel hardware: on one
        # core the shards timeshare and the honest curve is flat.
        if CPUS >= 2:
            best = max(point["visits_per_s"] for point in curve[2:])
            single = curve[1]["visits_per_s"]
            assert best > single, (
                f"no speedup from sharding on {CPUS} CPUs: {curve}"
            )
    finally:
        obs.disable()
