"""Bench: regenerate Table 8 — malicious localhost requesters.

Paper targets: ~151 sites (we seed 148, see EXPERIMENTS.md): malware
dominated by compromised-WordPress developer errors (the "79 domains
omitted for brevity"), phishing dominated by ThreatMetrix clones
(Windows-only WSS scans inherited from cloned pages) and
rakuten/amazon-impersonating dev-error pages on Linux.
"""

from collections import Counter

from repro.analysis import rq3, tables
from repro.core.signatures import BehaviorClass

from .conftest import write_artifact


def test_table8_regeneration(benchmark, malicious):
    _, result = malicious
    rendered = benchmark(tables.table_8, result.findings)
    write_artifact("table8.txt", rendered.text)
    print("\n" + rendered.text[:4000])

    assert len(rendered.rows) == 148
    by_category = Counter(row["category"] for row in rendered.rows)
    assert by_category["malware"] == 88
    assert by_category["phishing"] == 60
    assert by_category.get("abuse", 0) == 0

    clones = rq3.detect_phishing_clones(result.findings)
    assert clones.count == 18
    assert "customer-ebay.com" in clones.clone_domains
    assert clones.impersonated_hint["customer-ebay.com"] == "ebay.com"

    # >90% of malicious localhost sites reflect developer errors or other
    # benign-origin traffic — no attack traffic exists (section 4.3.4).
    behaviors = Counter(row["behavior"] for row in rendered.rows)
    benign_origin = (
        behaviors[BehaviorClass.DEVELOPER_ERROR]
        + behaviors[BehaviorClass.NATIVE_APPLICATION]
        + behaviors[BehaviorClass.UNKNOWN]
    )
    assert behaviors[BehaviorClass.DEVELOPER_ERROR] / len(rendered.rows) > 0.7
    assert benign_origin + clones.count == len(rendered.rows)
