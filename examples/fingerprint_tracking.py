"""How much can a local scan identify *you*? (paper §5.2)

The paper warns that the host profiling it observed — done today for
fraud and bot detection — "can naturally be extended for user
fingerprinting and tracking", because which services listen on your
localhost is a high-entropy, fairly stable feature.  This example
measures that claim over a synthetic population of 10,000 users whose
machines run realistic mixes of the applications the paper encountered
(Discord, TeamViewer, game clients, dev servers, ...).

Run:  python examples/fingerprint_tracking.py
"""

from repro.core.fingerprint import (
    DEFAULT_SERVICE_POOL,
    run_study,
    synthetic_host_population,
)
from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS

POPULATION = 10_000


def main() -> None:
    pool = [port for port, _ in DEFAULT_SERVICE_POOL]
    rates = [rate for _, rate in DEFAULT_SERVICE_POOL]
    print(f"simulating {POPULATION} user machines; service adoption:")
    for port, rate in DEFAULT_SERVICE_POOL:
        print(f"  port {port:>6}: {rate:>5.0%} of users")

    profiles = synthetic_host_population(
        POPULATION, service_pool=pool, adoption=rates
    )

    print(f"\n{'scan scope':<42}{'entropy':>9}{'unique':>9}{'median set':>12}")
    for label, ports in (
        ("BIG-IP ASM profile (7 ports)", BIGIP_ASM_PORTS),
        ("ThreatMetrix profile (14 ports)", THREATMETRIX_PORTS),
        ("a greedy tracker (all 15 services)", pool),
    ):
        study = run_study(profiles, ports)
        print(
            f"{label:<42}{study.entropy_bits():>7.2f} b"
            f"{study.unique_fraction():>9.1%}"
            f"{study.median_anonymity_set():>12.0f}"
        )

    greedy = run_study(profiles, pool)
    print(
        f"\nA tracker scanning all pooled services extracts "
        f"{greedy.entropy_bits():.1f} bits — shrinking the median user's "
        f"anonymity set from {POPULATION} to "
        f"{greedy.median_anonymity_set():.0f}. Combined with classic "
        "browser fingerprinting surfaces, that is substantial identifying "
        "signal, which is the paper's §5.2 warning in numbers."
    )


if __name__ == "__main__":
    main()
