"""Analyse a NetLog JSON dump for local network activity.

The deployment scenario the core library targets: you captured telemetry
with ``chrome --log-net-log=netlog.json`` (or any producer of the NetLog
format) and want to know whether the page talked to your localhost or
LAN, and why.

Usage:
    python examples/analyze_netlog.py [netlog.json]

Without an argument the example first *creates* a demo capture (a
simulated visit to a page with a Discord probe and a stale WordPress dev
fetch), writes it to ``/tmp/demo-netlog.json``, then analyses that file —
so it is runnable out of the box.
"""

import sys
from pathlib import Path

from repro.browser import Page, SimulatedChrome, identity_for
from repro.core import (
    BehaviorClassifier,
    Locality,
    LocalTrafficDetector,
)
from repro.netlog import dump, load
from repro.web.behaviors import NativeAppProbe, ResourceFetchBehavior

DEMO_PATH = Path("/tmp/demo-netlog.json")


def make_demo_capture(path: Path) -> None:
    """Write a demo NetLog: one page with two local behaviours."""
    page = Page(
        url="https://community.example/",
        scripts=[
            NativeAppProbe(
                name="discord-invite-widget",
                scheme="ws",
                ports=tuple(range(6463, 6473)),
                path="/?v=1",
                active_oses=frozenset({"windows", "linux", "mac"}),
                host="localhost",
                delay_ms=1_500.0,
            ),
            ResourceFetchBehavior(
                name="stale-banner",
                urls=("http://127.0.0.1:8888/wp-content/uploads/banner.jpg",),
                active_oses=frozenset({"windows", "linux", "mac"}),
                delay_ms=600.0,
            ),
        ],
        resources=["https://cdn.example/site.css"],
    )
    visit = SimulatedChrome(identity_for("linux")).visit(page)
    with path.open("w") as fp:
        dump(visit.events, fp)
    print(f"wrote demo capture to {path} ({len(visit.events)} events)")


def analyze(path: Path) -> None:
    with path.open() as fp:
        events = load(fp, strict=False)
    print(f"parsed {len(events)} events from {path}")

    detection = LocalTrafficDetector().detect(events)
    if not detection.has_local_activity:
        print("no localhost or LAN traffic found.")
        return

    print(f"\nfound {len(detection.requests)} locally-bound requests:")
    for request in detection.requests:
        redirect_note = " (via redirect)" if request.via_redirect else ""
        initiator = f" initiator={request.initiator}" if request.initiator else ""
        print(
            f"  [{request.locality.value:<9}] "
            f"{request.scheme}://{request.host}:{request.port}{request.path}"
            f"{redirect_note}{initiator}"
        )

    for locality in (Locality.LOCALHOST, Locality.LAN):
        delay = detection.first_local_request_delay_ms(locality)
        if delay is not None:
            print(f"first {locality.value} request: "
                  f"{delay / 1000:.1f}s after page load")

    verdict = BehaviorClassifier().classify(detection.requests)
    print(f"\nclassification: {verdict.behavior.value}")
    if verdict.match:
        print(f"  signature:  {verdict.signature_name}")
        print(f"  detail:     {verdict.match.detail}")
        print(f"  confidence: {verdict.match.confidence:.0%}")


def main() -> None:
    if len(sys.argv) > 1:
        analyze(Path(sys.argv[1]))
    else:
        make_demo_capture(DEMO_PATH)
        analyze(DEMO_PATH)


if __name__ == "__main__":
    main()
