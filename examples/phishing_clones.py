"""Investigate phishing pages that inherit local scans (section 4.3.1).

The paper's most curious malicious-crawl finding: phishing sites showed
the *exact* ThreatMetrix localhost scan of the brands they impersonate —
because the attackers cloned the target's web interface, JavaScript
included.  This example runs the malicious crawl (reduced filler), flags
the fraud-detection-classified phishing pages, and lines each clone up
with the legitimate deployer whose traffic it inherited.

Run:  python examples/phishing_clones.py
"""

from repro.analysis import rq3
from repro.core.addresses import Locality
from repro.core.signatures import BehaviorClass
from repro.crawler.campaign import run_campaign
from repro.web.population import (
    build_malicious_population,
    build_top_population,
)


def main() -> None:
    print("crawling malicious population (0.5% filler scale) ...")
    malicious = run_campaign(build_malicious_population(scale=0.005))
    print("crawling top-100K population for the legitimate deployers ...")
    top = run_campaign(build_top_population(2020, scale=0.005))

    legitimate_deployers = {
        f.domain
        for f in top.findings
        if f.behavior is BehaviorClass.FRAUD_DETECTION
    }
    print(f"\nlegitimate ThreatMetrix deployers (top-100K): "
          f"{len(legitimate_deployers)}")

    clones = rq3.detect_phishing_clones(malicious.findings)
    print(f"phishing pages with inherited scans: {clones.count}\n")

    for domain in clones.clone_domains:
        finding = malicious.finding(domain)
        assert finding is not None
        ports = sorted(finding.ports(Locality.LOCALHOST))
        impersonated = clones.impersonated_hint.get(domain, "(brand unclear)")
        marker = (
            "→ same scan as " + impersonated
            if impersonated in legitimate_deployers
            or impersonated.replace(".com", "") in str(legitimate_deployers)
            else "→ impersonates " + impersonated
        )
        print(f"  {domain:<46} {len(ports)} wss ports  {marker}")

    # The inherited scans are byte-identical to the legitimate ones.
    clone = malicious.finding("customer-ebay.com")
    original = top.finding("ebay.com")
    assert clone is not None and original is not None
    same = clone.ports(Locality.LOCALHOST) == original.ports(Locality.LOCALHOST)
    print(f"\ncustomer-ebay.com scan ports identical to ebay.com: {same}")
    print("\nAs in the paper: the phishing pages did not attack the local")
    print("network — they blindly copied a defensive script while cloning")
    print("their target's interface.")


if __name__ == "__main__":
    main()
