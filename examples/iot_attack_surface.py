"""The attack the paper searched for: web-based LAN/IoT discovery.

Prior work (Acar et al., sonar.js, lan-js — section 2.1) showed webpages
*can* sweep a visitor's home network and discover IoT devices.  The
paper's crawls found **zero** sites doing this.  This example shows both
halves of that result:

1. a hypothetical attack page sweeping 192.168.1.0/26 against a
   simulated home network *is* caught by the pipeline and classified
   ``Internal Network Attack`` — the detector has no blind spot;
2. the full seeded 2020 population, crawled the same way, contains no
   such site — the paper's negative result, reproduced as a measurement.

Run:  python examples/iot_attack_surface.py
"""

from repro.core.classifier import BehaviorClassifier
from repro.core.detector import LocalTrafficDetector
from repro.core.signatures import BehaviorClass
from repro.crawler.campaign import run_campaign
from repro.crawler.vm import OSEnvironment
from repro.web.behaviors import LanSweepBehavior
from repro.web.iot import typical_home_network
from repro.web.population import build_top_population
from repro.web.website import Website


def hypothetical_attack() -> None:
    print("== 1. A hypothetical attack page, on a real home network ==")
    network = typical_home_network(device_count=5)
    print("the visitor's LAN:")
    for device in network.devices:
        print(f"  {device.address:<16} {device.kind} ({device.url})")

    environment = OSEnvironment.for_os("linux")
    network.install(environment.services)
    attacker = Website(
        "totally-legit-weather.example",
        behaviors=[
            LanSweepBehavior(
                name="sonar.js-style sweep",
                subnet="192.168.1",
                active_oses=frozenset({"windows", "linux", "mac"}),
                host_range=(1, 64),
            )
        ],
    )
    chrome = environment.browser()
    visit = chrome.visit(attacker.page())
    detection = LocalTrafficDetector().detect(visit.events)
    print(f"\nthe page probed {len(detection.lan_requests)} LAN addresses")
    verdict = BehaviorClassifier().classify(detection.requests)
    print(f"pipeline verdict: {verdict.behavior.value} "
          f"({verdict.match.detail})")
    assert verdict.behavior is BehaviorClass.INTERNAL_ATTACK


def measured_reality() -> None:
    print("\n== 2. What the measured web actually does ==")
    population = build_top_population(2020, scale=0.01)
    result = run_campaign(population)
    attacks = [
        f for f in result.findings
        if f.behavior is BehaviorClass.INTERNAL_ATTACK
    ]
    lan_sites = [f for f in result.findings if f.has_lan_activity]
    print(f"top-100K crawl: {len(result.findings)} sites with local "
          f"activity, {len(lan_sites)} touching the LAN")
    print(f"sites classified as internal-network attacks: {len(attacks)}")
    print("\nEvery LAN-touching site contacts exactly one address — a "
          "forgotten dev server or a censorship middlebox — never a sweep. "
          "The paper's negative result, reproduced.")


def main() -> None:
    hypothetical_attack()
    measured_reality()


if __name__ == "__main__":
    main()
