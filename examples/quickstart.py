"""Quickstart: detect and classify a website's local network traffic.

Simulates one Chrome visit to an eBay-like page on Windows (whose
ThreatMetrix script scans 14 localhost ports over WSS), captures the
NetLog telemetry, round-trips it through the NetLog JSON format, and runs
the detector + classifier — the complete core-library workflow in ~40
lines.

Run:  python examples/quickstart.py
"""

from repro.browser import Page, SimulatedChrome, identity_for
from repro.core import BehaviorClassifier, Locality, LocalTrafficDetector
from repro.netlog import dumps, loads
from repro.web.behaviors import PortScanBehavior
from repro.web.seeds import TM_PORTS


def main() -> None:
    # 1. A page embedding a ThreatMetrix-style fraud-detection scanner.
    page = Page(
        url="https://shop.example/",
        scripts=[
            PortScanBehavior(
                name="threatmetrix@h.online-metrix.net",
                scheme="wss",
                ports=TM_PORTS,
                active_oses=frozenset({"windows"}),
                delay_ms=9_000.0,
                telemetry_url="https://h.online-metrix.net/fp/clear.png",
            )
        ],
        resources=["https://cdn.example/app.js"],
    )

    # 2. Visit it with a simulated Chrome on Windows; monitor for 20 s.
    chrome = SimulatedChrome(identity_for("windows"))
    visit = chrome.visit(page)
    print(f"visited {visit.url}: success={visit.success}, "
          f"{len(visit.events)} NetLog events")

    # 3. Round-trip the telemetry through the NetLog JSON format — the
    #    same parser ingests logs from `chrome --log-net-log=...`.
    events = loads(dumps(visit.events))

    # 4. Detect locally-bound requests.
    detection = LocalTrafficDetector().detect(events)
    print(f"local requests: {len(detection.requests)} "
          f"(localhost={len(detection.localhost_requests)}, "
          f"lan={len(detection.lan_requests)})")
    for request in detection.requests[:5]:
        print(f"  {request.scheme}://{request.host}:{request.port}"
              f"{request.path}")
    delay = detection.first_local_request_delay_ms(Locality.LOCALHOST)
    print(f"first local request fired {delay / 1000:.1f}s after page load")

    # 5. Attribute the behaviour.
    verdict = BehaviorClassifier().classify(detection.requests)
    print(f"behaviour: {verdict.behavior.value} "
          f"(signature: {verdict.signature_name}, "
          f"confidence {verdict.match.confidence:.0%})")


if __name__ == "__main__":
    main()
