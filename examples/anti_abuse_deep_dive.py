"""Deep dive into the anti-abuse scanners (paper sections 4.3.1–4.3.2).

Recreates the paper's analysis of *how* ThreatMetrix and BIG-IP ASM learn
about your machine:

1. the port → service mapping (Table 4): what each probed port reveals;
2. the Same-Origin Policy asymmetry: WSS probes read responses, HTTP
   probes are opaque — but the connect-latency side channel still leaks
   port liveness;
3. what each scanner concludes about two host profiles — a clean machine
   and one running TeamViewer + a bot.

Run:  python examples/anti_abuse_deep_dive.py
"""

from repro.browser import (
    LocalServiceTable,
    Origin,
    SameOriginPolicy,
    SimulatedNetwork,
)
from repro.core import DEFAULT_REGISTRY, parse_target
from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS, ScanPurpose


def show_port_knowledge() -> None:
    print("== What the scanned ports reveal (Table 4) ==")
    for row in DEFAULT_REGISTRY.rows():
        marker = "malware " if row.is_malware else ""
        print(f"  {row.port:>6}  {marker}{row.service:<38} "
              f"[{row.purpose.value}]")
    fraud = DEFAULT_REGISTRY.ports_for(ScanPurpose.FRAUD_DETECTION)
    bot = DEFAULT_REGISTRY.ports_for(ScanPurpose.BOT_DETECTION)
    print(f"\n  fraud-detection profile: {len(fraud)} ports "
          "(remote-desktop/remote-control software)")
    print(f"  bot-detection profile:   {len(bot)} ports "
          f"({len(DEFAULT_REGISTRY.malware_ports())} known-malware ports "
          "+ automation tooling)")


def scan_host(label: str, services: LocalServiceTable) -> None:
    """Run both scan profiles against one host profile."""
    network = SimulatedNetwork(services=services)
    policy = SameOriginPolicy()
    page = Origin(scheme="https", host="shop.example", port=443)

    print(f"\n== Scanning host profile: {label} ==")
    for name, scheme, ports in (
        ("ThreatMetrix (wss)", "wss", THREATMETRIX_PORTS),
        ("BIG-IP ASM (http)", "http", BIGIP_ASM_PORTS),
    ):
        findings = []
        for port in ports:
            target = parse_target(f"{scheme}://localhost:{port}/")
            outcome = network.connect("127.0.0.1", port)
            signal = policy.observable_signal(
                page, target, connect_ok=outcome.ok,
                latency_ms=outcome.latency_ms, banner=outcome.banner,
            )
            if signal["completed"]:
                service = DEFAULT_REGISTRY.service_name(port)
                if "banner" in signal:
                    readable = f'read banner "{signal["banner"]}"'
                elif signal.get("readable"):
                    readable = "response readable"
                else:
                    readable = (
                        f"opaque, but latency {signal['latency_ms']:.1f}ms "
                        "reveals liveness"
                    )
                findings.append(f"port {port} open ({service}) — {readable}")
        if findings:
            print(f"  {name}:")
            for finding in findings:
                print(f"    ⚑ {finding}")
        else:
            print(f"  {name}: nothing detected (clean profile)")


def main() -> None:
    show_port_knowledge()

    scan_host("clean crawl VM", LocalServiceTable())

    suspicious = LocalServiceTable()
    suspicious.open_service("127.0.0.1", 5939, banner="TeamViewer 15.8.3")
    suspicious.open_service("127.0.0.1", 3389, banner="RDP NLA")
    suspicious.open_service("127.0.0.1", 9515)  # W32.Loxbot.A / chromedriver
    scan_host("remote-controlled host (TeamViewer + RDP + bot port)",
              suspicious)

    print("\nTakeaway: the WSS profile reads data from open ports (no SOP),")
    print("the HTTP profile only sees timing — both suffice to flag hosts")
    print("running remote-control software, which is exactly the paper's")
    print("hypothesis for why these vendors scan localhost.")


if __name__ == "__main__":
    main()
