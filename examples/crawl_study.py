"""Reproduce the paper's measurement study end to end (reduced scale).

Builds the three populations — Tranco-like top lists for 2020 and 2021
plus the ~146K-equivalent malicious set — crawls them across OSes with
the simulated Chrome, and prints the headline RQ1/RQ2/RQ3 answers next
to the paper's numbers.  At ``SCALE = 1.0`` this is the full study
(~3 minutes); the default 2% keeps it interactive while every seeded
site is still present.

Run:  python examples/crawl_study.py [scale]
"""

import sys

from repro.analysis import figures, rq1, rq2, rq3, tables
from repro.core.addresses import Locality
from repro.crawler.campaign import run_campaign
from repro.web.population import (
    build_malicious_population,
    build_top_population,
)

SCALE = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02


def main() -> None:
    print(f"building populations at scale {SCALE:.0%} ...")
    top2020 = build_top_population(2020, scale=SCALE)
    top2021 = build_top_population(
        2021, scale=SCALE, base_list=top2020.top_list
    )
    malicious = build_malicious_population(scale=SCALE / 4)

    print("crawling (this is the full pipeline: browser -> NetLog -> "
          "detector -> classifier) ...")
    result_2020 = run_campaign(top2020)
    result_2021 = run_campaign(top2021)
    result_malicious = run_campaign(malicious)

    # ---- Table 1: crawl statistics -------------------------------------
    print("\n== Crawl statistics (Table 1) ==")
    print(tables.table_1(
        list(result_2020.stats.values())
        + list(result_2021.stats.values())
        + list(result_malicious.stats.values())
    ).text)

    # ---- RQ1: which sites ------------------------------------------------
    summary = rq1.summarize_activity(result_2020.findings, Locality.LOCALHOST)
    print("\n== RQ1 (2020): which sites talk to the local network? ==")
    print(f"localhost-active sites: {summary.total_sites}  (paper: 107)")
    print(f"per OS: {summary.per_os}  (paper: W 92 / L 54 / M 54)")
    print(f"Windows-exclusive: {summary.os_exclusive('windows')} (paper: 48)")
    lan = [f for f in result_2020.findings if f.has_lan_activity]
    print(f"LAN-active sites: {len(lan)}  (paper: 9)")
    print("\n" + tables.table_3(result_2020.findings).text)

    # ---- RQ2: traffic characteristics --------------------------------
    print("\n== RQ2: what does the traffic look like? ==")
    share = rq2.websocket_share(
        result_2020.findings, Locality.LOCALHOST, "windows"
    )
    print(f"WebSocket share of Windows localhost requests: {share:.0%} "
          "(paper: ~60% wss + ws)")
    print(figures.figure_5(result_2020.findings).text)

    # ---- RQ3: why -------------------------------------------------------
    print("\n== RQ3: why do sites make local requests? ==")
    for behavior, count in sorted(
        rq3.behavior_counts(result_2020.findings, Locality.LOCALHOST).items(),
        key=lambda kv: -kv[1],
    ):
        print(f"  {behavior.value:<22}{count:>4}")
    print("(paper: 35-36 fraud / 10 bot / 12 native / 44-45 dev / 5 unknown)")

    # ---- Longitudinal + malicious --------------------------------------
    comparison = rq1.compare_rounds(
        result_2020.findings,
        result_2021.findings,
        Locality.LOCALHOST,
        first_round_crawled={w.domain for w in top2020.websites},
    )
    print(f"\n2021 crawl: {comparison.second_round_total} localhost sites "
          f"(paper: 82); {len(comparison.continuing)} continuing, "
          f"{len(comparison.stopped)} stopped")

    clones = rq3.detect_phishing_clones(result_malicious.findings)
    print(f"\nmalicious crawl: {sum(1 for f in result_malicious.findings if f.has_localhost_activity)} "
          "localhost-active sites (paper: ~151)")
    print(f"phishing pages inheriting ThreatMetrix scans from cloned "
          f"interfaces: {clones.count} (paper: Table 8 lists 14+ domains)")
    for domain, target in sorted(clones.impersonated_hint.items())[:5]:
        print(f"  {domain}  →  impersonates {target}")


if __name__ == "__main__":
    main()
