"""Evaluate the Private Network Access defense (paper section 5.3).

Measures the 2020 top-100K population (reduced scale), then replays every
observed local request through three PNA deployment scenarios, asking the
paper's question: does the policy block the scans and the developer-error
leakage *while preserving legitimate native-application communication*?

Run:  python examples/pna_defense.py
"""

from repro.core.signatures import BehaviorClass
from repro.crawler.campaign import run_campaign
from repro.defense import (
    PrivateNetworkAccessPolicy,
    evaluate_policy,
    native_app_directory,
)
from repro.web.population import build_top_population


def main() -> None:
    print("crawling the seeded 2020 population (2% filler scale) ...")
    population = build_top_population(2020, scale=0.02)
    result = run_campaign(population)
    localhost_sites = sum(
        1 for f in result.findings if f.has_localhost_activity
    )
    print(f"{localhost_sites} localhost-active sites measured\n")

    scenarios = [
        (
            "PNA, no local service adopts the header",
            PrivateNetworkAccessPolicy(),
        ),
        (
            "PNA, native-app vendors ship the header",
            PrivateNetworkAccessPolicy(
                directory=native_app_directory(result.findings)
            ),
        ),
        (
            "interim prompt mode (user denies everything)",
            PrivateNetworkAccessPolicy(prompt_mode=True),
        ),
    ]

    for label, policy in scenarios:
        evaluation = evaluate_policy(result.findings, policy, label=label)
        print(evaluation.render())
        native = evaluation.impacts.get(BehaviorClass.NATIVE_APPLICATION)
        if native is not None:
            verdict = (
                "PRESERVED ✓"
                if native.sites_fully_blocked == 0 and native.block_rate == 0
                else f"broken for {native.sites_fully_blocked}/{native.sites} sites ✗"
            )
            print(f"  legitimate native-app use case: {verdict}")
        print()

    print("Conclusion (matches section 5.3): the preflight opt-in model")
    print("only works if native applications adopt it — with adoption it")
    print("kills the scans and dev-error leaks while keeping app")
    print("integrations alive; without adoption it breaks them too, and")
    print("the interim prompt pushes the decision onto the user.")


if __name__ == "__main__":
    main()
