"""Tests for the script behaviour models."""

import pytest

from repro.browser.page import ScriptContext
from repro.web.behaviors import (
    DirectLocalFetch,
    NativeAppProbe,
    PortScanBehavior,
    PublicResourceBehavior,
    RedirectToLocalBehavior,
    ResourceFetchBehavior,
)

W = frozenset({"windows"})
ALL = frozenset({"windows", "linux", "mac"})


def _context(os_name="windows") -> ScriptContext:
    return ScriptContext(
        os_name=os_name, user_agent="UA", page_url="https://site.example/"
    )


class TestPortScanBehavior:
    def _scan(self, **kwargs):
        defaults = dict(
            name="threatmetrix@vendor.example",
            scheme="wss",
            ports=(3389, 5939, 7070),
            active_oses=W,
            delay_ms=8000.0,
        )
        defaults.update(kwargs)
        return PortScanBehavior(**defaults)

    def test_probes_every_port_on_active_os(self):
        plan = self._scan().plan(_context("windows"))
        assert [p.url for p in plan] == [
            "wss://localhost:3389/",
            "wss://localhost:5939/",
            "wss://localhost:7070/",
        ]

    def test_inactive_os_plans_nothing(self):
        assert self._scan().plan(_context("linux")) == []

    def test_probes_fire_as_a_burst_after_delay(self):
        plan = self._scan().plan(_context("windows"))
        delays = [p.delay_ms for p in plan]
        assert min(delays) == 8000.0
        assert max(delays) - min(delays) < 1000.0
        assert delays == sorted(delays)

    def test_telemetry_upload_is_public_and_post(self):
        scan = self._scan(telemetry_url="https://vendor.example/fp/clear.png")
        plan = scan.plan(_context("windows"))
        upload = plan[-1]
        assert upload.url.startswith("https://vendor.example/")
        assert upload.method == "POST"
        assert upload.delay_ms > max(p.delay_ms for p in plan[:-1])

    def test_empty_os_set_rejected_by_helpers(self):
        from repro.web.behaviors import _oses

        with pytest.raises(ValueError):
            _oses(())


class TestNativeAppProbe:
    def test_probe_urls_and_path(self):
        probe = NativeAppProbe(
            name="Discord",
            scheme="ws",
            ports=(6463, 6464),
            path="/?v=1",
            active_oses=ALL,
            host="localhost",
        )
        plan = probe.plan(_context("mac"))
        assert [p.url for p in plan] == [
            "ws://localhost:6463/?v=1",
            "ws://localhost:6464/?v=1",
        ]
        assert all(p.initiator == "Discord" for p in plan)


class TestResourceFetchBehavior:
    def test_fetches_each_url_in_order(self):
        fetch = ResourceFetchBehavior(
            name="dev",
            urls=(
                "http://127.0.0.1:8888/wp-content/a.jpg",
                "http://127.0.0.1:8888/wp-content/b.jpg",
            ),
            active_oses=ALL,
            delay_ms=700.0,
        )
        plan = fetch.plan(_context("linux"))
        assert len(plan) == 2
        assert plan[0].delay_ms == 700.0
        assert plan[1].delay_ms > plan[0].delay_ms


class TestRedirectToLocalBehavior:
    def test_public_request_carries_local_redirect(self):
        behavior = RedirectToLocalBehavior(
            name="redir",
            public_url="http://site.example/home",
            local_url="http://127.0.0.1:80/",
            active_oses=ALL,
        )
        (planned,) = behavior.plan(_context("mac"))
        assert planned.url == "http://site.example/home"
        assert planned.redirect_to == ("http://127.0.0.1:80/",)


class TestDirectLocalFetch:
    def test_single_direct_request(self):
        fetch = DirectLocalFetch(
            name="iframe",
            local_url="http://10.10.34.35:80/",
            active_oses=frozenset({"linux"}),
        )
        assert fetch.plan(_context("windows")) == []
        (planned,) = fetch.plan(_context("linux"))
        assert planned.url == "http://10.10.34.35:80/"


class TestPublicResourceBehavior:
    def test_defaults_to_all_oses(self):
        noise = PublicResourceBehavior(
            name="noise", urls=("https://cdn.example/app.js",)
        )
        for os_name in ("windows", "linux", "mac"):
            assert len(noise.plan(_context(os_name))) == 1
