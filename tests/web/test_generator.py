"""Tests for the what-if scenario population generator."""

import pytest

from repro.core.addresses import Locality
from repro.core.signatures import BehaviorClass
from repro.crawler.campaign import run_campaign
from repro.web.generator import ScenarioRates, generate_scenario


class TestScenarioRates:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioRates(fraud_detection=1.5).validate()
        with pytest.raises(ValueError):
            ScenarioRates(
                fraud_detection=0.6, developer_error=0.6
            ).validate()
        ScenarioRates().validate()  # defaults are sane


class TestGeneration:
    def test_deterministic(self):
        rates = ScenarioRates(fraud_detection=0.05)
        a = generate_scenario(500, rates, seed=1)
        b = generate_scenario(500, rates, seed=1)
        assert a.assigned == b.assigned

    def test_rates_are_respected(self):
        rates = ScenarioRates(
            fraud_detection=0.10, developer_error=0.10, tracker_scan=0.05
        )
        scenario = generate_scenario(2_000, rates, seed=7)
        assert 120 <= scenario.count("fraud") <= 280
        assert 120 <= scenario.count("dev") <= 280
        assert 50 <= scenario.count("tracker") <= 160

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_scenario(0, ScenarioRates())

    def test_zero_rates_generate_inert_population(self):
        scenario = generate_scenario(
            100,
            ScenarioRates(
                fraud_detection=0.0,
                bot_detection=0.0,
                native_app=0.0,
                developer_error=0.0,
            ),
        )
        assert not scenario.assigned
        result = run_campaign(scenario.population)
        assert result.findings == []


class TestScenarioMeasurement:
    def test_pipeline_recovers_the_assignment(self):
        """Ground truth in, measured classes out — the generator's
        assignments must be recovered by the full pipeline."""
        rates = ScenarioRates(
            fraud_detection=0.04,
            bot_detection=0.02,
            native_app=0.02,
            developer_error=0.04,
        )
        scenario = generate_scenario(1_000, rates, seed=3)
        result = run_campaign(scenario.population)
        measured = {
            f.domain: f.behavior
            for f in result.findings
            if f.has_localhost_activity
        }
        expected_class = {
            "fraud": BehaviorClass.FRAUD_DETECTION,
            "bot": BehaviorClass.BOT_DETECTION,
            "native": BehaviorClass.NATIVE_APPLICATION,
            "dev": BehaviorClass.DEVELOPER_ERROR,
        }
        for domain, kind in scenario.assigned.items():
            assert domain in measured, domain
            assert measured[domain] is expected_class[kind], (domain, kind)

    def test_tracker_scans_are_indistinguishable_from_fraud(self):
        """The §5.2 point: a tracking scan reusing the TM technique
        classifies identically by traffic shape — only attribution of the
        serving domain can separate them."""
        scenario = generate_scenario(
            400, ScenarioRates(tracker_scan=0.05), seed=9
        )
        result = run_campaign(scenario.population)
        trackers = [
            domain
            for domain, kind in scenario.assigned.items()
            if kind == "tracker"
        ]
        assert trackers
        for domain in trackers:
            finding = result.finding(domain)
            assert finding is not None
            assert finding.behavior is BehaviorClass.FRAUD_DETECTION
            # Attribution, however, shows an unknown third party.
            from repro.analysis.attribution import attribute_site

            attribution = attribute_site(finding, locality=Locality.LOCALHOST)
            assert "fingerprint-cdn.example" in attribution.third_party_domains
            assert "ThreatMetrix Inc." not in attribution.organizations
