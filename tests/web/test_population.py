"""Tests for population building and failure injection."""

from collections import Counter

from repro.web import seeds as S
from repro.web.population import build_top_population


class TestTopPopulation:
    def test_every_seed_present_even_at_small_scale(self, top2020_population):
        for seed in S.LOCALHOST_2020:
            assert seed.domain in top2020_population.by_domain

    def test_active_sites_have_behaviors(self, top2020_population):
        for domain in top2020_population.active_domains:
            assert top2020_population.website(domain).has_local_behavior()

    def test_filler_sites_have_no_behaviors(self, top2020_population):
        fillers = [
            w
            for w in top2020_population.websites
            if w.domain not in top2020_population.active_domains
        ]
        assert fillers
        assert all(not w.behaviors for w in fillers)

    def test_oses_match_measurement_years(
        self, top2020_population, top2021_population
    ):
        assert top2020_population.oses == ("windows", "linux", "mac")
        assert top2021_population.oses == ("windows", "linux")

    def test_seeded_sites_never_fail(self, top2020_population):
        for domain in top2020_population.active_domains:
            assert not top2020_population.website(domain).load_errors

    def test_failure_counts_scale(self, top2020_population):
        scale = len(top2020_population) / S.TOP_LIST_SIZE
        _, windows_errors = S.TABLE1_TARGETS[("top2020", "windows")]
        expected = sum(int(v * scale) for v in windows_errors.values())
        failing = sum(
            1
            for w in top2020_population.websites
            if "windows" in w.load_errors
        )
        assert failing == expected

    def test_failure_injection_is_deterministic(self):
        first = build_top_population(2020, scale=0.002)
        second = build_top_population(2020, scale=0.002)
        failures_first = {
            w.domain: dict(w.load_errors) for w in first.websites if w.load_errors
        }
        failures_second = {
            w.domain: dict(w.load_errors) for w in second.websites if w.load_errors
        }
        assert failures_first == failures_second

    def test_ranks_unique_and_contiguous(self, top2020_population):
        ranks = [w.rank for w in top2020_population.websites]
        assert len(set(ranks)) == len(ranks)
        assert min(ranks) == 1

    def test_full_scale_failure_counts_exact(self):
        # Full-size population reproduces Table 1's exact counts; this is
        # moderately expensive so only Windows/2021 is checked here (the
        # Table 1 bench checks all rows).
        population = build_top_population(2021, scale=1.0)
        _, expected = S.TABLE1_TARGETS[("top2021", "windows")]
        from repro.browser.errors import table1_bucket

        buckets = Counter(
            table1_bucket(w.load_errors["windows"])
            for w in population.websites
            if "windows" in w.load_errors
        )
        assert buckets == expected

    def test_2021_reuses_2020_filler(self, top2020_population):
        second = build_top_population(
            2021, scale=0.005, base_list=top2020_population.top_list
        )
        first_fillers = {
            w.domain
            for w in top2020_population.websites
            if w.domain.startswith("site-")
        }
        second_fillers = {
            w.domain for w in second.websites if w.domain.startswith("site-")
        }
        overlap = len(first_fillers & second_fillers) / max(len(second_fillers), 1)
        assert 0.6 <= overlap <= 0.9  # the paper observed ~75%

    def test_stopped_sites_are_inactive_in_2021(self, top2021_population):
        # citi.com continued to exist in the 2021 list but stopped its
        # ThreatMetrix localhost traffic.
        site = top2021_population.website("citi.com")
        assert not site.has_local_behavior()

    def test_absent_sites_not_in_2021(self, top2021_population):
        assert "cponline.pw" not in top2021_population.by_domain


class TestMaliciousPopulation:
    def test_category_composition(self, malicious_population):
        categories = Counter(w.category for w in malicious_population.websites)
        assert set(categories) == {
            "malware",
            "abuse",
            "phishing",
            "uncategorized",
        }

    def test_all_seeded_sites_present(self, malicious_population):
        for seed in S.MALICIOUS_LOCALHOST:
            assert seed.domain in malicious_population.by_domain
        for seed in S.MALICIOUS_LAN:
            assert seed.domain in malicious_population.by_domain

    def test_malicious_sites_are_http(self, malicious_population):
        site = malicious_population.website("customer-ebay.com")
        assert site.landing_url.startswith("http://")

    def test_seeded_sites_never_fail(self, malicious_population):
        for domain in malicious_population.active_domains:
            assert not malicious_population.website(domain).load_errors

    def test_calibrated_flag_propagates(self, malicious_population):
        assert malicious_population.website(
            "secure-ebay-signin.com"
        ).calibrated
        assert not malicious_population.website("customer-ebay.com").calibrated
