"""Tests for the IoT/home-network substrate and LAN-sweep attack model."""

import pytest

from repro.browser.chrome import SimulatedChrome
from repro.browser.page import Page, ScriptContext
from repro.browser.useragent import identity_for
from repro.core.classifier import BehaviorClassifier
from repro.core.detector import LocalTrafficDetector
from repro.core.signatures import LAN_SWEEP_SIGNATURE, BehaviorClass
from repro.web.iot import HomeNetwork, IoTDevice, typical_home_network
from repro.web.behaviors import LanSweepBehavior

ALL = frozenset({"windows", "linux", "mac"})


class TestHomeNetwork:
    def test_device_catalogue(self):
        device = IoTDevice.of_kind("camera", "192.168.1.23")
        assert device.port == 80
        assert device.url.startswith("http://192.168.1.23")
        with pytest.raises(ValueError):
            IoTDevice.of_kind("toaster", "192.168.1.9")

    def test_add_device_validations(self):
        network = HomeNetwork()
        network.add_device("router", 1)
        with pytest.raises(ValueError):
            network.add_device("camera", 1)  # address occupied
        with pytest.raises(ValueError):
            network.add_device("camera", 0)

    def test_install_exposes_devices(self):
        network = HomeNetwork()
        network.add_device("router", 1)
        network.add_device("printer", 42)
        table = network.service_table()
        from repro.browser.network import PortState

        assert table.state("192.168.1.1", 80) is PortState.OPEN
        assert table.state("192.168.1.42", 80) is PortState.OPEN
        assert table.state("192.168.1.99", 80) is PortState.CLOSED

    def test_typical_network_is_deterministic(self):
        a = typical_home_network(device_count=5)
        b = typical_home_network(device_count=5)
        assert a.addresses() == b.addresses()
        assert a.addresses()[0] == "192.168.1.1"  # router always present
        assert len(a.devices) == 5

    def test_device_count_validation(self):
        with pytest.raises(ValueError):
            typical_home_network(device_count=0)


class TestLanSweepBehavior:
    def test_sweeps_the_range(self):
        sweep = LanSweepBehavior(
            name="sonar.js", subnet="192.168.1", active_oses=ALL,
            host_range=(1, 8),
        )
        context = ScriptContext(
            os_name="linux", user_agent="UA", page_url="https://evil.example/"
        )
        plan = sweep.plan(context)
        assert len(plan) == 8
        assert plan[0].url == "http://192.168.1.1:80/"
        assert plan[-1].url == "http://192.168.1.8:80/"

    def test_invalid_range_rejected(self):
        sweep = LanSweepBehavior(
            name="x", subnet="10.0.0", active_oses=ALL, host_range=(0, 5)
        )
        context = ScriptContext(
            os_name="mac", user_agent="UA", page_url="https://a.example/"
        )
        with pytest.raises(ValueError):
            sweep.plan(context)

    def test_multiple_probe_paths(self):
        sweep = LanSweepBehavior(
            name="iot-probe", subnet="192.168.1", active_oses=ALL,
            host_range=(1, 2),
            probe_paths=("/", "/onvif/device_service"),
        )
        context = ScriptContext(
            os_name="windows", user_agent="UA", page_url="https://a.example/"
        )
        assert len(sweep.plan(context)) == 4


class TestLanSweepDetection:
    def _attack_page(self, host_range=(1, 16)) -> Page:
        return Page(
            url="https://attacker.example/",
            scripts=[
                LanSweepBehavior(
                    name="lan-js",
                    subnet="192.168.1",
                    active_oses=ALL,
                    host_range=host_range,
                )
            ],
        )

    def test_sweep_classified_as_internal_attack(self):
        chrome = SimulatedChrome(identity_for("windows"))
        visit = chrome.visit(self._attack_page())
        detection = LocalTrafficDetector().detect(visit.events)
        assert len(detection.lan_requests) == 16
        verdict = BehaviorClassifier().classify(detection.requests)
        assert verdict.behavior is BehaviorClass.INTERNAL_ATTACK
        assert verdict.signature_name == "lan-sweep"

    def test_single_lan_fetch_is_not_an_attack(self):
        # Every real LAN requester in the paper touches exactly one host;
        # the attack signature must not fire on them.
        from repro.core.addresses import parse_target
        from repro.core.detector import LocalRequest

        requests = [
            LocalRequest(
                target=parse_target("http://192.168.64.160/wp-content/a.jpg"),
                time=0.0,
                source_id=1,
            )
        ]
        assert LAN_SWEEP_SIGNATURE.match(requests) is None

    def test_threshold_boundary(self):
        from repro.core.addresses import parse_target
        from repro.core.detector import LocalRequest

        def sweep(n):
            return [
                LocalRequest(
                    target=parse_target(f"http://192.168.1.{i}/"),
                    time=0.0,
                    source_id=i,
                )
                for i in range(1, n + 1)
            ]

        assert LAN_SWEEP_SIGNATURE.match(sweep(4)) is None
        match = LAN_SWEEP_SIGNATURE.match(sweep(5))
        assert match is not None
        assert match.behavior is BehaviorClass.INTERNAL_ATTACK

    def test_localhost_scans_do_not_trigger_lan_sweep(self):
        from repro.core.addresses import parse_target
        from repro.core.detector import LocalRequest
        from repro.core.ports import THREATMETRIX_PORTS

        requests = [
            LocalRequest(
                target=parse_target(f"wss://localhost:{p}/"),
                time=0.0,
                source_id=p,
            )
            for p in THREATMETRIX_PORTS
        ]
        assert LAN_SWEEP_SIGNATURE.match(requests) is None

    def test_sweep_discovers_installed_iot_devices(self):
        """End to end: the attack page's probes to real devices succeed,
        probes to empty addresses are refused — exactly the signal an
        attacker harvests (Acar et al.)."""
        from repro.crawler.vm import OSEnvironment

        environment = OSEnvironment.for_os("linux")
        network = typical_home_network(device_count=4)
        network.install(environment.services)
        chrome = environment.browser()
        visit = chrome.visit(self._attack_page(host_range=(1, 64)))

        from repro.netlog.constants import EventType

        connects = [
            e for e in visit.events
            if e.type is EventType.TCP_CONNECT
            and str(e.params.get("address", "")).startswith("192.168.1.")
        ]
        succeeded = {
            e.params["address"].split(":")[0]
            for e in connects
            if e.params.get("net_error", 0) == 0
        }
        in_range = {
            d.address
            for d in network.devices
            if d.port == 80 and int(d.address.rsplit(".", 1)[1]) <= 64
        }
        assert succeeded == in_range
