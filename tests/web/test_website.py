"""Tests for the Website model."""

from repro.browser.errors import NetError
from repro.web.behaviors import PublicResourceBehavior, ResourceFetchBehavior
from repro.web.website import Website


class TestWebsite:
    def test_landing_url_scheme(self):
        assert Website("a.example").landing_url == "https://a.example/"
        assert Website("b.example", https=False).landing_url == "http://b.example/"

    def test_page_carries_scripts_and_resources(self):
        behavior = ResourceFetchBehavior(
            name="dev",
            urls=("http://127.0.0.1/x.png",),
            active_oses=frozenset({"windows"}),
        )
        site = Website(
            "a.example",
            behaviors=[behavior],
            resources=["https://cdn.example/app.js"],
        )
        page = site.page()
        assert page.url == "https://a.example/"
        assert page.scripts == [behavior]
        assert page.resources == ["https://cdn.example/app.js"]

    def test_page_is_a_fresh_copy(self):
        site = Website("a.example", resources=["https://cdn.example/x"])
        page = site.page()
        page.resources.append("https://evil.example/")
        assert site.resources == ["https://cdn.example/x"]

    def test_load_error_lookup(self):
        site = Website(
            "a.example",
            load_errors={"windows": NetError.ERR_CONNECTION_RESET},
        )
        assert site.load_error_for("windows") is NetError.ERR_CONNECTION_RESET
        assert site.load_error_for("linux") is None

    def test_has_local_behavior_ignores_public_noise(self):
        noisy = Website(
            "a.example",
            behaviors=[
                PublicResourceBehavior(name="noise", urls=("https://c.example/x",))
            ],
        )
        assert not noisy.has_local_behavior()
        active = Website(
            "b.example",
            behaviors=[
                ResourceFetchBehavior(
                    name="dev",
                    urls=("http://127.0.0.1/x",),
                    active_oses=frozenset({"mac"}),
                )
            ],
        )
        assert active.has_local_behavior()
