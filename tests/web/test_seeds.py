"""Invariant tests over the ground-truth seed data.

These assert the aggregate constraints the paper states — section 4.1's
headline counts, Figure 2's overlap partition, Table 2's marginals — hold
over the transcribed+calibrated seed rows.  If a seed edit breaks a paper
aggregate, these tests localise it.
"""

from collections import Counter

from repro.web import seeds as S


class TestLocalhost2020:
    def test_107_sites(self):
        assert len(S.LOCALHOST_2020) == 107

    def test_reason_counts(self):
        counts = Counter(seed.reason for seed in S.LOCALHOST_2020)
        assert counts["fraud"] == 35
        assert counts["bot"] == 10
        assert counts["native"] == 12
        assert counts["dev"] == 45
        assert counts["unknown"] == 5

    def test_per_os_totals_match_figure_2a(self):
        totals = Counter()
        for seed in S.LOCALHOST_2020:
            for os_name in seed.oses_2020 or ():
                totals[os_name] += 1
        assert totals == {"windows": 92, "linux": 54, "mac": 54}

    def test_overlap_partition_matches_figure_2a(self):
        partition = Counter(
            frozenset(seed.oses_2020)
            for seed in S.LOCALHOST_2020
            if seed.oses_2020
        )
        assert partition[frozenset({"windows"})] == 48
        assert partition[frozenset({"linux"})] == 2
        assert partition[frozenset({"mac"})] == 5
        assert partition[frozenset({"windows", "linux"})] == 3
        assert partition[frozenset({"linux", "mac"})] == 8
        assert partition[frozenset({"windows", "linux", "mac"})] == 41
        assert partition.get(frozenset({"windows", "mac"}), 0) == 0

    def test_fraud_and_bot_are_windows_only(self):
        for seed in S.LOCALHOST_2020:
            if seed.reason in ("fraud", "bot"):
                assert seed.oses_2020 == ("windows",), seed.domain

    def test_windows_wss_requests_match_figure_4a(self):
        # 35 ThreatMetrix deployers x 14 ports = 490 WSS probes.
        wss = 0
        for seed in S.LOCALHOST_2020:
            if not seed.oses_2020 or "windows" not in seed.oses_2020:
                continue
            for probe in seed.probes:
                if probe.scheme == "wss" and seed.reason == "fraud":
                    wss += len(probe.ports)
        assert wss == 490

    def test_domains_unique(self):
        domains = [seed.domain for seed in S.LOCALHOST_2020]
        assert len(domains) == len(set(domains))

    def test_ranks_positive_and_within_list(self):
        for seed in S.LOCALHOST_2020:
            assert 1 <= seed.rank <= S.TOP_LIST_SIZE

    def test_sockjs_sites_are_mac_only(self):
        sockjs = [s for s in S.LOCALHOST_2020 if s.dev_kind == "sockjs"]
        assert len(sockjs) == 5
        assert all(s.oses_2020 == ("mac",) for s in sockjs)


class TestLocalhost2021:
    def test_82_sites(self):
        assert len(S.localhost_seeds_2021()) == 82

    def test_per_os_totals_match_figure_9(self):
        totals = Counter()
        for seed in S.localhost_seeds_2021():
            for os_name in seed.oses_2021 or ():
                totals[os_name] += 1
        assert totals == {"windows": 82, "linux": 48}

    def test_no_mac_activity_in_2021(self):
        # The 2021 crawl ran on Windows and Linux only (section 3.2).
        for seed in S.localhost_seeds_2021():
            assert "mac" not in (seed.oses_2021 or ())

    def test_bot_detection_disappeared(self):
        # Section 4.3.2: no BIG-IP ASM activity in 2021.
        for seed in S.localhost_seeds_2021():
            assert seed.reason != "bot"

    def test_new_2021_domains_do_not_collide_with_2020(self):
        old = {seed.domain for seed in S.LOCALHOST_2020}
        new = {seed.domain for seed in S.NEW_2021}
        assert not old & new


class TestLanSeeds:
    def test_2020_has_nine_sites(self):
        assert len(S.LAN_2020) == 9

    def test_2021_has_eight_sites(self):
        assert len(S.LAN_2021) == 8

    def test_unib_is_the_only_repeat(self):
        # Section 4.1: only one site made LAN requests in both years.
        both = {s.domain for s in S.LAN_2020} & {s.domain for s in S.LAN_2021}
        assert both == {"unib.ac.id"}

    def test_lan_addresses_are_private(self):
        from repro.core.addresses import Locality, classify_host

        for seed in list(S.LAN_2020) + list(S.LAN_2021) + list(S.MALICIOUS_LAN):
            assert classify_host(seed.ip) is Locality.LAN, seed.domain

    def test_standard_ports_dominate_top_lists(self):
        # Table 6: all 2020 top-100K LAN requests used ports 80/443.
        assert all(s.port in (80, 443) for s in S.LAN_2020)


class TestMaliciousSeeds:
    def test_marginals_match_table_2(self):
        marginals = Counter()
        for seed in S.MALICIOUS_LOCALHOST:
            for os_name in seed.oses:
                marginals[(seed.category, os_name)] += 1
        assert marginals[("malware", "windows")] == 72
        assert marginals[("malware", "linux")] == 83
        assert marginals[("malware", "mac")] == 75
        assert marginals[("phishing", "windows")] == 25
        assert marginals[("phishing", "linux")] == 41
        assert marginals[("phishing", "mac")] == 9
        assert not any(cat == "abuse" for cat, _ in marginals)

    def test_lan_marginals_match_table_2(self):
        marginals = Counter()
        for seed in S.MALICIOUS_LAN:
            for os_name in seed.oses:
                marginals[(seed.category, os_name)] += 1
        assert marginals[("malware", "windows")] == 8
        assert marginals[("malware", "linux")] == 7
        assert marginals[("malware", "mac")] == 7
        assert marginals[("abuse", "windows")] == 1

    def test_clone_count_matches_figure_4b(self):
        clones = [
            s for s in S.MALICIOUS_LOCALHOST if s.kind == "threatmetrix-clone"
        ]
        # 18 clones x 14 ports = 252 Windows WSS requests (Figure 4b).
        assert len(clones) == 18
        assert all(s.oses == ("windows",) for s in clones)

    def test_population_constants_match_table_1(self):
        assert (
            S.MALWARE_COUNT + S.ABUSE_COUNT + S.PHISHING_COUNT
            + S.UNCATEGORIZED_COUNT
            == S.MALICIOUS_TOTAL
        )
        for (crawl, _os), (successes, errors) in S.TABLE1_TARGETS.items():
            total = successes + sum(errors.values())
            if crawl == "malicious":
                assert total == S.MALICIOUS_TOTAL
            else:
                assert total == S.TOP_LIST_SIZE

    def test_malicious_category_successes_sum_to_table1(self):
        for os_name, per_category in S.MALICIOUS_CATEGORY_SUCCESSES.items():
            successes, _ = S.TABLE1_TARGETS[("malicious", os_name)]
            assert sum(per_category.values()) == successes

    def test_domains_unique(self):
        domains = [seed.domain for seed in S.MALICIOUS_LOCALHOST]
        assert len(domains) == len(set(domains))
