"""Data-integrity tests: seed probes match the paper tables' path shapes.

Tables 5, 7, 8 and 11 give protocol/ports *and paths*; these tests pin
the seeded paths to the published patterns so a seed edit cannot drift
away from the paper silently.
"""

import re

from repro.web import seeds as S


def _seed(domain: str) -> S.LocalhostSeed:
    for seed in list(S.LOCALHOST_2020) + list(S.NEW_2021):
        if seed.domain == domain:
            return seed
    raise AssertionError(f"no seed for {domain}")


def _malicious(domain: str) -> S.MaliciousSeed:
    for seed in S.MALICIOUS_LOCALHOST:
        if seed.domain == domain:
            return seed
    raise AssertionError(f"no malicious seed for {domain}")


class TestTable5Paths:
    def test_fraud_and_bot_probe_root(self):
        for seed in S.LOCALHOST_2020:
            if seed.reason in ("fraud", "bot"):
                assert all(p.path == "/" for p in seed.probes), seed.domain

    def test_discord_sites_use_v1_query(self):
        for domain in ("cponline.pw", "runeline.com"):
            (probe,) = _seed(domain).probes
            assert probe.path == "/?v=1"
            assert probe.ports == tuple(range(6463, 6473))

    def test_samsungcard_dual_probes(self):
        seed = _seed("samsungcard.com")
        schemes = {p.scheme for p in seed.probes}
        assert schemes == {"wss", "https"}
        nprotect = next(p for p in seed.probes if p.scheme == "https")
        assert re.match(r"^/\?code=.*&dummy=", nprotect.path)
        assert nprotect.ports == tuple(range(14440, 14450))

    def test_gamehouse_family_init_json(self):
        for domain in ("gamehouse.com", "zylom.com"):
            (probe,) = _seed(domain).probes
            assert probe.path.startswith("/v1/init.json?api_port=")

    def test_hola_json_polling(self):
        (probe,) = _seed("hola.org").probes
        assert probe.path.endswith(".json")
        assert probe.ports == tuple(range(6880, 6890))

    def test_wowreality_port_list_matches_table(self):
        (probe,) = _seed("wowreality.info").probes
        assert len(probe.ports) == 25
        assert {1080, 3306, 6379, 11211, 27017} <= set(probe.ports)


class TestTable11Paths:
    def test_wordpress_remnants_keep_wp_content(self):
        wp_sites = [
            seed
            for seed in S.LOCALHOST_2020
            if seed.dev_kind == "file"
            and any("/wp-content/" in p.path for p in seed.probes)
        ]
        assert len(wp_sites) >= 8  # many Table 11 rows are WP uploads

    def test_livereload_sites_fetch_livereload_js(self):
        for seed in S.LOCALHOST_2020:
            if seed.dev_kind == "livereload":
                assert all(
                    p.path.endswith("livereload.js") for p in seed.probes
                ), seed.domain

    def test_sockjs_path_and_port(self):
        for seed in S.LOCALHOST_2020:
            if seed.dev_kind == "sockjs":
                (probe,) = seed.probes
                assert probe.path.startswith("/sockjs-node/info")
                assert probe.ports == (9000,)

    def test_rkn_pen_test_artifact(self):
        seed = _seed("rkn.gov.ru")
        (probe,) = seed.probes
        assert probe.path == "/xook.js"
        assert probe.ports == (5005,)

    def test_other_service_paths_match_table(self):
        expectations = {
            "zakupki.gov.ru": "/record/state",
            "gamezone.com": "/setuid",
            "interbank.pe": "/avisos-portal",
            "fsist.com.br": "/getCertificados",
            "spaceappschallenge.org": "/graphql",
            "fromhomefitness.com": "/app/getLicenseKey",
        }
        for domain, path in expectations.items():
            (probe,) = _seed(domain).probes
            assert probe.path == path, domain


class TestTable7Paths:
    def test_iqiyi_family_get_client_ver(self):
        for domain in ("iqiyi.com", "qy.net", "71.am"):
            (probe,) = _seed(domain).probes
            assert probe.path.startswith("/get_client_ver")
            assert probe.ports == (16422, 16423)

    def test_thunder_family(self):
        for domain in ("nfstar.net", "9ekk.com", "somode.com"):
            (probe,) = _seed(domain).probes
            assert probe.path.startswith("/get_thunder_version")
            assert probe.ports == (28317, 36759)

    def test_eimzo_cryptapi(self):
        for domain in ("soliqservis.uz", "didox.uz"):
            (probe,) = _seed(domain).probes
            assert probe.scheme == "wss"
            assert probe.ports == (64443,)
            assert probe.path == "/service/cryptapi"

    def test_nonexistent_image_pattern(self):
        (probe,) = _seed("wealthcareportal.com").probes
        assert re.match(r"^/NonExistentImage\d+\.gif$", probe.path)


class TestTable8Paths:
    def test_postepay_family_nonexistent_images(self):
        for domain in (
            "evolution-postepay.com",
            "postepaynuovo.com",
            "sbloccareposte.com",
            "verificapostepay.com",
        ):
            (probe,) = _malicious(domain).probes
            assert re.match(r"^/NonExistentImage\d+\.gif$", probe.path), domain

    def test_amazon_phish_fetch_robots(self):
        seeds = [
            s
            for s in S.MALICIOUS_LOCALHOST
            if s.domain.startswith("amazon.co.jp.")
        ]
        assert len(seeds) == 12
        for seed in seeds:
            (probe,) = seed.probes
            assert probe.path == "/robots.txt"

    def test_elilaifs_thunder_probe(self):
        (probe,) = _malicious("elilaifs.cn").probes
        assert probe.path.startswith("/get_thunder_version")
