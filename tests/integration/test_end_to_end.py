"""End-to-end integration: crawl → NetLog → parse → detect → classify.

These tests exercise the full pipeline including a NetLog JSON
serialisation round-trip in the middle — proving the core library works
on logs, not just on in-memory objects — and check headline paper numbers
end to end.
"""

from repro.browser.chrome import SimulatedChrome
from repro.browser.useragent import identity_for
from repro.core.classifier import BehaviorClassifier
from repro.core.detector import LocalTrafficDetector
from repro.core.signatures import BehaviorClass
from repro.netlog import dumps, loads


class TestNetLogRoundTripPipeline:
    def test_detection_survives_serialisation(self, top2020_population):
        site = top2020_population.website("ebay.com")
        chrome = SimulatedChrome(identity_for("windows"))
        visit = chrome.visit(site.page())
        assert visit.success

        # Serialise the telemetry to NetLog JSON and parse it back — the
        # path a real deployment takes (chrome --log-net-log=file.json).
        text = dumps(visit.events)
        events = loads(text)
        detection = LocalTrafficDetector().detect(events)
        assert len(detection.localhost_requests) == 14
        verdict = BehaviorClassifier().classify(detection.requests)
        assert verdict.behavior is BehaviorClass.FRAUD_DETECTION

    def test_benign_site_stays_clean_after_roundtrip(self, top2020_population):
        filler = next(
            w
            for w in top2020_population.websites
            if w.domain not in top2020_population.active_domains
            and not w.load_errors
        )
        chrome = SimulatedChrome(identity_for("linux"))
        visit = chrome.visit(filler.page())
        detection = LocalTrafficDetector().detect(loads(dumps(visit.events)))
        assert not detection.has_local_activity


class TestHeadlineNumbers:
    """Section 4's headline findings, measured through the full pipeline."""

    def test_localhost_population_2020(self, top2020_result):
        localhost = [
            f for f in top2020_result.findings if f.has_localhost_activity
        ]
        assert len(localhost) == 107

    def test_fraud_detection_is_over_40_percent_with_bot(self, top2020_result):
        # "over 40% of them explicitly conduct host profiling" (fraud+bot).
        localhost = [
            f for f in top2020_result.findings if f.has_localhost_activity
        ]
        profiling = [
            f
            for f in localhost
            if f.behavior
            in (BehaviorClass.FRAUD_DETECTION, BehaviorClass.BOT_DETECTION)
        ]
        assert len(profiling) / len(localhost) > 0.40

    def test_activity_skews_to_windows(self, top2020_result):
        from repro.analysis import rq1
        from repro.core.addresses import Locality

        summary = rq1.summarize_activity(
            top2020_result.findings, Locality.LOCALHOST
        )
        assert summary.per_os["windows"] > summary.per_os["linux"]
        assert summary.os_exclusive("windows") == 48

    def test_monitor_window_truncates_late_activity(self, top2020_population):
        """The 20s threshold ablation: a 5-second window misses the
        late-firing anti-abuse scanners; 20 seconds catches everything."""
        from repro.crawler.campaign import Campaign

        short = Campaign(monitor_window_ms=5_000.0).run(top2020_population)
        short_localhost = sum(
            1 for f in short.findings if f.has_localhost_activity
        )
        assert short_localhost < 107

    def test_detection_is_deterministic(self, top2020_population):
        from repro.crawler.campaign import run_campaign

        first = run_campaign(top2020_population)
        second = run_campaign(top2020_population)
        assert [f.domain for f in first.findings] == [
            f.domain for f in second.findings
        ]
