"""Interop with realistically shaped Chrome NetLog documents.

Real ``chrome --log-net-log`` output differs from our writer's in ways
the parser must tolerate: a huge ``constants`` block with hundreds of
event-type names, extra top-level keys (``polledData``), events of types
we do not model, and source types beyond our enum.  These tests feed the
parser hand-built documents with that shape and verify the pipeline
still finds the local traffic.
"""

import io
import json

from repro.core.addresses import Locality
from repro.core.classifier import BehaviorClassifier
from repro.core.detector import LocalTrafficDetector
from repro.core.signatures import BehaviorClass
from repro.netlog import loads
from repro.netlog.streaming import iter_events_streaming


def _chrome_like_document() -> dict:
    """A document shaped like real Chrome output.

    Event type ids use Chrome-scale magnitudes; the names we rely on
    (``URL_REQUEST_START_JOB``, ``REQUEST_ALIVE``, …) are genuine Chrome
    NetLog event names, carried through the constants table.
    """
    constants = {
        "logFormatVersion": 1,
        "timeTickOffset": 1300000000,
        "logEventTypes": {
            "REQUEST_ALIVE": 1,
            "URL_REQUEST_START_JOB": 2,
            "TCP_CONNECT": 30,
            # Hundreds of others in real logs; a sample of unmodelled ones:
            "HTTP2_SESSION": 411,
            "QUIC_SESSION": 520,
            "COOKIE_STORE_COOKIE_ADDED": 601,
        },
        "logSourceType": {"URL_REQUEST": 1, "SOCKET": 2},
        "clientInfo": {"name": "Chrome", "version": "84.0.4147.89"},
    }
    events = [
        # An unmodelled QUIC event the parser must skip.
        {"time": "100", "type": 520, "phase": 1,
         "source": {"id": 7, "type": 9}},
        # The page's localhost probes, as URL_REQUEST flows.
        *[
            {
                "time": 1000 + i,
                "type": "URL_REQUEST_START_JOB",
                "phase": 1,
                "source": {"id": 10 + i, "type": 1},
                "params": {
                    "url": f"http://127.0.0.1:{port}/",
                    "method": "GET",
                    "load_flags": 50,
                },
            }
            for i, port in enumerate((4444, 4653, 5555, 7054, 7055, 9515, 17556))
        ],
        # Cookie noise.
        {"time": 1200, "type": 601, "phase": 0,
         "source": {"id": 30, "type": 1}},
    ]
    return {
        "constants": constants,
        "events": events,
        "polledData": {"activeSpdySessions": []},
    }


class TestChromeLikeLogs:
    def test_lenient_parse_finds_local_probes(self):
        text = json.dumps(_chrome_like_document())
        events = loads(text, strict=False)
        detection = LocalTrafficDetector().detect(events)
        assert len(detection.localhost_requests) == 7
        verdict = BehaviorClassifier().classify(detection.requests)
        assert verdict.behavior is BehaviorClass.BOT_DETECTION

    def test_streaming_parse_equivalent(self):
        text = json.dumps(_chrome_like_document())
        streamed = list(iter_events_streaming(io.StringIO(text)))
        assert streamed == loads(text, strict=False)

    def test_time_as_string_is_coerced(self):
        # Chrome writes event times as JSON strings in some versions.
        document = _chrome_like_document()
        for event in document["events"]:
            event["time"] = str(event["time"])
        events = loads(json.dumps(document), strict=False)
        detection = LocalTrafficDetector().detect(events)
        assert detection.ports(Locality.LOCALHOST) == {
            4444, 4653, 5555, 7054, 7055, 9515, 17556,
        }
