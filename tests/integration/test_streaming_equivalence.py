"""Streaming pipeline equivalence: the single pass changes nothing.

The refactor's acceptance bar: a visit driven through the sink pipeline
(detection + archiving folded into the browser's event stream) must be
observationally identical to the buffered path — same events, same
detection, and byte-identical archived NetLog documents.
"""

from repro.browser.chrome import SimulatedChrome
from repro.browser.useragent import identity_for
from repro.core.detector import LocalTrafficDetector
from repro.crawler.crawl import Crawler
from repro.crawler.vm import OSEnvironment
from repro.netlog import NetLogArchive, dumps, loads
from repro.netlog.pipeline import ListSink, Tee


def _active_site(population):
    return population.website(sorted(population.active_domains)[0])


class TestVisitSinkMode:
    def test_sink_mode_streams_the_batch_event_sequence(
        self, top2020_population
    ):
        site = _active_site(top2020_population)
        batch = SimulatedChrome(identity_for("windows")).visit(site.page())
        sink = ListSink()
        streamed = SimulatedChrome(identity_for("windows")).visit(
            site.page(), sink=sink
        )
        assert streamed.success == batch.success
        assert streamed.events == []  # sink mode does not buffer
        assert sink.events == batch.events

    def test_sink_mode_detection_equals_batch_detection(
        self, top2020_population
    ):
        site = _active_site(top2020_population)
        detector = LocalTrafficDetector()
        batch = SimulatedChrome(identity_for("windows")).visit(site.page())
        expected = detector.detect(batch.events)

        detection_sink = detector.sink()
        SimulatedChrome(identity_for("windows")).visit(
            site.page(), sink=detection_sink
        )
        assert detection_sink.finish() == expected

    def test_tee_runs_detection_and_capture_in_one_pass(
        self, top2020_population
    ):
        site = _active_site(top2020_population)
        detector = LocalTrafficDetector()
        collector = ListSink()
        detection_sink = detector.sink()
        SimulatedChrome(identity_for("windows")).visit(
            site.page(), sink=Tee(detection_sink, collector)
        )
        assert detection_sink.finish() == detector.detect(collector.events)


class TestCrawlerCaptureModes:
    def test_capture_netlog_serialises_the_captured_events(
        self, top2020_population
    ):
        site = _active_site(top2020_population)
        buffered = Crawler(
            OSEnvironment.for_os("windows"), capture_events=True
        ).crawl_site(site)
        streamed = Crawler(
            OSEnvironment.for_os("windows"), capture_netlog=True
        ).crawl_site(site)
        assert buffered.success and streamed.success
        assert streamed.netlog is not None
        assert buffered.events is not None
        # The streamed buffer holds exactly the record text a batch dump
        # of the captured events would produce.
        assert streamed.netlog.count == len(buffered.events)
        assert loads(dumps(buffered.events)) == buffered.events

    def test_archived_documents_are_byte_identical(
        self, top2020_population, tmp_path
    ):
        site = _active_site(top2020_population)
        meta = {"crawl": "t", "domain": site.domain, "os": "windows"}

        buffered = Crawler(
            OSEnvironment.for_os("windows"), capture_events=True
        ).crawl_site(site)
        batch_archive = NetLogArchive(tmp_path / "batch")
        batch_path = batch_archive.write(
            "t", "windows", site.domain, buffered.events, meta=meta
        )

        streamed = Crawler(
            OSEnvironment.for_os("windows"), capture_netlog=True
        ).crawl_site(site)
        stream_archive = NetLogArchive(tmp_path / "stream")
        stream_path = stream_archive.write_buffered(
            "t", "windows", site.domain, streamed.netlog, meta=meta
        )

        assert batch_path.read_bytes() == stream_path.read_bytes()

    def test_detection_identical_across_capture_modes(
        self, top2020_population
    ):
        site = _active_site(top2020_population)
        plain = Crawler(OSEnvironment.for_os("windows")).crawl_site(site)
        capturing = Crawler(
            OSEnvironment.for_os("windows"),
            capture_events=True,
            capture_netlog=True,
        ).crawl_site(site)
        assert plain.detection == capturing.detection
        assert capturing.detection == LocalTrafficDetector().detect(
            capturing.events
        )
