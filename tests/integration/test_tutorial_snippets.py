"""The tutorial's code paths, executed (docs must not rot)."""

from repro.core import BehaviorClassifier, Locality, default_signatures
from repro.core.signatures import (
    GENERIC_PORTSCAN_SIGNATURE,
    BehaviorClass,
    EndpointSignature,
)
from repro.crawler.campaign import Campaign
from repro.storage import TelemetryStore
from repro.web import PortScanBehavior, Website
from repro.web.population import CrawlPopulation
from repro.web.seeds import TM_PORTS


class TestCustomSignatureRecipe:
    def test_meetly_signature(self):
        meetly = EndpointSignature(
            name="meetly-client",
            app="Meetly desktop client",
            ports=frozenset({7880, 7881, 7882}),
            path_pattern=r"^/api/presence",
            schemes=frozenset({"http"}),
        )
        chain = default_signatures()
        chain.insert(-1, meetly)
        classifier = BehaviorClassifier(chain)

        from repro.core.addresses import parse_target
        from repro.core.detector import LocalRequest

        verdict = classifier.classify(
            [
                LocalRequest(
                    target=parse_target("http://127.0.0.1:7881/api/presence"),
                    time=0.0,
                    source_id=1,
                )
            ]
        )
        assert verdict.signature_name == "meetly-client"
        assert verdict.behavior is BehaviorClass.NATIVE_APPLICATION

    def test_monitoring_chain_prefix(self):
        chain = [GENERIC_PORTSCAN_SIGNATURE] + default_signatures()
        assert chain[0].name == "generic-localhost-portscan"
        assert BehaviorClassifier(chain).signatures[0] is chain[0]


class TestCustomPopulationRecipe:
    def test_watchlist_campaign_with_store(self, tmp_path):
        sites = [
            Website(
                "suspicious-shop.example",
                behaviors=[
                    PortScanBehavior(
                        name="threatmetrix@h.online-metrix.net",
                        scheme="wss",
                        ports=TM_PORTS,
                        active_oses=frozenset({"windows"}),
                        delay_ms=9_000.0,
                    )
                ],
            ),
            Website("plain-blog.example"),
        ]
        population = CrawlPopulation(
            name="my-watchlist",
            websites=sites,
            oses=("windows", "linux"),
            active_domains={"suspicious-shop.example"},
        )
        db_path = tmp_path / "watchlist.sqlite"
        with TelemetryStore(str(db_path)) as store:
            result = Campaign(store=store, include_internal=True).run(
                population
            )
            assert store.visit_count("my-watchlist") == 4  # 2 sites x 2 OSes

        (finding,) = result.findings
        assert finding.domain == "suspicious-shop.example"
        assert finding.behavior is BehaviorClass.FRAUD_DETECTION
        assert finding.oses_with_activity(Locality.LOCALHOST) == ("windows",)
        assert db_path.exists()


class TestConnectivityGateEndToEnd:
    def test_campaign_with_connectivity_checks(self):
        population = CrawlPopulation(
            name="gate-check",
            websites=[Website("a.example"), Website("b.example")],
            oses=("linux",),
        )
        result = Campaign(check_connectivity=True).run(population)
        assert result.stats["linux"].successes == 2
        assert result.stats["linux"].skipped == 0
