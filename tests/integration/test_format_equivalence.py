"""Format equivalence: the binary encoding changes nothing downstream.

The dual-format acceptance bar: the same campaign captured with
``--netlog-format json`` and ``--netlog-format binary`` must produce
identical detection findings, identical campaign fingerprints, and
byte-identical paper tables — the document encoding is an operational
knob, invisible to every analysis.
"""

import pytest

from repro.analysis import rq1, tables
from repro.core.addresses import Locality
from repro.crawler.campaign import Campaign
from repro.netlog import NetLogArchive
from repro.storage.db import TelemetryStore
from repro.storage.integrity import campaign_digest, fsck


@pytest.fixture(scope="module")
def format_runs(tmp_path_factory, request):
    """One campaign per format, with store + archive."""
    population = request.getfixturevalue("top2020_population")
    runs = {}
    for fmt in ("json", "binary"):
        root = tmp_path_factory.mktemp(f"run-{fmt}")
        store = TelemetryStore(str(root / "telemetry.db"))
        archive = NetLogArchive(root / "netlogs")
        campaign = Campaign(
            store=store,
            netlog_archive=archive,
            netlog_format=fmt,
        )
        result = campaign.run(population)
        store.commit()
        runs[fmt] = (store, archive, result)
    yield runs
    for store, _, _ in runs.values():
        store.close()


class TestCampaignEquivalence:
    def test_findings_identical(self, format_runs):
        json_result = format_runs["json"][2]
        binary_result = format_runs["binary"][2]
        assert json_result.findings == binary_result.findings
        assert json_result.stats == binary_result.stats

    def test_campaign_fingerprints_identical(self, format_runs):
        digests = {
            fmt: campaign_digest(store, result.name)
            for fmt, (store, _, result) in format_runs.items()
        }
        assert digests["json"] == digests["binary"]

    def test_tables_1_and_5_byte_identical(self, format_runs):
        json_result = format_runs["json"][2]
        binary_result = format_runs["binary"][2]
        t1_json = tables.table_1(list(json_result.stats.values()))
        t1_bin = tables.table_1(list(binary_result.stats.values()))
        assert t1_json.text == t1_bin.text
        t5_json = tables.table_5(json_result.findings)
        t5_bin = tables.table_5(binary_result.findings)
        assert t5_json.text == t5_bin.text

    def test_rq1_summary_identical(self, format_runs):
        summaries = {
            fmt: rq1.summarize_activity(result.findings, Locality.LOCALHOST)
            for fmt, (_, _, result) in format_runs.items()
        }
        assert summaries["json"] == summaries["binary"]


class TestArchiveEquivalence:
    def test_archives_use_their_format_suffix(self, format_runs):
        for fmt, suffix in (("json", ".json"), ("binary", ".nlbin")):
            paths = list(format_runs[fmt][1].entries())
            assert paths
            assert all(path.suffix == suffix for path in paths)

    def test_archived_events_identical_across_formats(self, format_runs):
        json_archive = format_runs["json"][1]
        binary_archive = format_runs["binary"][1]
        json_paths = list(json_archive.entries())
        binary_paths = list(binary_archive.entries())
        # entries() sorts full names, and the two suffixes collate
        # dotted domains differently — compare the sets of visits.
        assert sorted(p.stem for p in json_paths) == sorted(
            p.stem for p in binary_paths
        )
        # Spot-check a handful end to end (parsing all is slow).
        crawl = format_runs["json"][2].name
        for json_path in json_paths[:5]:
            os_name, domain = json_path.parent.name, json_path.stem
            assert json_archive.read_events(
                crawl, os_name, domain
            ) == binary_archive.read_events(crawl, os_name, domain)
            assert json_archive.read_meta(json_path) == (
                binary_archive.read_meta(
                    binary_archive.path_for(crawl, os_name, domain)
                )
            )

    def test_fsck_clean_any_jobs(self, format_runs):
        for fmt, (store, archive, _) in format_runs.items():
            for jobs in (None, 2):
                report = fsck(store, archive, jobs=jobs)
                assert report.ok, (fmt, jobs, report.render())

    def test_fsck_reports_identical_across_formats(self, format_runs):
        reports = {
            fmt: fsck(store, archive).to_json()
            for fmt, (store, archive, _) in format_runs.items()
        }
        assert reports["json"] == reports["binary"]

    def test_rewrite_in_other_format_replaces_sibling(
        self, format_runs, top2020_population
    ):
        store, archive, result = format_runs["json"]
        crawl = result.name
        path = next(iter(archive.entries()))
        os_name, domain = path.parent.name, path.stem
        events = archive.read_events(crawl, os_name, domain)
        rewritten = archive.write(
            crawl, os_name, domain, events, format="binary"
        )
        try:
            assert rewritten.suffix == ".nlbin"
            assert not path.exists()  # one document per visit
            assert archive.path_for(crawl, os_name, domain) == rewritten
            assert (
                archive.read_events(crawl, os_name, domain) == events
            )
        finally:
            archive.write(crawl, os_name, domain, events, format="json")
            rewritten.unlink(missing_ok=True)
