"""Schema v4, policy persistence, and the WebRTC leak tables."""

import sqlite3

import pytest

from repro.analysis import tables
from repro.crawler.campaign import run_campaign
from repro.storage.db import TelemetryStore
from repro.storage.migrations import SCHEMA_VERSION
from repro.web.population import build_top_population

SCALE = 0.001


@pytest.fixture(scope="module")
def findings_by_policy():
    return {
        policy: run_campaign(
            build_top_population(2020, scale=SCALE, webrtc_policy=policy)
        ).findings
        for policy in ("pre-m74", "mdns")
    }


class TestSchemaV4:
    def test_fresh_store_is_at_v4(self):
        with TelemetryStore() as store:
            version = store.connection.execute("PRAGMA user_version").fetchone()[0]
            assert version == SCHEMA_VERSION == 4

    def test_visits_gain_policy_column_and_scheme_index(self):
        with TelemetryStore() as store:
            columns = {
                row[1]
                for row in store.connection.execute("PRAGMA table_info(visits)")
            }
            assert "webrtc_policy" in columns
            indexes = {
                row[1]
                for row in store.connection.execute(
                    "PRAGMA index_list(local_requests)"
                )
            }
            assert "idx_local_scheme" in indexes

    def test_v3_store_migrates_in_place(self, tmp_path):
        path = tmp_path / "old.sqlite"
        with TelemetryStore(str(path)) as store:
            store.connection.execute("ALTER TABLE visits DROP COLUMN webrtc_policy")
            store.connection.execute("DROP INDEX idx_local_scheme")
            store.connection.execute("PRAGMA user_version = 3")
            store.commit()
        with TelemetryStore(str(path)) as store:
            version = store.connection.execute("PRAGMA user_version").fetchone()[0]
            assert version == 4
            store.record_visit(
                "c", "a.com", "linux", success=True, webrtc_policy="mdns"
            )

    def test_policy_round_trips_and_defaults_to_null(self):
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.com", "linux", success=True, webrtc_policy="pre-m74"
            )
            store.record_visit("c", "b.com", "linux", success=True)
            rows = dict(
                store.connection.execute(
                    "SELECT domain, webrtc_policy FROM visits"
                ).fetchall()
            )
            assert rows == {"a.com": "pre-m74", "b.com": None}


class TestLeakTables:
    def test_era_dependent_leak_counts(self, findings_by_policy):
        pre = tables.table_6w(findings_by_policy["pre-m74"])
        mdns = tables.table_6w(findings_by_policy["mdns"])
        # pre-m74 host candidates leak LAN addresses on every webrtc site;
        # the mdns era keeps only the explicitly probed RFC 1918 peers.
        assert len(pre.rows) > len(mdns.rows)

    def test_mdns_era_never_shows_interface_addresses(self, findings_by_policy):
        from repro.webrtc.ice import HOST_ADDRESS_BY_OS

        rendered = tables.table_6w(findings_by_policy["mdns"]).text
        for address in HOST_ADDRESS_BY_OS.values():
            assert address not in rendered

    def test_localhost_table_tracks_loopback_probes(self, findings_by_policy):
        for policy, findings in findings_by_policy.items():
            for row in tables.table_5w(findings).rows:
                assert row["leaks"] >= 1

    def test_era_table_lists_both_policies(self, findings_by_policy):
        era = tables.table_webrtc_era(findings_by_policy)
        assert era.rows
        assert all(set(r["counts"]) == {"pre-m74", "mdns"} for r in era.rows)
        assert any(r["delta"] > 0 for r in era.rows)

    def test_tables_are_byte_stable_across_reruns(self, findings_by_policy):
        again = run_campaign(
            build_top_population(2020, scale=SCALE, webrtc_policy="pre-m74")
        ).findings
        assert (
            tables.table_5w(again).text
            == tables.table_5w(findings_by_policy["pre-m74"]).text
        )
        assert (
            tables.table_6w(again).text
            == tables.table_6w(findings_by_policy["pre-m74"]).text
        )

    def test_paper_tables_exclude_the_webrtc_channel(self, findings_by_policy):
        off = run_campaign(build_top_population(2020, scale=SCALE)).findings
        for policy in ("pre-m74", "mdns"):
            on = findings_by_policy[policy]
            assert tables.table_5(on).text == tables.table_5(off).text
            assert tables.table_6(on).text == tables.table_6(off).text
