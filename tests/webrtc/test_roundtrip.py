"""Writer→parser round-trips for the 100-range WebRTC event types.

The new vocabulary must survive every read path the repo has: the
whole-document parser (strict text mode), the salvage path (non-strict
parse of a damaged document), and the streaming scanner.  A document
from an even *newer* writer — carrying event types this build has never
heard of — must degrade to counted-and-skipped on every salvage-capable
path; only strict mode (for logs we wrote ourselves) refuses it.
"""

import io
import json

import pytest

from repro.netlog import (
    EventPhase,
    EventType,
    NetLogEvent,
    NetLogParseError,
    NetLogSource,
    ParseStats,
    SourceType,
    dumps,
    loads,
)
from repro.netlog.streaming import iter_events_streaming


def _webrtc_events():
    source = NetLogSource(id=7, type=SourceType.PEER_CONNECTION)
    return [
        NetLogEvent(
            time=10.0,
            type=EventType.ICE_GATHERING,
            source=source,
            phase=EventPhase.BEGIN,
            params={"url": "https://site.example/", "policy": "mdns"},
        ),
        NetLogEvent(
            time=13.0,
            type=EventType.MDNS_CANDIDATE_REGISTERED,
            source=source,
            phase=EventPhase.NONE,
            params={"name": "aaaa-bbbb.local", "net_error": 0},
        ),
        NetLogEvent(
            time=13.0,
            type=EventType.ICE_CANDIDATE_GATHERED,
            source=source,
            phase=EventPhase.NONE,
            params={
                "candidate_type": "host",
                "address": "aaaa-bbbb.local",
                "port": 51234,
                "protocol": "udp",
            },
        ),
        NetLogEvent(
            time=18.0,
            type=EventType.STUN_BINDING_REQUEST,
            source=source,
            phase=EventPhase.NONE,
            params={"address": "192.168.1.1:80", "host": "192.168.1.1", "port": 80},
        ),
        NetLogEvent(
            time=20.0,
            type=EventType.STUN_BINDING_RESPONSE,
            source=source,
            phase=EventPhase.NONE,
            params={"address": "192.168.1.1:80", "net_error": 0},
        ),
        NetLogEvent(
            time=25.0,
            type=EventType.ICE_GATHERING,
            source=source,
            phase=EventPhase.END,
            params={"url": "https://site.example/"},
        ),
    ]


class TestRoundTrip:
    def test_text_mode_strict(self):
        events = _webrtc_events()
        assert loads(dumps(events)) == events

    def test_text_mode_with_checksums(self):
        events = _webrtc_events()
        stats = ParseStats()
        parsed = loads(dumps(events, checksums=True), stats=stats)
        assert parsed == events
        assert stats.checksum_failures == 0
        assert stats.verified == len(events)

    def test_streaming_mode(self):
        events = _webrtc_events()
        parsed = list(iter_events_streaming(io.StringIO(dumps(events))))
        assert parsed == events

    def test_constants_name_the_new_vocabulary(self):
        document = json.loads(dumps(_webrtc_events()))
        names = document["constants"]["logEventTypes"]
        for name in (
            "ICE_GATHERING",
            "ICE_CANDIDATE_GATHERED",
            "STUN_BINDING_REQUEST",
            "STUN_BINDING_RESPONSE",
            "MDNS_CANDIDATE_REGISTERED",
        ):
            assert names[name] == int(EventType[name])

    def test_salvage_mode_recovers_the_intact_prefix(self):
        events = _webrtc_events()
        text = dumps(events)
        # Cut mid-way through the last event record, like a crashed writer.
        cut = text.rindex('"time": 25.0')
        stats = ParseStats()
        salvaged = loads(text[:cut], strict=False, stats=stats)
        assert salvaged == events[:-1]
        assert stats.truncated

    def test_streaming_salvage_matches_batch_salvage(self):
        text = dumps(_webrtc_events())
        cut = text.rindex('"time": 25.0')
        batch = loads(text[:cut], strict=False)
        streamed = list(
            iter_events_streaming(io.StringIO(text[:cut]), stats=ParseStats())
        )
        assert streamed == batch


class TestForwardCompat:
    def _document_with_future_type(self):
        document = json.loads(dumps(_webrtc_events()))
        document["constants"]["logEventTypes"]["QUIC_SESSION_PACKET"] = 999
        document["events"].insert(
            2,
            {
                "time": 14.0,
                "type": 999,
                "source": {"id": 7, "type": 7},
                "phase": 0,
                "params": {"size": 1350},
            },
        )
        return json.dumps(document)

    def test_unknown_type_raises_in_strict_mode(self):
        # Strict mode is for logs this build wrote itself, where a foreign
        # vocabulary means a bug — the seed contract, unchanged.
        with pytest.raises(NetLogParseError):
            loads(self._document_with_future_type())

    def test_unknown_type_is_counted_and_skipped_in_salvage_mode(self):
        stats = ParseStats()
        parsed = loads(
            self._document_with_future_type(), strict=False, stats=stats
        )
        assert parsed == _webrtc_events()
        assert stats.dropped_unknown_type == 1

    def test_unknown_type_is_counted_and_skipped_in_streaming_mode(self):
        stats = ParseStats()
        parsed = list(
            iter_events_streaming(
                io.StringIO(self._document_with_future_type()), stats=stats
            )
        )
        assert parsed == _webrtc_events()
        assert stats.dropped_unknown_type == 1

    def test_unknown_named_type_without_number_is_skipped(self):
        document = json.loads(dumps(_webrtc_events()[:1]))
        document["events"].append(
            {
                "time": 99.0,
                "type": "EVENT_FROM_THE_FUTURE",
                "source": {"id": 7, "type": 7},
                "phase": 0,
            }
        )
        stats = ParseStats()
        parsed = loads(json.dumps(document), strict=False, stats=stats)
        assert len(parsed) == 1
        assert stats.dropped_unknown_type == 1
