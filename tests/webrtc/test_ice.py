"""Tests for the simulated ICE layer: determinism, eras, event shapes."""

import pytest

from repro.browser.chrome import SimulatedChrome
from repro.browser.page import Page
from repro.browser.useragent import identity_for
from repro.core.addresses import Locality, classify_host
from repro.core.detector import LocalTrafficDetector
from repro.netlog.constants import EventPhase, EventType, SourceType
from repro.netlog.events import NetLogSource
from repro.netlog.pipeline import ListSink
from repro.web.behaviors import WebRtcLeakBehavior
from repro.webrtc.ice import (
    HOST_ADDRESS_BY_OS,
    POLICIES,
    POLICY_MDNS,
    POLICY_PRE_M74,
    IceAgent,
    IcePlan,
    IceSession,
    candidate_port,
    mdns_name,
)

ALL_OSES = frozenset({"windows", "linux", "mac"})


def _session(policy, *, stun_peers=(), domain="site.example"):
    return IceSession(
        plan=IcePlan(stun_peers=tuple(stun_peers)),
        policy=policy,
        domain=domain,
        page_url=f"https://{domain}/",
    )


def _run(agent, session, start=0.0):
    sink = ListSink()
    agent.execute(
        sink, NetLogSource(id=1, type=SourceType.PEER_CONNECTION), start, session
    )
    return sink.events


class TestMdnsNames:
    def test_deterministic(self):
        assert mdns_name("a.com", "linux", 0) == mdns_name("a.com", "linux", 0)

    def test_distinct_per_domain_os_index(self):
        names = {
            mdns_name(domain, os_name, index)
            for domain in ("a.com", "b.com")
            for os_name in ("windows", "linux")
            for index in (0, 1)
        }
        assert len(names) == 8

    def test_shape_is_uuid_dot_local(self):
        name = mdns_name("a.com", "mac", 0)
        assert name.endswith(".local")
        stem = name[: -len(".local")]
        blocks = stem.split("-")
        assert [len(b) for b in blocks] == [8, 4, 4, 4, 12]
        assert all(c in "0123456789abcdef" for b in blocks for c in b)

    def test_names_classify_public(self):
        # The whole point of the mdns era: the exposed name is a domain,
        # which the address classifier calls PUBLIC — nothing leaks.
        name = mdns_name("a.com", "windows", 0)
        assert classify_host(name) is Locality.PUBLIC


class TestCandidatePorts:
    def test_deterministic_and_ephemeral(self):
        port = candidate_port("a.com", "linux", 0)
        assert port == candidate_port("a.com", "linux", 0)
        assert 50_000 <= port < 60_000

    def test_varies_by_inputs(self):
        ports = {
            candidate_port(domain, os_name, 0)
            for domain in ("a.com", "b.com", "c.com")
            for os_name in ("windows", "linux", "mac")
        }
        assert len(ports) > 1


class TestSessionValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _session("m74")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            IcePlan(delay_ms=-1.0)

    def test_known_policies(self):
        assert set(POLICIES) == {POLICY_PRE_M74, POLICY_MDNS}


class TestEventSequences:
    def test_pre_m74_exposes_raw_host_address(self):
        events = _run(IceAgent("windows"), _session(POLICY_PRE_M74))
        gathered = [
            e for e in events if e.type is EventType.ICE_CANDIDATE_GATHERED
        ]
        host = [e for e in gathered if e.params["candidate_type"] == "host"]
        assert len(host) == 1
        assert host[0].params["address"] == HOST_ADDRESS_BY_OS["windows"]
        assert not any(
            e.type is EventType.MDNS_CANDIDATE_REGISTERED for e in events
        )

    def test_mdns_era_exposes_only_the_local_name(self):
        events = _run(IceAgent("windows"), _session(POLICY_MDNS))
        registered = [
            e for e in events if e.type is EventType.MDNS_CANDIDATE_REGISTERED
        ]
        assert len(registered) == 1 and registered[0].params["net_error"] == 0
        host = [
            e
            for e in events
            if e.type is EventType.ICE_CANDIDATE_GATHERED
            and e.params["candidate_type"] == "host"
        ]
        assert host[0].params["address"].endswith(".local")
        raw = HOST_ADDRESS_BY_OS["windows"]
        assert all(raw not in str(e.params) for e in host)

    def test_gathering_brackets_the_session(self):
        events = _run(
            IceAgent("linux"), _session(POLICY_MDNS, stun_peers=(("127.0.0.1", 80),))
        )
        assert events[0].type is EventType.ICE_GATHERING
        assert events[0].phase is EventPhase.BEGIN
        assert events[0].params["policy"] == POLICY_MDNS
        assert events[-1].type is EventType.ICE_GATHERING
        assert events[-1].phase is EventPhase.END

    def test_times_nondecreasing(self):
        events = _run(
            IceAgent("mac"),
            _session(
                POLICY_PRE_M74,
                stun_peers=(("127.0.0.1", 5939), ("192.168.1.1", 80)),
            ),
            start=100.0,
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        assert times[0] == 100.0

    def test_stun_checks_cover_every_peer(self):
        peers = (("127.0.0.1", 5939), ("192.168.1.1", 80), ("10.0.0.2", 443))
        events = _run(IceAgent("linux"), _session(POLICY_MDNS, stun_peers=peers))
        requests = [
            e for e in events if e.type is EventType.STUN_BINDING_REQUEST
        ]
        responses = [
            e for e in events if e.type is EventType.STUN_BINDING_RESPONSE
        ]
        assert len(requests) == len(responses) == len(peers)
        assert [(e.params["host"], e.params["port"]) for e in requests] == list(
            peers
        )

    def test_identical_sessions_are_byte_identical(self):
        session = _session(POLICY_MDNS, stun_peers=(("127.0.0.1", 80),))
        assert _run(IceAgent("windows"), session) == _run(
            IceAgent("windows"), session
        )


class TestEndToEndVisit:
    def _visit(self, policy):
        behavior = WebRtcLeakBehavior(
            name="webrtc:site.example",
            active_oses=ALL_OSES,
            policy=policy,
            stun_peers=(("192.168.1.1", 80),),
        )
        chrome = SimulatedChrome(identity_for("windows"))
        return chrome.visit(Page(url="https://site.example/", scripts=[behavior]))

    def test_pre_m74_visit_leaks_lan_address(self):
        detection = LocalTrafficDetector().detect(self._visit(POLICY_PRE_M74).events)
        hosts = {r.host for r in detection.lan_requests}
        assert HOST_ADDRESS_BY_OS["windows"] in hosts

    def test_mdns_visit_leaks_only_the_probed_peer(self):
        detection = LocalTrafficDetector().detect(self._visit(POLICY_MDNS).events)
        hosts = {r.host for r in detection.lan_requests}
        assert hosts == {"192.168.1.1"}
