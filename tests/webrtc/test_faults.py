"""The two WebRTC fault seams: struck runs stay observably equivalent.

``stun-timeout`` and ``mdns-resolve-fail`` are *masked* faults by
design: the leak evidence a visit produces — and therefore detection
results, visit digests, and the era tables — must be byte-identical
with and without the fault.  What changes is only the failure telemetry
inside the event stream (a ``net_error`` on the affected record and the
timeout-stretched response time).
"""

from repro.browser.chrome import SimulatedChrome
from repro.browser.errors import NetError
from repro.browser.page import Page
from repro.browser.useragent import identity_for
from repro.core.detector import LocalTrafficDetector
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.netlog.constants import EventType, SourceType
from repro.netlog.events import NetLogSource
from repro.netlog.pipeline import ListSink
from repro.web.behaviors import WebRtcLeakBehavior
from repro.webrtc.ice import (
    POLICY_MDNS,
    POLICY_PRE_M74,
    STUN_TIMEOUT_MS,
    IceAgent,
    IcePlan,
    IceSession,
)

ALL_OSES = frozenset({"windows", "linux", "mac"})
PEERS = (("127.0.0.1", 5939), ("192.168.1.1", 80))


def _plan(kind: FaultKind) -> FaultPlan:
    return FaultPlan(seed="webrtc-faults", faults=(FaultSpec(kind=kind, rate=1.0),))


def _agent(kind: FaultKind | None, os_name="windows") -> IceAgent:
    if kind is None:
        return IceAgent(os_name)
    injector = FaultInjector(_plan(kind))
    return IceAgent(
        os_name, stun_hook=injector.stun_hook, mdns_hook=injector.mdns_hook
    )


def _run(agent, policy, *, stun_peers=PEERS):
    session = IceSession(
        plan=IcePlan(stun_peers=tuple(stun_peers)),
        policy=policy,
        domain="site.example",
        page_url="https://site.example/",
    )
    sink = ListSink()
    agent.execute(
        sink, NetLogSource(id=1, type=SourceType.PEER_CONNECTION), 0.0, session
    )
    return sink.events


def _detect(events):
    return LocalTrafficDetector().detect(events).requests


class TestStunTimeout:
    def test_struck_response_reports_timeout_error(self):
        events = _run(_agent(FaultKind.STUN_TIMEOUT), POLICY_MDNS)
        responses = [
            e for e in events if e.type is EventType.STUN_BINDING_RESPONSE
        ]
        assert responses
        assert all(
            e.params["net_error"] == int(NetError.ERR_TIMED_OUT)
            for e in responses
        )

    def test_timeout_stretches_only_the_response_time(self):
        clean = _run(_agent(None), POLICY_MDNS)
        struck = _run(_agent(FaultKind.STUN_TIMEOUT), POLICY_MDNS)
        clean_req = [
            e for e in clean if e.type is EventType.STUN_BINDING_REQUEST
        ]
        struck_req = [
            e for e in struck if e.type is EventType.STUN_BINDING_REQUEST
        ]
        # The binding request was already on the wire: same time, same peer.
        assert [(e.time, e.params["address"]) for e in clean_req] == [
            (e.time, e.params["address"]) for e in struck_req
        ]
        sent = {e.params["address"]: e.time for e in struck_req}
        for event in struck:
            if event.type is EventType.STUN_BINDING_RESPONSE:
                assert event.time == sent[event.params["address"]] + STUN_TIMEOUT_MS

    def test_detection_is_masked(self):
        for policy in (POLICY_PRE_M74, POLICY_MDNS):
            clean = _detect(_run(_agent(None), policy))
            struck = _detect(_run(_agent(FaultKind.STUN_TIMEOUT), policy))
            assert struck == clean


class TestMdnsResolveFail:
    def test_struck_registration_withholds_the_candidate(self):
        events = _run(_agent(FaultKind.MDNS_RESOLVE_FAIL), POLICY_MDNS)
        registered = [
            e for e in events if e.type is EventType.MDNS_CANDIDATE_REGISTERED
        ]
        assert len(registered) == 1
        assert registered[0].params["net_error"] == int(
            NetError.ERR_NAME_NOT_RESOLVED
        )
        host = [
            e
            for e in events
            if e.type is EventType.ICE_CANDIDATE_GATHERED
            and e.params["candidate_type"] == "host"
        ]
        assert host == []  # Chrome's safe default: no name, no candidate

    def test_pre_m74_never_consults_mdns(self):
        clean = _run(_agent(None), POLICY_PRE_M74)
        struck = _run(_agent(FaultKind.MDNS_RESOLVE_FAIL), POLICY_PRE_M74)
        assert struck == clean

    def test_detection_is_masked(self):
        # The withheld candidate was the *obfuscated* (non-leaking) one,
        # so the leak evidence cannot change.
        clean = _detect(_run(_agent(None), POLICY_MDNS))
        struck = _detect(_run(_agent(FaultKind.MDNS_RESOLVE_FAIL), POLICY_MDNS))
        assert struck == clean


class TestFullVisitUnderFaults:
    def _detection(self, kind: FaultKind | None):
        behavior = WebRtcLeakBehavior(
            name="webrtc:site.example",
            active_oses=ALL_OSES,
            policy=POLICY_MDNS,
            stun_peers=PEERS,
        )
        chrome = SimulatedChrome(
            identity_for("windows"), webrtc=_agent(kind)
        )
        result = chrome.visit(
            Page(url="https://site.example/", scripts=[behavior])
        )
        return LocalTrafficDetector().detect(result.events)

    def test_visit_level_leak_evidence_is_fault_invariant(self):
        baseline = self._detection(None).requests
        for kind in (FaultKind.STUN_TIMEOUT, FaultKind.MDNS_RESOLVE_FAIL):
            assert self._detection(kind).requests == baseline
