"""WebRTC detection channel: flows, streaming/batch equivalence, gating."""

from repro.browser.chrome import SimulatedChrome
from repro.browser.page import Page
from repro.browser.useragent import identity_for
from repro.core.addresses import Locality
from repro.core.detector import LocalTrafficDetector
from repro.core.flows import extract_flows
from repro.web.behaviors import WebRtcLeakBehavior
from repro.webrtc.ice import HOST_ADDRESS_BY_OS, POLICY_MDNS, POLICY_PRE_M74

ALL_OSES = frozenset({"windows", "linux", "mac"})
PEERS = (("127.0.0.1", 5939), ("192.168.1.1", 80), ("8.8.8.8", 3478))


def _visit_events(policy, os_name="windows", stun_peers=PEERS):
    behavior = WebRtcLeakBehavior(
        name="webrtc:site.example",
        active_oses=ALL_OSES,
        policy=policy,
        stun_peers=tuple(stun_peers),
    )
    chrome = SimulatedChrome(identity_for(os_name))
    return chrome.visit(
        Page(url="https://site.example/", scripts=[behavior])
    ).events


class TestFlowAssembly:
    def test_ice_session_becomes_one_webrtc_flow(self):
        flows = [f for f in extract_flows(_visit_events(POLICY_MDNS)) if f.is_webrtc]
        assert len(flows) == 1
        flow = flows[0]
        assert flow.webrtc_policy == POLICY_MDNS
        assert flow.initiator == "webrtc:site.example"
        assert [(h, p) for h, p, _ in flow.stun_checks] == list(PEERS)

    def test_candidates_carry_type_and_address(self):
        (flow,) = [
            f for f in extract_flows(_visit_events(POLICY_PRE_M74)) if f.is_webrtc
        ]
        types = {ctype for ctype, *_ in flow.candidates}
        assert types == {"host", "srflx"}
        host = [c for c in flow.candidates if c[0] == "host"]
        assert host[0][1] == HOST_ADDRESS_BY_OS["windows"]


class TestDetectionChannel:
    def test_candidate_and_stun_requests_use_webrtc_scheme(self):
        detection = LocalTrafficDetector().detect(_visit_events(POLICY_PRE_M74))
        webrtc = [r for r in detection.requests if r.scheme == "webrtc"]
        assert {r.method for r in webrtc} == {"CANDIDATE", "STUN"}
        assert all(r.path == "" for r in webrtc)

    def test_mdns_candidates_are_non_leaking(self):
        detection = LocalTrafficDetector().detect(_visit_events(POLICY_MDNS))
        candidates = [r for r in detection.requests if r.method == "CANDIDATE"]
        assert candidates == []

    def test_public_stun_peers_never_count(self):
        detection = LocalTrafficDetector().detect(_visit_events(POLICY_MDNS))
        stun = [r for r in detection.requests if r.method == "STUN"]
        assert {r.host for r in stun} == {"127.0.0.1", "192.168.1.1"}
        localities = {r.host: r.locality for r in stun}
        assert localities["127.0.0.1"] is Locality.LOCALHOST
        assert localities["192.168.1.1"] is Locality.LAN

    def test_channel_off_drops_webrtc_evidence_only(self):
        events = _visit_events(POLICY_PRE_M74)
        on = LocalTrafficDetector().detect(events)
        off = LocalTrafficDetector(webrtc_channel=False).detect(events)
        assert [r for r in off.requests if r.scheme == "webrtc"] == []
        assert [r for r in off.requests if r.scheme != "webrtc"] == [
            r for r in on.requests if r.scheme != "webrtc"
        ]


class TestStreamingBatchEquivalence:
    def test_sink_matches_batch_for_webrtc_flows(self):
        for policy in (POLICY_PRE_M74, POLICY_MDNS):
            events = _visit_events(policy)
            detector = LocalTrafficDetector()
            batch = detector.detect(events)
            sink = LocalTrafficDetector().sink()
            for event in events:
                sink.accept(event)
            streamed = sink.finish()
            assert streamed.requests == batch.requests

    def test_sink_matches_batch_with_channel_off(self):
        events = _visit_events(POLICY_PRE_M74)
        batch = LocalTrafficDetector(webrtc_channel=False).detect(events)
        sink = LocalTrafficDetector(webrtc_channel=False).sink()
        for event in events:
            sink.accept(event)
        assert sink.finish().requests == batch.requests
