"""Tests for the streaming NetLog parser."""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlog import EventPhase, EventType, NetLogEvent, NetLogSource, SourceType, dumps, loads
from repro.netlog.parser import NetLogParseError, ParseStats
from repro.netlog.streaming import count_event_types, iter_events_streaming


def _event(time=0.0, type=EventType.URL_REQUEST_START_JOB, source_id=1,
           params=None):
    return NetLogEvent(
        time=time,
        type=type,
        source=NetLogSource(id=source_id, type=SourceType.URL_REQUEST),
        phase=EventPhase.BEGIN,
        params=params or {},
    )


class TestStreamingParser:
    def test_matches_whole_document_parser(self):
        events = [
            _event(params={"url": "wss://localhost:5939/", "note": 'quote " and \\ inside'}),
            _event(time=5.0, type=EventType.TCP_CONNECT, source_id=2),
        ]
        text = dumps(events)
        streamed = list(iter_events_streaming(io.StringIO(text)))
        assert streamed == loads(text)

    def test_bounded_memory_over_many_events(self):
        # 10k events streamed from a file-like source in one pass.
        events = [_event(time=float(i), source_id=i + 1) for i in range(10_000)]
        text = dumps(events)
        count = sum(1 for _ in iter_events_streaming(io.StringIO(text)))
        assert count == 10_000

    def test_skips_unknown_event_types_by_default(self):
        document = {
            "constants": {"logEventTypes": {}},
            "events": [
                {"time": 0, "type": 987654, "source": {"id": 1, "type": 1}},
                {
                    "time": 1,
                    "type": int(EventType.TCP_CONNECT),
                    "source": {"id": 2, "type": 2},
                },
            ],
        }
        events = list(iter_events_streaming(io.StringIO(json.dumps(document))))
        assert len(events) == 1
        assert events[0].type is EventType.TCP_CONNECT

    def test_strict_mode_raises_on_unknown(self):
        document = {
            "events": [
                {"time": 0, "type": 987654, "source": {"id": 1, "type": 1}}
            ]
        }
        with pytest.raises(NetLogParseError):
            list(
                iter_events_streaming(
                    io.StringIO(json.dumps(document)), strict=True
                )
            )

    def test_extra_top_level_keys_skipped(self):
        document = {
            "polledData": {"huge": [1, 2, 3, {"nested": "x"}]},
            "constants": {"logEventTypes": {"TCP_CONNECT": 30}},
            "comment": "captured by chrome --log-net-log",
            "events": [
                {
                    "time": 2,
                    "type": "TCP_CONNECT",
                    "source": {"id": 5, "type": 2},
                }
            ],
        }
        events = list(iter_events_streaming(io.StringIO(json.dumps(document))))
        assert len(events) == 1
        assert events[0].source.id == 5

    def test_events_before_constants_use_numeric_types(self):
        # Key order is not guaranteed; numeric types always work.
        text = (
            '{"events": [{"time": 1, "type": %d, '
            '"source": {"id": 1, "type": 1}}], "constants": {}}'
            % int(EventType.REQUEST_ALIVE)
        )
        events = list(iter_events_streaming(io.StringIO(text)))
        assert events[0].type is EventType.REQUEST_ALIVE

    def test_non_object_document_rejected(self):
        with pytest.raises(NetLogParseError):
            list(iter_events_streaming(io.StringIO("[1, 2]")))

    def test_truncated_document_rejected_when_strict(self):
        text = dumps([_event()])[:-10]
        with pytest.raises(NetLogParseError):
            list(iter_events_streaming(io.StringIO(text), strict=True))

    def test_truncated_document_salvaged_by_default(self):
        # Non-strict (the default) yields the intact prefix and stops.
        events = [_event(time=float(i), source_id=i + 1) for i in range(5)]
        text = dumps(events)[:-10]
        stats = ParseStats()
        salvaged = list(iter_events_streaming(io.StringIO(text), stats=stats))
        assert len(salvaged) == 4
        assert stats.truncated

    def test_count_event_types(self):
        events = [
            _event(),
            _event(type=EventType.TCP_CONNECT),
            _event(type=EventType.TCP_CONNECT),
        ]
        counts = count_event_types(io.StringIO(dumps(events)))
        assert counts[EventType.TCP_CONNECT] == 2
        assert counts[EventType.URL_REQUEST_START_JOB] == 1


_params = st.dictionaries(
    st.sampled_from(["url", "method", "note"]),
    st.text(max_size=30),  # arbitrary text exercises string escaping
    max_size=3,
)


class TestStreamingProperties:
    @given(
        st.lists(
            st.builds(
                _event,
                time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
                type=st.sampled_from(list(EventType)),
                source_id=st.integers(1, 1000),
                params=_params,
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_streaming_equals_whole_document(self, events):
        text = dumps(events)
        assert list(iter_events_streaming(io.StringIO(text))) == loads(text)
