"""Tests for the streaming event pipeline: sinks, tee, reorder buffer.

The pipeline's contract is equivalence: any consumer fed event-by-event
through a sink must produce exactly what the batch API produces from the
materialised list.  These tests pin that contract for the combinators
themselves and for detection fed through every route — batch ``detect``,
``FlowAssembler``, the streaming parser, and salvage-mode parses of
truncated documents.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import LocalTrafficDetector
from repro.core.flows import FlowAssembler, extract_flows, page_load_time
from repro.netlog import (
    EventPhase,
    EventType,
    NetLogEvent,
    NetLogSource,
    SourceType,
    dumps,
    iter_events_streaming,
    loads,
)
from repro.netlog.pipeline import (
    CountSink,
    EventSink,
    ListSink,
    ReorderBuffer,
    Tee,
    feed,
)


def _event(time=0.0, source_id=1, type=EventType.URL_REQUEST_START_JOB,
           params=None, phase=EventPhase.BEGIN):
    return NetLogEvent(
        time=time,
        type=type,
        source=NetLogSource(id=source_id, type=SourceType.URL_REQUEST),
        phase=phase,
        params=params if params is not None else {"url": "http://localhost:8000/"},
    )


def _page_stream(events_builder):
    """A small realistic stream: page commit + local/remote/ws requests."""
    b = events_builder
    b.page_commit("https://site.example/", time=1.0)
    b.request("https://cdn.example/app.js", time=2.0)
    b.request("http://localhost:5939/fp", time=3.0)
    b.request(
        "http://tracker.example/r",
        time=4.0,
        redirects=("http://127.0.0.1:8001/hop",),
    )
    b.request(
        "ws://192.168.1.10:9000/scan",
        time=5.0,
        source_type=SourceType.WEB_SOCKET,
    )
    return b.events


class TestSinkCombinators:
    def test_list_sink_collects_in_order(self):
        stream = [_event(time=float(i), source_id=i + 1) for i in range(5)]
        assert feed(stream, ListSink()) == stream

    def test_count_sink(self):
        stream = [_event(time=float(i)) for i in range(7)]
        assert feed(stream, CountSink()) == 7

    def test_tee_fans_out_and_returns_results_in_order(self):
        stream = [_event(time=float(i), source_id=i + 1) for i in range(4)]
        collected, count = feed(stream, Tee(ListSink(), CountSink()))
        assert collected == stream
        assert count == 4

    def test_tee_requires_a_sink(self):
        with pytest.raises(ValueError):
            Tee()

    def test_sinks_satisfy_the_protocol(self):
        for sink in (ListSink(), CountSink(), Tee(ListSink()),
                     ReorderBuffer(ListSink()), FlowAssembler(),
                     LocalTrafficDetector().sink()):
            assert isinstance(sink, EventSink)

    def test_finish_on_empty_stream(self):
        assert feed([], ListSink()) == []
        assert feed([], CountSink()) == 0
        assert feed([], FlowAssembler()) == []


class TestReorderBuffer:
    def test_restores_time_order_on_flush(self):
        out = ListSink()
        buffer = ReorderBuffer(out)
        for time in (3.0, 1.0, 2.0):
            buffer.accept(_event(time=time))
        buffer.flush()
        assert [e.time for e in out.events] == [1.0, 2.0, 3.0]

    def test_matches_the_batch_sort_key_exactly(self):
        # The buffer replaces ``events.sort(key=(time, source id))`` — a
        # stable sort — so equal keys must keep arrival order too.
        stream = [
            _event(time=2.0, source_id=9),
            _event(time=1.0, source_id=5, params={"url": "a"}),
            _event(time=1.0, source_id=3),
            _event(time=1.0, source_id=5, params={"url": "b"}),
        ]
        expected = sorted(stream, key=lambda e: (e.time, e.source.id))
        out = ListSink()
        buffer = ReorderBuffer(out)
        for event in stream:
            buffer.accept(event)
        buffer.flush()
        assert out.events == expected

    def test_advance_releases_only_before_watermark(self):
        out = ListSink()
        buffer = ReorderBuffer(out)
        for time in (1.0, 2.0, 3.0):
            buffer.accept(_event(time=time))
        buffer.advance(2.0)
        # 2.0 itself must be held: a same-time event could still arrive.
        assert [e.time for e in out.events] == [1.0]
        assert buffer.pending == 2
        buffer.flush()
        assert buffer.pending == 0

    def test_peak_tracks_the_overlap_window(self):
        buffer = ReorderBuffer(ListSink())
        for time in (1.0, 2.0, 3.0):
            buffer.accept(_event(time=time))
            buffer.advance(time)  # release everything strictly older
        assert buffer.peak == 2  # never held more than two at once
        buffer.flush()

    def test_finish_finishes_downstream(self):
        buffer = ReorderBuffer(CountSink())
        for time in (2.0, 1.0):
            buffer.accept(_event(time=time))
        assert buffer.finish() == 2

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e4),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_equals_stable_sort(self, keys):
        stream = [_event(time=t, source_id=s) for t, s in keys]
        expected = sorted(stream, key=lambda e: (e.time, e.source.id))
        out = ListSink()
        buffer = ReorderBuffer(out)
        for event in stream:
            buffer.accept(event)
        assert buffer.finish() == expected


class TestDetectionRouteEquivalence:
    """Every route to a DetectionResult must agree with batch detect()."""

    def test_assembler_fed_equals_batch_detect(self, events):
        stream = _page_stream(events)
        detector = LocalTrafficDetector()
        batch = detector.detect(stream)
        streamed = feed(stream, detector.sink())
        assert streamed == batch
        assert streamed.page_load_time == page_load_time(stream)

    def test_flow_assembler_equals_extract_flows(self, events):
        stream = _page_stream(events)
        assembler = FlowAssembler()
        for event in stream:
            assembler.accept(event)
        assert assembler.finish() == extract_flows(stream)
        assert assembler.page_load_time == page_load_time(stream)

    def test_streaming_parser_fed_equals_batch_parse(self, events):
        text = dumps(_page_stream(events))
        detector = LocalTrafficDetector()
        batch = detector.detect(loads(text))
        streamed = feed(
            iter_events_streaming(io.StringIO(text)), detector.sink()
        )
        assert streamed == batch

    def test_out_of_order_emission_through_reorder_buffer(self, events):
        # A producer emitting out of order behind a ReorderBuffer must be
        # indistinguishable from batch detection on the sorted stream.
        stream = _page_stream(events)
        shuffled = list(reversed(stream))
        detector = LocalTrafficDetector()
        buffer = ReorderBuffer(detector.sink())
        for event in shuffled:
            buffer.accept(event)
        assert buffer.finish() == detector.detect(
            sorted(shuffled, key=lambda e: (e.time, e.source.id))
        )

    @pytest.mark.parametrize("keep", [10, 40, 75, 90])
    def test_salvage_truncation_equivalence(self, events, keep):
        # Cut the serialised document at arbitrary points: whatever prefix
        # the salvage parser recovers, streaming detection over that
        # prefix must equal batch detection over it.
        text = dumps(_page_stream(events))
        cut = text[: len(text) * keep // 100]
        detector = LocalTrafficDetector()
        batch = detector.detect(loads(cut, strict=False))
        streamed = feed(
            iter_events_streaming(io.StringIO(cut), strict=False),
            detector.sink(),
        )
        assert streamed == batch

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_streamed_equals_batch_on_random_streams(self, data):
        urls = st.sampled_from(
            [
                "http://localhost:8000/a",
                "http://127.0.0.1:5939/fp",
                "http://192.168.0.2/admin",
                "https://public.example/page",
                "not a url at all",
            ]
        )
        stream = []
        source_id = 1
        for _ in range(data.draw(st.integers(min_value=0, max_value=12))):
            source = NetLogSource(id=source_id, type=SourceType.URL_REQUEST)
            source_id += 1
            time = data.draw(st.floats(min_value=0.0, max_value=100.0))
            stream.append(
                NetLogEvent(
                    time=time,
                    type=data.draw(
                        st.sampled_from(
                            [
                                EventType.URL_REQUEST_START_JOB,
                                EventType.PAGE_LOAD_COMMITTED,
                                EventType.URL_REQUEST_REDIRECTED,
                                EventType.REQUEST_ALIVE,
                            ]
                        )
                    ),
                    source=source,
                    phase=data.draw(st.sampled_from(list(EventPhase))),
                    params={
                        "url": data.draw(urls),
                        "location": data.draw(urls),
                    },
                )
            )
        detector = LocalTrafficDetector()
        assert feed(stream, detector.sink()) == detector.detect(stream)


class TestReorderBufferEdgeCases:
    """Watermark corner cases: duplicate sort keys and empty streams."""

    def test_duplicate_time_and_source_keys_keep_arrival_order(self):
        # Identical (time, source id) on distinct events must not lose
        # or swap records: the tiebreaker is strictly arrival sequence.
        stream = [
            _event(time=5.0, source_id=7, params={"url": "first"}),
            _event(time=5.0, source_id=7, params={"url": "second"}),
            _event(time=5.0, source_id=7, params={"url": "third"}),
        ]
        out = ListSink()
        buffer = ReorderBuffer(out)
        for event in stream:
            buffer.accept(event)
        buffer.flush()
        assert out.events == stream

    def test_duplicate_keys_released_together_by_watermark(self):
        out = ListSink()
        buffer = ReorderBuffer(out)
        buffer.accept(_event(time=1.0, source_id=1, params={"url": "a"}))
        buffer.accept(_event(time=1.0, source_id=1, params={"url": "b"}))
        buffer.accept(_event(time=2.0, source_id=1))
        buffer.advance(2.0)
        # Both 1.0 duplicates cross the watermark as a unit, in order.
        assert [e.params.get("url") for e in out.events] == ["a", "b"]

    def test_watermark_not_advanced_by_duplicate_heap_pushes(self):
        buffer = ReorderBuffer(ListSink())
        for _ in range(5):
            buffer.accept(_event(time=3.0, source_id=2))
        buffer.advance(3.0)
        # time == watermark is never early-released, duplicates included.
        assert buffer.pending == 5

    def test_empty_stream_finish_finishes_downstream(self):
        out = ListSink()
        buffer = ReorderBuffer(out)
        result = buffer.finish()
        assert result == []
        assert out.events == []

    def test_empty_stream_flush_does_not_finish_downstream(self):
        class FinishTracking(ListSink):
            finished = False

            def finish(self):
                self.finished = True
                return super().finish()

        out = FinishTracking()
        buffer = ReorderBuffer(out)
        buffer.flush()
        assert not out.finished
        assert buffer.pending == 0

    def test_advance_on_empty_buffer_is_a_no_op(self):
        out = ListSink()
        buffer = ReorderBuffer(out)
        buffer.advance(100.0)
        assert out.events == []
        assert buffer.pending == 0
