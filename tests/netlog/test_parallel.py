"""Multiprocess parse-pool tests: order stability and serial parity."""

import pytest

from repro.netlog import NetLogArchive, dumps
from repro.netlog.parallel import (
    MAX_JOBS,
    analyze_paths,
    resolve_jobs,
    verify_document,
    verify_paths,
)

from .test_binary import _event, _events


class TestResolveJobs:
    def test_defaults_to_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_machine_sized(self):
        assert resolve_jobs(0) >= 1

    def test_capped_by_task_count_and_max(self):
        assert resolve_jobs(8, task_count=3) == 3
        assert resolve_jobs(10_000) == MAX_JOBS
        assert resolve_jobs(4, task_count=0) == 1


@pytest.fixture()
def archive(tmp_path):
    archive = NetLogArchive(tmp_path / "logs")
    for domain, fmt in (
        ("a.example", "json"),
        ("b.example", "binary"),
        ("c.example", "json"),
    ):
        archive.write(
            "crawl-1", "windows", domain, _events(5), format=fmt
        )
    return archive


class TestVerifyPaths:
    def test_parallel_matches_serial(self, archive):
        paths = list(archive.entries("crawl-1"))
        serial = verify_paths(paths, jobs=1)
        pooled = verify_paths(paths, jobs=2)
        assert [p for p, _ in pooled] == paths  # input order preserved
        assert [s for _, s in pooled] == [s for _, s in serial]
        assert all(not s.damaged for _, s in pooled)
        assert all(s.verified == 5 for _, s in pooled)

    def test_damage_is_reported_per_path(self, archive, tmp_path):
        paths = list(archive.entries("crawl-1"))
        victim = paths[1]
        victim.write_bytes(victim.read_bytes()[:40])
        results = dict(verify_paths(paths, jobs=2))
        assert results[victim].truncated
        assert not results[paths[0]].damaged

    def test_verify_document_matches_archive_verify(self, archive):
        for path in archive.entries("crawl-1"):
            assert verify_document(path) == archive.verify(path)


class TestAnalyzePaths:
    def test_parallel_matches_serial(self, archive):
        paths = list(archive.entries("crawl-1"))
        serial = analyze_paths(paths, jobs=1)
        pooled = analyze_paths(paths, jobs=2)
        assert serial == pooled
        assert [s.path for s in pooled] == [str(p) for p in paths]
        assert all(s.error is None for s in pooled)
        assert all(s.stats.parsed == 5 for s in pooled)

    def test_unreadable_and_non_netlog_inputs(self, tmp_path):
        missing = tmp_path / "missing.json"
        alien = tmp_path / "alien.json"
        alien.write_text('{"hello": "world"}')
        summaries = analyze_paths([missing, alien], jobs=1)
        assert "cannot read" in summaries[0].error
        assert "not a NetLog document" in summaries[1].error

    def test_local_traffic_is_classified(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(
            dumps(
                [
                    _event(
                        time=float(i),
                        source_id=i + 1,
                        params={"url": "http://127.0.0.1:8000/setup"},
                    )
                    for i in range(3)
                ]
            )
        )
        (summary,) = analyze_paths([path], jobs=1)
        assert summary.local_requests == 3
        assert summary.behavior is not None
