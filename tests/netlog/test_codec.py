"""Codec registry, sniffing, and source-coercion tests."""

import io

import pytest

from repro.netlog import (
    FORMAT_BINARY,
    FORMAT_ENV_VAR,
    FORMAT_JSON,
    default_format,
    dumps,
    dumps_binary,
    get_codec,
    make_capture_buffer,
    sniff_format,
)
from repro.netlog.binary import BinaryNetLogBuffer
from repro.netlog.codec import (
    ARCHIVE_SUFFIXES,
    codec_for_suffix,
    coerce_document,
    coerce_stream,
)
from repro.netlog.writer import NetLogBuffer

from .test_binary import _events


class TestRegistry:
    def test_codecs_resolve(self):
        assert get_codec("json").suffix == ".json"
        assert get_codec("binary").suffix == ".nlbin"
        assert get_codec("binary").binary
        assert not get_codec("json").binary

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown NetLog format"):
            get_codec("protobuf")

    def test_suffix_lookup(self):
        for suffix in ARCHIVE_SUFFIXES:
            assert codec_for_suffix(suffix).suffix == suffix
        assert codec_for_suffix(".txt") is None

    def test_default_format_env(self, monkeypatch):
        monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
        assert default_format() == FORMAT_JSON
        monkeypatch.setenv(FORMAT_ENV_VAR, "binary")
        assert default_format() == FORMAT_BINARY
        monkeypatch.setenv(FORMAT_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            default_format()

    def test_make_capture_buffer(self, monkeypatch):
        monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
        assert isinstance(make_capture_buffer(None), NetLogBuffer)
        assert isinstance(make_capture_buffer("binary"), BinaryNetLogBuffer)
        monkeypatch.setenv(FORMAT_ENV_VAR, "binary")
        assert isinstance(make_capture_buffer(None), BinaryNetLogBuffer)

    def test_buffer_format_tags(self):
        assert NetLogBuffer().format == "json"
        assert BinaryNetLogBuffer().format == "binary"


class TestSniffing:
    def test_sniff_by_first_byte(self):
        assert sniff_format(dumps_binary(_events(1))) == FORMAT_BINARY
        assert sniff_format(dumps(_events(1)).encode()) == FORMAT_JSON
        assert sniff_format("{}") == FORMAT_JSON
        assert sniff_format(b"") == FORMAT_JSON

    def test_sniff_partial_magic(self):
        # Even a one-byte prefix of the magic classifies as binary —
        # 0x89 is deliberately outside ASCII, so no JSON starts with it.
        data = dumps_binary(_events(1))
        assert sniff_format(data[:1]) == FORMAT_BINARY


class TestCoercion:
    def test_coerce_document_kinds(self):
        text = dumps(_events(2))
        data = dumps_binary(_events(2))
        assert coerce_document(text) == (FORMAT_JSON, text)
        assert coerce_document(text.encode()) == (FORMAT_JSON, text)
        assert coerce_document(data) == (FORMAT_BINARY, data)
        assert coerce_document(io.StringIO(text)) == (FORMAT_JSON, text)
        assert coerce_document(io.BytesIO(data)) == (FORMAT_BINARY, data)

    def test_coerce_document_replaces_bad_utf8(self):
        fmt, text = coerce_document(b'{"events": [\xff]}')
        assert fmt == FORMAT_JSON
        assert "�" in text

    def test_coerce_stream_kinds(self):
        text = dumps(_events(2))
        data = dumps_binary(_events(2))
        fmt, stream = coerce_stream(io.BytesIO(data))
        assert fmt == FORMAT_BINARY
        assert stream.read() == data
        fmt, stream = coerce_stream(io.BytesIO(text.encode()))
        assert fmt == FORMAT_JSON
        assert stream.read() == text

    def test_coerce_stream_non_seekable(self):
        data = dumps_binary(_events(2))

        class OneWay(io.RawIOBase):
            def __init__(self, payload):
                self._fp = io.BytesIO(payload)

            def readable(self):
                return True

            def seekable(self):
                return False

            def read(self, size=-1):
                return self._fp.read(size)

        fmt, stream = coerce_stream(OneWay(data))
        assert fmt == FORMAT_BINARY
        assert stream.read() == data  # the sniffed head is not lost
