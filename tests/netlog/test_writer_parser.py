"""Writer/parser round-trips and malformed-document handling."""

import io
import json
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlog import (
    CHAIN_SEED,
    CHECKSUM_ALGORITHM,
    EventPhase,
    EventType,
    NetLogEvent,
    NetLogParseError,
    NetLogSource,
    ParseStats,
    SourceType,
    canonical_record_bytes,
    dump,
    dumps,
    loads,
    parse_record,
)
from repro.netlog.writer import build_constants, event_to_record


def _event(time=0.0, type=EventType.URL_REQUEST_START_JOB, source_id=1,
           source_type=SourceType.URL_REQUEST, phase=EventPhase.BEGIN,
           params=None):
    return NetLogEvent(
        time=time,
        type=type,
        source=NetLogSource(id=source_id, type=source_type),
        phase=phase,
        params=params or {},
    )


class TestWriter:
    def test_document_is_valid_json_with_constants(self):
        text = dumps([_event(params={"url": "http://localhost/"})])
        document = json.loads(text)
        assert "constants" in document and "events" in document
        assert document["constants"]["logEventTypes"]["URL_REQUEST_START_JOB"]

    def test_dump_streams_and_counts(self):
        buffer = io.StringIO()
        count = dump((_event(time=float(i)) for i in range(5)), buffer)
        assert count == 5
        assert len(json.loads(buffer.getvalue())["events"]) == 5

    def test_empty_log(self):
        document = json.loads(dumps([]))
        assert document["events"] == []

    def test_event_to_record_omits_empty_params(self):
        record = event_to_record(_event())
        assert "params" not in record

    def test_constants_carry_time_origin(self):
        constants = build_constants(1234.5)
        assert constants["timeTickOffset"] == 1234.5


class TestParser:
    def test_roundtrip_preserves_everything(self):
        events = [
            _event(time=1.5, params={"url": "wss://localhost:5939/", "method": "GET"}),
            _event(
                time=2.0,
                type=EventType.REQUEST_ALIVE,
                phase=EventPhase.END,
                params={"net_error": -102},
            ),
        ]
        parsed = loads(dumps(events))
        assert parsed == events

    def test_parses_event_type_names(self):
        # Producers may write symbolic type names; the constants header
        # maps them back.
        text = dumps([_event()])
        document = json.loads(text)
        document["events"][0]["type"] = "URL_REQUEST_START_JOB"
        parsed = loads(json.dumps(document))
        assert parsed[0].type is EventType.URL_REQUEST_START_JOB

    def test_invalid_json_raises(self):
        with pytest.raises(NetLogParseError):
            loads("{not json")

    def test_missing_events_array_raises(self):
        with pytest.raises(NetLogParseError):
            loads('{"constants": {}}')

    def test_non_object_document_raises(self):
        with pytest.raises(NetLogParseError):
            loads("[1, 2, 3]")

    def test_unknown_type_strict_raises(self):
        record = {"time": 0, "type": 99999, "source": {"id": 1, "type": 1}}
        with pytest.raises(NetLogParseError):
            parse_record(record, strict=True)

    def test_unknown_type_lenient_skips(self):
        record = {"time": 0, "type": 99999, "source": {"id": 1, "type": 1}}
        assert parse_record(record, strict=False) is None

    def test_bool_type_rejected(self):
        record = {"time": 0, "type": True, "source": {"id": 1, "type": 1}}
        assert parse_record(record, strict=False) is None

    def test_malformed_source_raises(self):
        record = {"time": 0, "type": 2, "source": "nope"}
        with pytest.raises(NetLogParseError):
            parse_record(record)

    def test_bad_phase_degrades_to_none(self):
        record = {
            "time": 0,
            "type": int(EventType.TCP_CONNECT),
            "source": {"id": 3, "type": 2},
            "phase": 77,
        }
        event = parse_record(record)
        assert event is not None and event.phase is EventPhase.NONE

    def test_non_dict_params_raises(self):
        record = {
            "time": 0,
            "type": int(EventType.TCP_CONNECT),
            "source": {"id": 3, "type": 2},
            "params": [1, 2],
        }
        with pytest.raises(NetLogParseError):
            parse_record(record)


# Hypothesis strategies for whole events.
_params = st.dictionaries(
    st.sampled_from(["url", "method", "net_error", "host", "location"]),
    st.one_of(st.text(max_size=40), st.integers(-400, 0)),
    max_size=3,
)
_events_strategy = st.lists(
    st.builds(
        _event,
        time=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        type=st.sampled_from(list(EventType)),
        source_id=st.integers(1, 10_000),
        source_type=st.sampled_from(list(SourceType)),
        phase=st.sampled_from(list(EventPhase)),
        params=_params,
    ),
    max_size=25,
)


class TestRoundtripProperties:
    @given(_events_strategy)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_identity(self, events):
        assert loads(dumps(events)) == events

    @given(_events_strategy)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_is_idempotent(self, events):
        once = dumps(loads(dumps(events)))
        assert loads(once) == events

    @given(_events_strategy)
    @settings(max_examples=25, deadline=None)
    def test_checksummed_roundtrip_identity(self, events):
        stats = ParseStats()
        assert loads(dumps(events, checksums=True), stats=stats) == events
        assert stats.verified == len(events)
        assert not stats.damaged


class TestChecksummedDocuments:
    def _events(self, count=5):
        return [_event(time=float(i), source_id=i + 1) for i in range(count)]

    def test_default_output_carries_no_checksums(self):
        text = dumps(self._events())
        assert '"crc"' not in text and '"integrity"' not in text

    def test_checksummed_document_shape(self):
        document = json.loads(dumps(self._events(), checksums=True))
        for record in document["events"]:
            assert isinstance(record["crc"], int)
            assert isinstance(record["chain"], int)
        trailer = document["integrity"]
        assert trailer["algorithm"] == CHECKSUM_ALGORITHM
        assert trailer["events"] == 5
        assert trailer["chain"] == document["events"][-1]["chain"]

    def test_chain_links_record_by_record(self):
        document = json.loads(dumps(self._events(), checksums=True))
        chain = CHAIN_SEED
        for record in document["events"]:
            payload = canonical_record_bytes(record)
            assert record["crc"] == zlib.crc32(payload)
            chain = zlib.crc32(payload, chain)
            assert record["chain"] == chain

    def test_canonical_bytes_exclude_integrity_fields(self):
        record = event_to_record(_event())
        bare = canonical_record_bytes(record)
        record["crc"] = 1
        record["chain"] = 2
        assert canonical_record_bytes(record) == bare

    def test_verification_counts_in_stats(self):
        stats = ParseStats()
        events = loads(dumps(self._events(), checksums=True), stats=stats)
        assert len(events) == 5
        assert stats.verified == 5
        assert stats.checksum_failures == 0
        assert stats.chain_breaks == 0
        assert stats.first_divergence is None

    def test_legacy_documents_skip_verification(self):
        stats = ParseStats()
        events = loads(dumps(self._events()), stats=stats)
        assert len(events) == 5
        assert stats.verified == 0
        assert not stats.damaged

    def test_extra_block_rides_ahead_of_constants(self):
        meta = {"domain": "a.com", "os": "windows"}
        text = dumps(self._events(), checksums=True, extra={"visitMeta": meta})
        document = json.loads(text)
        assert document["visitMeta"] == meta
        assert text.index('"visitMeta"') < text.index('"constants"')
        # Unknown top-level keys never disturb parsing.
        assert len(loads(text)) == 5
