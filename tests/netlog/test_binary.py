"""Binary (``nlbin-v1``) format tests: salvage parity and transcoding.

Mirrors ``test_salvage.py`` for the binary encoding: every physical
damage shape the JSON salvage suite covers — truncated tail, NUL
padding, a cut inside a record, bit flips, spliced-out records — must
produce the analogous :class:`ParseStats` accounting, and the lossless
transcoder must round-trip our own documents byte for byte.

Parse tests run against both the in-memory fused scanner (bytes input)
and the generic frame loop (file input), which must stay semantically
identical.
"""

import io
import json

import pytest

from repro.netlog import (
    EventPhase,
    EventType,
    NetLogEvent,
    NetLogIntegrityError,
    NetLogParseError,
    NetLogSource,
    NetLogTruncationError,
    ParseStats,
    SourceType,
    dumps,
    dumps_binary,
    iter_events_binary,
    iter_events_streaming,
    loads,
    read_binary_header,
    to_binary,
    to_json,
)
from repro.netlog.binary import (
    _FRAME_HEAD,
    MAGIC,
    TAG_EVENT,
)


def _event(time=0.0, source_id=1, params=None):
    return NetLogEvent(
        time=time,
        type=EventType.URL_REQUEST_START_JOB,
        source=NetLogSource(id=source_id, type=SourceType.URL_REQUEST),
        phase=EventPhase.BEGIN,
        params=params if params is not None else {"url": "http://localhost/"},
    )


def _events(n=10):
    return [_event(time=float(i), source_id=i + 1) for i in range(n)]


@pytest.fixture()
def document():
    return dumps_binary(_events())


@pytest.fixture()
def checksummed():
    return dumps_binary(_events(), checksums=True)


# Every parse test runs through both scanner implementations: the fused
# zero-copy loop (bytes) and the generic frame loop (file object).
@pytest.fixture(params=["bytes", "file"])
def source_of(request):
    if request.param == "bytes":
        return lambda data: data
    return lambda data: io.BytesIO(data)


def _parse(data, source_of, stats=None, strict=False, verify="fast"):
    return list(
        iter_events_binary(
            source_of(data), strict=strict, stats=stats, verify=verify
        )
    )


def _frames(data):
    """(offset, tag, payload_length) of every frame in a document."""
    out = []
    offset = len(MAGIC)
    while offset < len(data):
        tag, length, _crc = _FRAME_HEAD.unpack_from(data, offset)
        out.append((offset, tag, length))
        offset += _FRAME_HEAD.size + length
    return out


def _event_frame_offsets(data):
    return [
        (offset, length)
        for offset, tag, length in _frames(data)
        if tag == TAG_EVENT
    ]


class TestCleanDocuments:
    def test_matches_json_parse(self, document, source_of):
        text = dumps(_events())
        assert _parse(document, source_of) == loads(text)

    def test_checksummed_document_is_pristine(self, checksummed, source_of):
        for verify in ("fast", "full"):
            stats = ParseStats()
            events = _parse(checksummed, source_of, stats, verify=verify)
            assert len(events) == 10
            assert not stats.damaged
            assert stats.first_divergence is None
        # Only the full regime re-derives canonical checksums.
        stats = ParseStats()
        _parse(checksummed, source_of, stats, verify="full")
        assert stats.verified == 10

    def test_loads_and_streaming_sniff_binary_bytes(self, checksummed):
        expected = _parse(checksummed, lambda d: d)
        assert loads(checksummed) == expected
        assert list(iter_events_streaming(checksummed)) == expected
        assert list(iter_events_streaming(io.BytesIO(checksummed))) == expected

    def test_header_roundtrip(self):
        data = dumps_binary(_events(2), extra={"visitMeta": {"os": "mac"}})
        header = read_binary_header(data)
        assert header["format"] == "nlbin-v1"
        assert header["extra"] == {"visitMeta": {"os": "mac"}}

    def test_empty_document(self, source_of):
        stats = ParseStats()
        assert _parse(dumps_binary([]), source_of, stats) == []
        assert not stats.damaged

    def test_not_binary_raises(self, source_of):
        with pytest.raises(NetLogParseError):
            _parse(b'{"events": []}', source_of)

    def test_empty_input_truncated(self, source_of):
        stats = ParseStats()
        assert _parse(b"", source_of, stats) == []
        assert stats.truncated
        with pytest.raises(NetLogTruncationError):
            _parse(b"", source_of, strict=True)


class TestTruncatedDocuments:
    def test_missing_trailer(self, document, source_of):
        offset, length = _event_frame_offsets(document)[-1]
        cut = document[: offset + _FRAME_HEAD.size + length]
        stats = ParseStats()
        events = _parse(cut, source_of, stats)
        assert len(events) == 10  # every record frame was intact
        assert stats.truncated
        assert stats.dropped == 0

    def test_mid_record_truncation(self, document, source_of):
        offset, _length = _event_frame_offsets(document)[-1]
        cut = document[: offset + _FRAME_HEAD.size + 3]
        stats = ParseStats()
        events = _parse(cut, source_of, stats)
        assert len(events) == 9
        assert [e.time for e in events] == [float(i) for i in range(9)]
        assert stats.truncated
        assert stats.dropped_malformed == 1

    def test_nul_padded_tail(self, document, source_of):
        offset, _length = _event_frame_offsets(document)[-1]
        cut = document[:offset] + b"\x00" * 128
        stats = ParseStats()
        events = _parse(cut, source_of, stats)
        assert len(events) == 9
        assert stats.truncated

    def test_strict_mode_still_raises(self, document, source_of):
        with pytest.raises((NetLogParseError, NetLogTruncationError)):
            _parse(document[:-4], source_of, strict=True)

    def test_every_cut_point_recovers_a_prefix(self, document, source_of):
        clean = _parse(document, source_of)
        for cut in range(0, len(document), 7):
            stats = ParseStats()
            salvaged = _parse(document[:cut], source_of, stats)
            assert salvaged == clean[: len(salvaged)]
            if cut < len(document):
                assert stats.truncated

    def test_every_cut_point_checksummed(self, checksummed, source_of):
        clean = _parse(checksummed, source_of)
        for cut in range(len(MAGIC), len(checksummed), 11):
            salvaged = _parse(checksummed[:cut], source_of, ParseStats())
            assert salvaged == clean[: len(salvaged)]


class TestChecksummedCorruption:
    def _flip_in_record(self, data, record_index, byte_index=4):
        offset, _length = _event_frame_offsets(data)[record_index]
        position = offset + _FRAME_HEAD.size + byte_index
        mutated = bytearray(data)
        mutated[position] ^= 0x01
        return bytes(mutated)

    def test_payload_bit_flip_fails_frame_crc(self, checksummed, source_of):
        flipped = self._flip_in_record(checksummed, 3)
        for verify in ("fast", "full"):
            stats = ParseStats()
            events = _parse(flipped, source_of, stats, verify=verify)
            assert len(events) == 9  # the lying record is dropped
            assert stats.checksum_failures == 1
            assert stats.first_divergence == 3
            assert 3.0 not in {e.time for e in events}

    def test_bit_flip_in_plain_document_drops_record(
        self, document, source_of
    ):
        flipped = self._flip_in_record(document, 3)
        stats = ParseStats()
        events = _parse(flipped, source_of, stats)
        assert len(events) == 9
        # No checksums to blame: a failed frame CRC on a plain document
        # counts as malformed, like undecodable JSON records.
        assert stats.dropped_malformed == 1
        assert stats.checksum_failures == 0

    def test_spliced_out_record_breaks_chain(self, checksummed, source_of):
        offsets = _event_frame_offsets(checksummed)
        start, length = offsets[3]
        spliced = (
            checksummed[:start]
            + checksummed[start + _FRAME_HEAD.size + length :]
        )
        for verify in ("fast", "full"):
            stats = ParseStats()
            events = _parse(spliced, source_of, stats, verify=verify)
            # Like the JSON parsers: the record after the gap is suspect
            # and dropped, and the trailer count adds a second break.
            assert len(events) == 8
            assert stats.checksum_failures == 0
            assert stats.chain_breaks == 2
            assert stats.first_divergence == 3

    def test_clean_truncation_caught_by_trailer(self, checksummed, source_of):
        offset, _length = _event_frame_offsets(checksummed)[7]
        trailer_offset = _frames(checksummed)[-1][0]
        shortened = checksummed[:offset] + checksummed[trailer_offset:]
        stats = ParseStats()
        events = _parse(shortened, source_of, stats)
        assert len(events) == 7
        assert stats.checksum_failures == 0
        assert stats.chain_breaks == 1  # the trailer mismatch
        assert stats.first_divergence == 7

    def test_strict_mode_raises_integrity_error(self, checksummed, source_of):
        flipped = self._flip_in_record(checksummed, 3)
        with pytest.raises(NetLogIntegrityError):
            _parse(flipped, source_of, strict=True)

    def test_fast_and_full_agree_on_events(self, checksummed, source_of):
        for damage in (
            self._flip_in_record(checksummed, 2),
            checksummed[: len(checksummed) // 2],
            checksummed[:-5] + b"\x00" * 5,
        ):
            fast = _parse(damage, source_of, ParseStats())
            full = _parse(damage, source_of, ParseStats(), verify="full")
            assert fast == full


class TestTranscoding:
    @pytest.mark.parametrize("checksums", [False, True])
    def test_json_binary_json_byte_identical(self, checksums):
        text = dumps(_events(), checksums=checksums)
        assert to_json(to_binary(text)) == text

    @pytest.mark.parametrize("checksums", [False, True])
    def test_binary_json_binary_byte_identical(self, checksums):
        data = dumps_binary(_events(), checksums=checksums)
        assert to_binary(to_json(data)) == data

    def test_extras_survive(self):
        from repro.netlog.writer import dump as dump_json

        out = io.StringIO()
        dump_json(
            _events(3),
            out,
            checksums=True,
            extra={"visitMeta": {"os": "windows", "attempts": 1}},
        )
        text = out.getvalue()
        assert to_json(to_binary(text)) == text

    def test_same_parse_both_formats(self):
        text = dumps(_events(), checksums=True)
        assert loads(to_binary(text)) == loads(text)

    def test_identity_when_already_target_format(self):
        text = dumps(_events())
        data = dumps_binary(_events())
        assert to_json(text) == text
        assert to_binary(data) == data

    def test_damaged_json_is_rejected(self):
        text = dumps(_events(), checksums=True)
        with pytest.raises(NetLogParseError):
            to_binary(text[: len(text) // 2])

    def test_foreign_constants_pass_through(self):
        # A hand-built (non-writer) document keeps its constants block.
        document = {
            "constants": {"logEventTypes": {}, "timeTickOffset": 7.5},
            "events": [],
        }
        text = json.dumps(document)
        round_tripped = json.loads(to_json(to_binary(text)))
        assert round_tripped["constants"] == document["constants"]
