"""Tests for the NetLog event model and source-id allocation."""

import pytest

from repro.netlog.constants import EventPhase, EventType, SourceType
from repro.netlog.events import (
    NetLogEvent,
    NetLogSource,
    SourceIdAllocator,
    events_for_source,
)


class TestNetLogSource:
    def test_browser_internal_flag(self):
        internal = NetLogSource(id=1, type=SourceType.BROWSER_INTERNAL)
        content = NetLogSource(id=2, type=SourceType.URL_REQUEST)
        assert internal.is_browser_internal()
        assert not content.is_browser_internal()

    def test_sources_are_hashable_and_comparable(self):
        a = NetLogSource(id=1, type=SourceType.SOCKET)
        b = NetLogSource(id=1, type=SourceType.SOCKET)
        assert a == b
        assert len({a, b}) == 1


class TestNetLogEvent:
    def test_url_accessor_returns_string_urls_only(self):
        source = NetLogSource(id=1, type=SourceType.URL_REQUEST)
        with_url = NetLogEvent(
            time=0.0,
            type=EventType.URL_REQUEST_START_JOB,
            source=source,
            params={"url": "http://localhost:8080/"},
        )
        with_junk = NetLogEvent(
            time=0.0,
            type=EventType.URL_REQUEST_START_JOB,
            source=source,
            params={"url": 42},
        )
        assert with_url.url == "http://localhost:8080/"
        assert with_junk.url is None

    def test_net_error_accessor(self):
        source = NetLogSource(id=1, type=SourceType.URL_REQUEST)
        event = NetLogEvent(
            time=0.0,
            type=EventType.SOCKET_ERROR,
            source=source,
            params={"net_error": -105},
        )
        assert event.net_error == -105

    def test_net_error_rejects_non_int(self):
        source = NetLogSource(id=1, type=SourceType.URL_REQUEST)
        event = NetLogEvent(
            time=0.0,
            type=EventType.SOCKET_ERROR,
            source=source,
            params={"net_error": "oops"},
        )
        assert event.net_error is None

    def test_default_phase_is_none(self):
        source = NetLogSource(id=1, type=SourceType.URL_REQUEST)
        event = NetLogEvent(
            time=1.0, type=EventType.TCP_CONNECT, source=source
        )
        assert event.phase is EventPhase.NONE
        assert event.params == {}


class TestSourceIdAllocator:
    def test_ids_are_serial(self):
        allocator = SourceIdAllocator()
        first = allocator.allocate(SourceType.URL_REQUEST)
        second = allocator.allocate(SourceType.WEB_SOCKET)
        assert second.id == first.id + 1
        assert second.type is SourceType.WEB_SOCKET

    def test_custom_start(self):
        allocator = SourceIdAllocator(start=100)
        assert allocator.allocate(SourceType.SOCKET).id == 100
        assert allocator.next_id == 101

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SourceIdAllocator(start=-1)


class TestEventsForSource:
    def test_filters_by_source_id_preserving_order(self, events):
        a = events.request("http://a.example/")
        b = events.request("http://b.example/")
        mine = list(events_for_source(events.events, a.id))
        theirs = list(events_for_source(events.events, b.id))
        assert all(e.source.id == a.id for e in mine)
        assert all(e.source.id == b.id for e in theirs)
        assert len(mine) == 3 and len(theirs) == 3
        assert [e.time for e in mine] == sorted(e.time for e in mine)
