"""Salvage-mode tests: damaged NetLog documents, both parsers.

A NetLog from a killed browser is damaged in predictable ways: the
closing ``]}`` never gets written, the cut can fall mid-record, and
filesystems pad the tail with NULs.  Non-strict parsing must recover the
intact event prefix and account for the loss in :class:`ParseStats`;
strict parsing must keep raising.
"""

import io
import json

import pytest

from repro.netlog import (
    EventPhase,
    EventType,
    NetLogEvent,
    NetLogParseError,
    NetLogSource,
    NetLogTruncationError,
    ParseStats,
    SourceType,
    dumps,
    iter_events_streaming,
    loads,
    parse_record,
)


def _event(time=0.0, source_id=1, params=None):
    return NetLogEvent(
        time=time,
        type=EventType.URL_REQUEST_START_JOB,
        source=NetLogSource(id=source_id, type=SourceType.URL_REQUEST),
        phase=EventPhase.BEGIN,
        params=params if params is not None else {"url": "http://localhost/"},
    )


@pytest.fixture()
def document():
    return dumps([_event(time=float(i), source_id=i + 1) for i in range(10)])


def _streaming(text, stats=None, strict=False):
    return list(
        iter_events_streaming(io.StringIO(text), strict=strict, stats=stats)
    )


class TestTruncatedDocuments:
    """Each damage shape, against both the whole-document and streaming
    parsers; each must recover at least the untruncated prefix."""

    def test_missing_closing_brackets(self, document):
        text = document.rstrip()
        assert text.endswith("]}")
        text = text[:-2]
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(text, stats)
            assert len(events) == 10  # every record was intact
            assert stats.truncated
            assert stats.parsed == 10
            assert stats.dropped == 0

    def test_mid_record_truncation(self, document):
        # Cut inside the final record: 9 intact events, 1 partial dropped.
        text = document[: document.rfind('"source"')]
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(text, stats)
            assert len(events) == 9
            assert [e.time for e in events] == [float(i) for i in range(9)]
            assert stats.truncated
            assert stats.dropped_malformed == 1

    def test_nul_padded_tail(self, document):
        text = document[: document.rfind('"source"')] + "\x00" * 128
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(text, stats)
            assert len(events) == 9
            assert stats.truncated

    def test_empty_events_array(self):
        text = dumps([])
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            assert parse(text, stats) == []
            assert not stats.truncated
            assert not stats.damaged

    def test_strict_mode_still_raises(self, document):
        truncated = document[:-4]
        with pytest.raises(NetLogParseError):
            loads(truncated, strict=True)
        with pytest.raises(NetLogTruncationError):
            _streaming(truncated, strict=True)

    def test_salvage_matches_clean_parse_prefix(self, document):
        # The salvaged events are value-identical to the clean parse.
        clean = loads(document)
        salvaged = loads(document[:-4], strict=False)
        assert salvaged == clean[: len(salvaged)]

    def test_every_cut_point_recovers_a_prefix(self, document):
        # Sweep cut positions: salvage must never raise and never invent
        # events beyond the clean parse.
        clean = loads(document)
        for cut in range(0, len(document), 37):
            stats = ParseStats()
            salvaged = loads(document[:cut], strict=False, stats=stats)
            assert salvaged == clean[: len(salvaged)]


class TestNonStrictRecordHandling:
    """strict=False skips-and-counts malformed records of every shape."""

    def _doc_with(self, mutate):
        document = json.loads(
            dumps([_event(time=float(i), source_id=i + 1) for i in range(4)])
        )
        mutate(document["events"])
        return json.dumps(document)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda events: events[1].update(time="bogus"),
            lambda events: events[1].pop("time"),
            lambda events: events[1].pop("source"),
            lambda events: events[1].update(source=[1, 2]),
            lambda events: events[1].update(source={"id": "x"}),
            lambda events: events[1].update(params="not-a-dict"),
            lambda events: events.__setitem__(1, "not-an-object"),
        ],
        ids=[
            "bad-time",
            "missing-time",
            "missing-source",
            "source-not-object",
            "bad-source-id",
            "params-not-object",
            "record-not-object",
        ],
    )
    def test_malformed_record_skipped_and_counted(self, mutate):
        text = self._doc_with(mutate)
        stats = ParseStats()
        events = loads(text, strict=False, stats=stats)
        assert [e.source.id for e in events] == [1, 3, 4]
        assert stats.dropped_malformed == 1
        assert stats.parsed == 3
        with pytest.raises(NetLogParseError):
            loads(text, strict=True)

    def test_unknown_type_counted_separately(self):
        record = {
            "time": 1.0,
            "type": 9999,
            "source": {"id": 1, "type": 1},
            "phase": 1,
        }
        stats = ParseStats()
        assert parse_record(record, strict=False, stats=stats) is None
        assert stats.dropped_unknown_type == 1
        assert stats.dropped_malformed == 0

    def test_in_place_corruption_streaming(self, document):
        # A balanced-but-undecodable record desynchronises nothing: the
        # streaming walker drops it and keeps going.
        corrupted = document.replace('"time": 3.0', '"time": 3.#!', 1)
        assert corrupted != document
        stats = ParseStats()
        events = _streaming(corrupted, stats)
        assert len(events) == 9
        assert stats.dropped_malformed == 1
        assert not stats.truncated

    def test_describe_mentions_damage(self, document):
        stats = ParseStats()
        loads(document[:-4], strict=False, stats=stats)
        text = stats.describe()
        assert "truncated" in text
