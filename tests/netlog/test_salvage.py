"""Salvage-mode tests: damaged NetLog documents, both parsers.

A NetLog from a killed browser is damaged in predictable ways: the
closing ``]}`` never gets written, the cut can fall mid-record, and
filesystems pad the tail with NULs.  Non-strict parsing must recover the
intact event prefix and account for the loss in :class:`ParseStats`;
strict parsing must keep raising.
"""

import io
import json

import pytest

from repro.netlog import (
    EventPhase,
    EventType,
    NetLogEvent,
    NetLogIntegrityError,
    NetLogParseError,
    NetLogSource,
    NetLogTruncationError,
    ParseStats,
    SourceType,
    dumps,
    iter_events_streaming,
    loads,
    parse_record,
)


def _event(time=0.0, source_id=1, params=None):
    return NetLogEvent(
        time=time,
        type=EventType.URL_REQUEST_START_JOB,
        source=NetLogSource(id=source_id, type=SourceType.URL_REQUEST),
        phase=EventPhase.BEGIN,
        params=params if params is not None else {"url": "http://localhost/"},
    )


@pytest.fixture()
def document():
    return dumps([_event(time=float(i), source_id=i + 1) for i in range(10)])


@pytest.fixture()
def checksummed():
    return dumps(
        [_event(time=float(i), source_id=i + 1) for i in range(10)],
        checksums=True,
    )


def _streaming(text, stats=None, strict=False):
    return list(
        iter_events_streaming(io.StringIO(text), strict=strict, stats=stats)
    )


class TestTruncatedDocuments:
    """Each damage shape, against both the whole-document and streaming
    parsers; each must recover at least the untruncated prefix."""

    def test_missing_closing_brackets(self, document):
        text = document.rstrip()
        assert text.endswith("]}")
        text = text[:-2]
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(text, stats)
            assert len(events) == 10  # every record was intact
            assert stats.truncated
            assert stats.parsed == 10
            assert stats.dropped == 0

    def test_mid_record_truncation(self, document):
        # Cut inside the final record: 9 intact events, 1 partial dropped.
        text = document[: document.rfind('"source"')]
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(text, stats)
            assert len(events) == 9
            assert [e.time for e in events] == [float(i) for i in range(9)]
            assert stats.truncated
            assert stats.dropped_malformed == 1

    def test_nul_padded_tail(self, document):
        text = document[: document.rfind('"source"')] + "\x00" * 128
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(text, stats)
            assert len(events) == 9
            assert stats.truncated

    def test_empty_events_array(self):
        text = dumps([])
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            assert parse(text, stats) == []
            assert not stats.truncated
            assert not stats.damaged

    def test_strict_mode_still_raises(self, document):
        truncated = document[:-4]
        with pytest.raises(NetLogParseError):
            loads(truncated, strict=True)
        with pytest.raises(NetLogTruncationError):
            _streaming(truncated, strict=True)

    def test_salvage_matches_clean_parse_prefix(self, document):
        # The salvaged events are value-identical to the clean parse.
        clean = loads(document)
        salvaged = loads(document[:-4], strict=False)
        assert salvaged == clean[: len(salvaged)]

    def test_every_cut_point_recovers_a_prefix(self, document):
        # Sweep cut positions: salvage must never raise and never invent
        # events beyond the clean parse.
        clean = loads(document)
        for cut in range(0, len(document), 37):
            stats = ParseStats()
            salvaged = loads(document[:cut], strict=False, stats=stats)
            assert salvaged == clean[: len(salvaged)]


class TestNonStrictRecordHandling:
    """strict=False skips-and-counts malformed records of every shape."""

    def _doc_with(self, mutate):
        document = json.loads(
            dumps([_event(time=float(i), source_id=i + 1) for i in range(4)])
        )
        mutate(document["events"])
        return json.dumps(document)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda events: events[1].update(time="bogus"),
            lambda events: events[1].pop("time"),
            lambda events: events[1].pop("source"),
            lambda events: events[1].update(source=[1, 2]),
            lambda events: events[1].update(source={"id": "x"}),
            lambda events: events[1].update(params="not-a-dict"),
            lambda events: events.__setitem__(1, "not-an-object"),
        ],
        ids=[
            "bad-time",
            "missing-time",
            "missing-source",
            "source-not-object",
            "bad-source-id",
            "params-not-object",
            "record-not-object",
        ],
    )
    def test_malformed_record_skipped_and_counted(self, mutate):
        text = self._doc_with(mutate)
        stats = ParseStats()
        events = loads(text, strict=False, stats=stats)
        assert [e.source.id for e in events] == [1, 3, 4]
        assert stats.dropped_malformed == 1
        assert stats.parsed == 3
        with pytest.raises(NetLogParseError):
            loads(text, strict=True)

    def test_unknown_type_counted_separately(self):
        record = {
            "time": 1.0,
            "type": 9999,
            "source": {"id": 1, "type": 1},
            "phase": 1,
        }
        stats = ParseStats()
        assert parse_record(record, strict=False, stats=stats) is None
        assert stats.dropped_unknown_type == 1
        assert stats.dropped_malformed == 0

    def test_in_place_corruption_streaming(self, document):
        # A balanced-but-undecodable record desynchronises nothing: the
        # streaming walker drops it and keeps going.
        corrupted = document.replace('"time": 3.0', '"time": 3.#!', 1)
        assert corrupted != document
        stats = ParseStats()
        events = _streaming(corrupted, stats)
        assert len(events) == 9
        assert stats.dropped_malformed == 1
        assert not stats.truncated

    def test_describe_mentions_damage(self, document):
        stats = ParseStats()
        loads(document[:-4], strict=False, stats=stats)
        text = stats.describe()
        assert "truncated" in text


class TestChecksummedCorruption:
    """Corruption shapes that only end-to-end checksums can see, against
    both parsers: the damaged document stays syntactically valid JSON (or
    degrades like a torn write), yet verification pins the exact record
    where the content diverged from what the writer emitted."""

    def test_mid_record_bit_flip_fails_crc(self, checksummed):
        # Flip one digit inside record 3's payload.  The JSON stays
        # perfectly parseable — without checksums this damage is
        # undetectable — but the record's CRC32 no longer matches.
        flipped = checksummed.replace('"time": 3.0', '"time": 3.5', 1)
        assert flipped != checksummed
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(flipped, stats)
            assert len(events) == 9  # the lying record is dropped
            assert stats.checksum_failures == 1
            assert stats.first_divergence == 3
            assert 3.5 not in {e.time for e in events}

    def test_spliced_out_record_breaks_chain(self, checksummed):
        # Remove one complete record.  Every survivor is individually
        # CRC-valid, so only the rolling hash chain (and the trailer's
        # event count) can prove the loss.
        document = json.loads(checksummed)
        del document["events"][3]
        spliced = json.dumps(document)
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(spliced, stats)
            # The record where the break surfaces is dropped too (its
            # provenance is suspect), and the trailer adds a second break
            # for the event-count mismatch.
            assert len(events) == 8
            assert stats.checksum_failures == 0
            assert stats.chain_breaks == 2
            assert stats.first_divergence == 3

    def test_torn_tail_nul_hole(self, checksummed):
        # A torn write: the tail of the file is a hole of NUL bytes.
        position = checksummed.rfind('"source"')
        torn = checksummed[:position] + "\x00" * (len(checksummed) - position)
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(torn, stats)
            assert len(events) == 9
            assert stats.truncated
            assert stats.first_divergence == 9
            assert stats.verified == 9

    def test_clean_whole_record_truncation_caught_by_trailer(
        self, checksummed
    ):
        # Drop the last three records *cleanly* — the survivors all
        # verify and chain correctly, so only the integrity trailer's
        # count/final-chain can reveal the loss.
        document = json.loads(checksummed)
        del document["events"][7:]
        shortened = json.dumps(document)
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(shortened, stats)
            assert len(events) == 7
            assert stats.checksum_failures == 0
            assert stats.chain_breaks == 1  # the trailer mismatch
            assert stats.first_divergence == 7

    def test_stripped_integrity_fields_detected_as_gap(self, checksummed):
        # A record whose crc/chain fields were erased parses fine, but
        # the next checksummed record's chain exposes the tampering.
        document = json.loads(checksummed)
        document["events"][4].pop("crc")
        document["events"][4].pop("chain")
        stripped = json.dumps(document)
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(stripped, stats)
            assert len(events) == 10  # nothing is dropped...
            assert stats.verified == 9  # ...but only 9 records verified

    def test_strict_mode_raises_integrity_error(self, checksummed):
        flipped = checksummed.replace('"time": 3.0', '"time": 7.0', 1)
        with pytest.raises(NetLogIntegrityError):
            loads(flipped, strict=True)
        with pytest.raises(NetLogIntegrityError):
            _streaming(flipped, strict=True)
        document = json.loads(checksummed)
        del document["events"][3]
        with pytest.raises(NetLogIntegrityError):
            loads(json.dumps(document), strict=True)

    def test_undamaged_checksummed_document_is_pristine(self, checksummed):
        for parse in (lambda t, s: loads(t, strict=False, stats=s), _streaming):
            stats = ParseStats()
            events = parse(checksummed, stats)
            assert len(events) == 10
            assert stats.verified == 10
            assert not stats.damaged
            assert stats.first_divergence is None
