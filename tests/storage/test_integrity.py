"""Data-integrity subsystem: digests, fsck detection, tiered repair."""

import json

import pytest

from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.netlog import NetLogArchive
from repro.storage import TelemetryStore
from repro.storage.integrity import (
    FsckKind,
    campaign_digest,
    fsck,
    population_revisiter,
    visit_digest,
)
from repro.web.population import build_top_population

SCALE = 0.004


@pytest.fixture(scope="module")
def population():
    return build_top_population(2020, scale=SCALE)


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory, population):
    """One archived fault-free campaign, shared read-only as a baseline."""
    root = tmp_path_factory.mktemp("clean")
    store = TelemetryStore(str(root / "telemetry.db"))
    archive = NetLogArchive(root / "netlogs")
    campaign = Campaign(store=store, netlog_archive=archive)
    result = campaign.run(population)
    store.commit()
    return store, archive, result


@pytest.fixture
def damaged_run(tmp_path, population):
    """A fresh archived campaign the test may corrupt at will."""
    store = TelemetryStore(str(tmp_path / "telemetry.db"))
    archive = NetLogArchive(tmp_path / "netlogs")
    campaign = Campaign(store=store, netlog_archive=archive)
    result = campaign.run(population)
    store.commit()
    return store, archive, result


def _first_active_visit(store, crawl):
    return store.connection.execute(
        "SELECT visit_id, domain, os_name FROM visits "
        "WHERE crawl = ? AND request_count > 0 ORDER BY visit_id LIMIT 1",
        (crawl,),
    ).fetchone()


class TestVisitDigest:
    def test_deterministic(self):
        kwargs = dict(
            crawl="c", domain="d.com", os_name="windows", success=1,
            error=0, rank=3, category=None, skipped=0,
            page_load_time=100.0, total_flows=2,
            requests=[("localhost", "http", "h", 80, "/", 1.0, 0, "GET", None)],
        )
        assert visit_digest(**kwargs) == visit_digest(**kwargs)

    def test_sensitive_to_every_row_field(self):
        base = dict(
            crawl="c", domain="d.com", os_name="windows", success=1,
            error=0, rank=3, category=None, skipped=0,
            page_load_time=100.0, total_flows=2, requests=[],
        )
        reference = visit_digest(**base)
        for key, value in [
            ("success", 0), ("error", -105), ("rank", 4),
            ("category", "malware"), ("skipped", 1),
            ("page_load_time", 99.0), ("total_flows", 3),
        ]:
            assert visit_digest(**{**base, key: value}) != reference

    def test_request_order_insensitive(self):
        r1 = ("localhost", "http", "a", 80, "/", 1.0, 0, "GET", None)
        r2 = ("localhost", "ws", "b", 81, "/", 2.0, 0, "GET", None)
        base = dict(
            crawl="c", domain="d.com", os_name="windows", success=1,
            error=0, rank=3, category=None, skipped=0,
            page_load_time=100.0, total_flows=2,
        )
        assert visit_digest(**base, requests=[r1, r2]) == visit_digest(
            **base, requests=[r2, r1]
        )

    def test_store_writes_matching_digest(self, clean_run):
        store, _, _ = clean_run
        row = store.connection.execute(
            "SELECT crawl, domain, os_name, success, error, rank, category, "
            "skipped, page_load_time, total_flows, digest, visit_id "
            "FROM visits WHERE request_count > 0 LIMIT 1"
        ).fetchone()
        requests = store.connection.execute(
            "SELECT locality, scheme, host, port, path, time, via_redirect, "
            "method, initiator FROM local_requests WHERE visit_id = ?",
            (row[11],),
        ).fetchall()
        assert row[10] == visit_digest(
            crawl=row[0], domain=row[1], os_name=row[2], success=row[3],
            error=row[4], rank=row[5], category=row[6], skipped=row[7],
            page_load_time=row[8], total_flows=row[9], requests=requests,
        )


class TestFsckDetection:
    def test_clean_run_is_clean(self, clean_run):
        store, archive, _ = clean_run
        report = fsck(store, archive)
        assert report.clean and report.ok
        assert report.scanned_visits > 0
        assert report.scanned_archives > 0

    def test_detects_digest_mismatch(self, damaged_run, population):
        store, archive, _ = damaged_run
        _, domain, os_name = _first_active_visit(store, population.name)
        store.connection.execute(
            "UPDATE visits SET rank = rank + 1 WHERE domain = ? AND os_name = ?",
            (domain, os_name),
        )
        store.commit()
        report = fsck(store, archive)
        findings = report.findings_of(FsckKind.DIGEST_MISMATCH)
        assert [(f.domain, f.os_name) for f in findings] == [(domain, os_name)]
        assert not report.ok

    def test_detects_half_committed_batch(self, damaged_run, population):
        store, archive, _ = damaged_run
        visit_id, domain, _ = _first_active_visit(store, population.name)
        store.connection.execute(
            "DELETE FROM local_requests WHERE rowid = (SELECT rowid FROM "
            "local_requests WHERE visit_id = ? LIMIT 1)",
            (visit_id,),
        )
        store.commit()
        report = fsck(store, archive)
        assert [f.domain for f in report.findings_of(FsckKind.HALF_COMMITTED)] == [
            domain
        ]

    def test_detects_orphaned_rows(self, damaged_run, population):
        store, archive, _ = damaged_run
        visit_id, _, _ = _first_active_visit(store, population.name)
        store.connection.execute(
            "DELETE FROM visits WHERE visit_id = ?", (visit_id,)
        )
        store.commit()
        report = fsck(store, archive)
        kinds = {f.kind for f in report.findings}
        assert FsckKind.ORPHANED_ROWS in kinds
        # The archived document for the deleted row is now parentless too.
        assert FsckKind.ORPHANED_ARCHIVE in kinds

    def test_detects_archive_damage_and_missing(self, damaged_run, population):
        store, archive, _ = damaged_run
        docs = list(archive.entries(population.name))
        # Bit-rot one document in place, remove another entirely.
        text = docs[0].read_text()
        position = len(text) // 2
        for index in range(position, len(text)):
            if text[index].isdigit():
                flipped = str((int(text[index]) + 1) % 10)
                docs[0].write_text(text[:index] + flipped + text[index + 1 :])
                break
        docs[1].unlink()
        report = fsck(store, archive)
        assert [f.domain for f in report.findings_of(FsckKind.ARCHIVE_DAMAGE)] == [
            docs[0].stem
        ]
        assert [f.domain for f in report.findings_of(FsckKind.MISSING_ARCHIVE)] == [
            docs[1].stem
        ]

    def test_report_json_is_machine_readable(self, damaged_run, population):
        store, archive, _ = damaged_run
        _, domain, os_name = _first_active_visit(store, population.name)
        store.connection.execute(
            "UPDATE visits SET error = error - 1 WHERE domain = ? AND os_name = ?",
            (domain, os_name),
        )
        store.commit()
        document = json.loads(json.dumps(fsck(store, archive).to_json()))
        assert document["version"] == 1
        assert document["clean"] is False and document["ok"] is False
        assert document["campaign_digests"][population.name]
        kinds = {finding["kind"] for finding in document["findings"]}
        assert "digest-mismatch" in kinds


class TestTieredRepair:
    def test_reparse_tier_restores_content(self, damaged_run, clean_run, population):
        store, archive, _ = damaged_run
        clean_store, _, _ = clean_run
        _, domain, os_name = _first_active_visit(store, population.name)
        store.connection.execute(
            "UPDATE visits SET page_load_time = page_load_time + 5 "
            "WHERE domain = ? AND os_name = ?",
            (domain, os_name),
        )
        store.commit()
        report = fsck(store, archive, repair=True)
        assert report.ok
        assert [f.repair_tier for f in report.findings] == ["reparse"]
        assert fsck(store, archive).clean
        assert campaign_digest(store, population.name) == campaign_digest(
            clean_store, population.name
        )

    def test_revisit_tier_restores_content(self, damaged_run, clean_run, population):
        store, archive, _ = damaged_run
        clean_store, _, _ = clean_run
        _, domain, os_name = _first_active_visit(store, population.name)
        # Damage the row AND its archive document: re-parse is impossible.
        store.connection.execute(
            "UPDATE visits SET total_flows = total_flows + 1 "
            "WHERE domain = ? AND os_name = ?",
            (domain, os_name),
        )
        store.commit()
        path = archive.path_for(population.name, os_name, domain)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        revisit = population_revisiter(population, store, archive)
        report = fsck(store, archive, repair=True, revisit=revisit)
        assert report.ok
        assert "revisit" in {f.repair_tier for f in report.findings}
        assert fsck(store, archive).clean
        assert campaign_digest(store, population.name) == campaign_digest(
            clean_store, population.name
        )

    def test_quarantine_tier_dead_letters(self, damaged_run, population):
        store, archive, _ = damaged_run
        _, domain, os_name = _first_active_visit(store, population.name)
        store.connection.execute(
            "UPDATE visits SET success = 1 - success "
            "WHERE domain = ? AND os_name = ?",
            (domain, os_name),
        )
        store.commit()
        archive.path_for(population.name, os_name, domain).unlink()
        # No archive copy, no revisiter: the damaged row must be parked.
        report = fsck(store, archive, repair=True)
        assert report.ok
        assert {f.repair_tier for f in report.findings} == {"quarantine"}
        letters = store.dead_letters(population.name)
        assert (domain, os_name) in {(l.domain, l.os_name) for l in letters}
        assert fsck(store, archive).clean

    def test_orphan_cleanup(self, damaged_run, population):
        store, archive, _ = damaged_run
        visit_id, domain, os_name = _first_active_visit(store, population.name)
        store.connection.execute(
            "DELETE FROM visits WHERE visit_id = ?", (visit_id,)
        )
        store.commit()
        revisit = population_revisiter(population, store, archive)
        report = fsck(store, archive, repair=True, revisit=revisit)
        assert report.ok
        tiers = {f.kind: f.repair_tier for f in report.findings}
        assert tiers[FsckKind.ORPHANED_ROWS] == "cleanup"
        assert fsck(store, archive).clean


class TestRevisitEquivalence:
    def test_revisited_rows_match_fault_free_fingerprints(
        self, damaged_run, clean_run, population
    ):
        store, archive, result = damaged_run
        _, clean_archive, clean_result = clean_run
        # Re-visit every domain that had local activity and compare the
        # resulting campaign digest with the untouched baseline.
        revisit = population_revisiter(population, store, archive)
        for finding in result.findings[:5]:
            for os_name in finding.per_os:
                store.delete_visit(population.name, finding.domain, os_name)
                assert revisit(population.name, os_name, finding.domain)
        store.commit()
        assert fsck(store, archive).clean
        clean_store, _, _ = clean_run
        assert campaign_digest(store, population.name) == campaign_digest(
            clean_store, population.name
        )
        assert [finding_fingerprint(f) for f in result.findings] == [
            finding_fingerprint(f) for f in clean_result.findings
        ]


class TestStoreSatellites:
    def test_store_creates_missing_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "telemetry.db"
        with TelemetryStore(str(path)) as store:
            store.record_visit("c", "d.com", "windows", success=True)
            store.commit()
        assert path.exists()

    def test_delete_visit_removes_children(self, clean_run, tmp_path, population):
        store = TelemetryStore(str(tmp_path / "t.db"))
        clean_store, _, _ = clean_run
        # Copy one active visit into a scratch store, then delete it.
        visit_id, domain, os_name = _first_active_visit(
            clean_store, population.name
        )
        store.record_visit("c", "d.com", "windows", success=True)
        assert store.delete_visit("c", "d.com", "windows") == 1
        assert store.visit_count() == 0
        assert store.delete_visit("c", "d.com", "windows") == 0
