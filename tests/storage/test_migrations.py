"""Crash-safe schema migrations: versioning, atomicity, resume, backfill.

The PR-2-era schema (no ``digest``/``request_count`` columns, no
``user_version``) is frozen here verbatim so the migration path from real
old databases stays covered no matter how the live schema evolves.
"""

import sqlite3

import pytest

from repro.storage.db import TelemetryStore
from repro.storage.integrity import visit_digest
from repro.storage.migrations import (
    SCHEMA_VERSION,
    migrate,
    schema_version,
)

#: The schema exactly as PR 2 created it (seed tables + PR-1/2 columns),
#: with no user_version stamp — the shape fsck-less deployments still have.
PR2_SCHEMA = """
CREATE TABLE visits (
    visit_id INTEGER PRIMARY KEY AUTOINCREMENT,
    crawl TEXT NOT NULL,
    domain TEXT NOT NULL,
    os_name TEXT NOT NULL,
    success INTEGER NOT NULL,
    error INTEGER NOT NULL DEFAULT 0,
    rank INTEGER,
    category TEXT,
    skipped INTEGER NOT NULL DEFAULT 0,
    attempts INTEGER NOT NULL DEFAULT 1,
    page_load_time REAL,
    total_flows INTEGER,
    UNIQUE (crawl, domain, os_name)
);
CREATE TABLE events (
    visit_id INTEGER NOT NULL REFERENCES visits(visit_id),
    time REAL NOT NULL,
    type INTEGER NOT NULL,
    source_id INTEGER NOT NULL,
    source_type INTEGER NOT NULL,
    phase INTEGER NOT NULL,
    params_json TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE local_requests (
    visit_id INTEGER NOT NULL REFERENCES visits(visit_id),
    locality TEXT NOT NULL,
    scheme TEXT NOT NULL,
    host TEXT NOT NULL,
    port INTEGER NOT NULL,
    path TEXT NOT NULL,
    time REAL,
    via_redirect INTEGER NOT NULL DEFAULT 0,
    source_id INTEGER NOT NULL DEFAULT 0,
    method TEXT NOT NULL DEFAULT 'GET',
    initiator TEXT
);
CREATE TABLE dead_letters (
    crawl TEXT NOT NULL,
    domain TEXT NOT NULL,
    os_name TEXT NOT NULL,
    error INTEGER NOT NULL DEFAULT 0,
    failures INTEGER NOT NULL DEFAULT 0,
    reason TEXT NOT NULL DEFAULT '',
    UNIQUE (crawl, domain, os_name)
);
"""


def _pr2_database(path):
    """A populated PR-2-era database file."""
    conn = sqlite3.connect(path)
    conn.executescript(PR2_SCHEMA)
    conn.execute(
        "INSERT INTO visits (crawl, domain, os_name, success, error, rank, "
        "category, skipped, attempts, page_load_time, total_flows) "
        "VALUES ('top2020', 'a.com', 'windows', 1, 0, 5, NULL, 0, 1, 120.5, 3)"
    )
    conn.execute(
        "INSERT INTO local_requests (visit_id, locality, scheme, host, port, "
        "path, time, via_redirect, source_id, method, initiator) "
        "VALUES (1, 'localhost', 'http', '127.0.0.1', 8000, '/x', 50.0, 0, "
        "7, 'GET', NULL)"
    )
    conn.execute(
        "INSERT INTO visits (crawl, domain, os_name, success, error) "
        "VALUES ('top2020', 'b.com', 'windows', 0, -105)"
    )
    conn.commit()
    conn.close()


class TestMigrate:
    def test_fresh_database_reaches_current_version(self):
        conn = sqlite3.connect(":memory:")
        report = migrate(conn)
        assert schema_version(conn) == SCHEMA_VERSION
        assert report.applied == [1, 2, 3, 4]
        assert report.changed

    def test_is_idempotent(self):
        conn = sqlite3.connect(":memory:")
        migrate(conn)
        report = migrate(conn)
        assert report.applied == []
        assert not report.changed

    def test_pr2_database_migrates_with_backfill(self, tmp_path):
        path = str(tmp_path / "old.db")
        _pr2_database(path)
        conn = sqlite3.connect(path)
        assert schema_version(conn) == 0
        migrate(conn)
        assert schema_version(conn) == SCHEMA_VERSION
        digest, count = conn.execute(
            "SELECT digest, request_count FROM visits WHERE domain = 'a.com'"
        ).fetchone()
        assert count == 1
        assert digest == visit_digest(
            crawl="top2020",
            domain="a.com",
            os_name="windows",
            success=1,
            error=0,
            rank=5,
            category=None,
            skipped=0,
            page_load_time=120.5,
            total_flows=3,
            requests=[
                ("localhost", "http", "127.0.0.1", 8000, "/x", 50.0, 0,
                 "GET", None)
            ],
        )
        # The failure row gets a digest too (over its empty request set).
        digest_b = conn.execute(
            "SELECT digest FROM visits WHERE domain = 'b.com'"
        ).fetchone()[0]
        assert digest_b is not None and digest_b != digest

    def test_pr2_database_opens_through_store(self, tmp_path):
        path = str(tmp_path / "old.db")
        _pr2_database(path)
        with TelemetryStore(path) as store:
            assert schema_version(store.connection) == SCHEMA_VERSION
            assert store.visit_count("top2020") == 2

    def test_no_data_loss_across_migration(self, tmp_path):
        path = str(tmp_path / "old.db")
        _pr2_database(path)
        conn = sqlite3.connect(path)
        before = conn.execute(
            "SELECT crawl, domain, os_name, success, error FROM visits "
            "ORDER BY visit_id"
        ).fetchall()
        migrate(conn)
        after = conn.execute(
            "SELECT crawl, domain, os_name, success, error FROM visits "
            "ORDER BY visit_id"
        ).fetchall()
        assert after == before


class TestCrashSafety:
    """A crash at any injected point leaves the database either fully
    pre-step or fully post-step; rerunning completes the migration."""

    @pytest.mark.parametrize(
        "crash_at",
        ["migration:v1:commit", "migration:v2:commit", "migration:v3:commit"],
    )
    def test_crash_mid_step_rolls_back_and_resumes(self, tmp_path, crash_at):
        path = str(tmp_path / "old.db")
        _pr2_database(path)
        conn = sqlite3.connect(path)

        def crash_hook(key):
            if key == crash_at:
                raise RuntimeError(f"injected crash at {key}")

        with pytest.raises(RuntimeError, match="injected crash"):
            migrate(conn, fault_hook=crash_hook)
        crashed_version = schema_version(conn)
        # The step that crashed must not have landed partially: its
        # version was never stamped, and its columns are absent.
        assert crashed_version < int(crash_at.split(":")[1][1:])
        conn.close()

        # Simulated restart: a fresh connection resumes and completes.
        conn = sqlite3.connect(path)
        report = migrate(conn)
        assert schema_version(conn) == SCHEMA_VERSION
        assert report.applied  # the crashed step (and any after) reran
        rows = conn.execute("SELECT COUNT(*) FROM visits").fetchone()[0]
        assert rows == 2  # no data loss
        digests = conn.execute(
            "SELECT COUNT(*) FROM visits WHERE digest IS NOT NULL"
        ).fetchone()[0]
        assert digests == 2

    def test_v2_crash_leaves_no_partial_columns(self, tmp_path):
        path = str(tmp_path / "old.db")
        _pr2_database(path)
        conn = sqlite3.connect(path)

        def crash_hook(key):
            if key == "migration:v2:commit":
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            migrate(conn, fault_hook=crash_hook)
        columns = {
            row[1] for row in conn.execute("PRAGMA table_info(visits)")
        }
        assert "digest" not in columns and "request_count" not in columns
        assert schema_version(conn) == 1

    def test_v3_crash_leaves_no_jobs_table(self, tmp_path):
        path = str(tmp_path / "old.db")
        _pr2_database(path)
        conn = sqlite3.connect(path)

        def crash_hook(key):
            if key == "migration:v3:commit":
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            migrate(conn, fault_hook=crash_hook)
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert "jobs" not in tables
        assert schema_version(conn) == 2


class TestJobsTable:
    def test_v3_creates_jobs_table_with_state_index(self):
        conn = sqlite3.connect(":memory:")
        migrate(conn)
        columns = {row[1] for row in conn.execute("PRAGMA table_info(jobs)")}
        assert columns == {
            "job_id", "digest", "state", "size_bytes", "attempts",
            "submitted_at", "started_at", "finished_at", "error", "report",
        }
        indexes = {
            row[1] for row in conn.execute("PRAGMA index_list(jobs)")
        }
        assert "idx_jobs_state" in indexes
        assert "idx_jobs_digest" in indexes
