"""Tests for the SQLite telemetry store."""

from repro.core.detector import LocalTrafficDetector
from repro.storage.db import TelemetryStore


def _detection(events_builder, urls):
    for index, url in enumerate(urls):
        events_builder.request(url, time=float(index))
    return LocalTrafficDetector().detect(events_builder.events)


class TestVisits:
    def test_record_and_count(self, events):
        with TelemetryStore() as store:
            store.record_visit("top2020", "a.example", "windows", success=True)
            store.record_visit("top2020", "a.example", "linux", success=True)
            store.record_visit("malicious", "b.example", "windows", success=False,
                               error=-105)
            assert store.visit_count() == 3
            assert store.visit_count("top2020") == 2

    def test_replace_on_duplicate_key(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "windows", success=False, error=-7)
            store.record_visit("c", "a.example", "windows", success=True)
            assert store.visit_count() == 1
            (visit,) = store.visits("c")
            assert visit.success

    def test_success_counts(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "windows", success=True)
            store.record_visit("c", "b.example", "windows", success=False, error=-105)
            store.record_visit("c", "a.example", "linux", success=True)
            counts = store.success_counts("c")
            assert counts["windows"] == (1, 1)
            assert counts["linux"] == (1, 0)

    def test_visit_metadata_roundtrip(self):
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "mac", success=True, rank=42, category="malware"
            )
            (visit,) = store.visits("c", os_name="mac")
            assert visit.rank == 42
            assert visit.category == "malware"


class TestLocalRequests:
    def test_detection_rows_stored(self, events):
        detection = _detection(
            events, ["http://localhost:8000/x", "http://10.0.0.1/y.png"]
        )
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "windows", success=True, detection=detection
            )
            localhost = store.domains_with_local_activity("c", "localhost")
            lan = store.domains_with_local_activity("c", "lan")
            assert localhost == ["a.example"]
            assert lan == ["a.example"]

    def test_requests_roundtrip(self, events):
        detection = _detection(events, ["wss://localhost:5939/"])
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "windows", success=True, detection=detection
            )
            rows = store.local_requests_for("c", "a.example")
            assert len(rows) == 1
            assert rows[0].scheme == "wss"
            assert rows[0].port == 5939
            assert rows[0].os_name == "windows"
            assert not rows[0].via_redirect

    def test_os_filter(self, events):
        detection = _detection(events, ["http://localhost:1/"])
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "windows", success=True, detection=detection
            )
            store.record_visit("c", "a.example", "linux", success=True)
            assert store.domains_with_local_activity(
                "c", "localhost", os_name="windows"
            ) == ["a.example"]
            assert (
                store.domains_with_local_activity("c", "localhost", os_name="linux")
                == []
            )


class TestEvents:
    def test_raw_events_stored_on_request(self, events):
        events.request("http://localhost:9/")
        with TelemetryStore() as store:
            visit_id = store.record_visit(
                "c", "a.example", "mac", success=True, events=events.events
            )
            assert store.event_count(visit_id) == len(events.events)
            assert store.event_count() == len(events.events)

    def test_events_not_stored_by_default(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "mac", success=True)
            assert store.event_count() == 0


class TestEndToEndStorage:
    def test_campaign_findings_storable(self, top2020_result):
        with TelemetryStore() as store:
            for finding in top2020_result.findings[:20]:
                for os_name, detection in finding.per_os.items():
                    store.record_visit(
                        "top2020",
                        finding.domain,
                        os_name,
                        success=True,
                        rank=finding.rank,
                        detection=detection,
                    )
            domains = store.domains_with_local_activity("top2020", "localhost")
            expected = {
                f.domain
                for f in top2020_result.findings[:20]
                if f.has_localhost_activity
            }
            assert set(domains) == expected
