"""Tests for the SQLite telemetry store."""

from repro.core.detector import LocalTrafficDetector
from repro.storage.db import TelemetryStore


def _detection(events_builder, urls):
    for index, url in enumerate(urls):
        events_builder.request(url, time=float(index))
    return LocalTrafficDetector().detect(events_builder.events)


class TestVisits:
    def test_record_and_count(self, events):
        with TelemetryStore() as store:
            store.record_visit("top2020", "a.example", "windows", success=True)
            store.record_visit("top2020", "a.example", "linux", success=True)
            store.record_visit("malicious", "b.example", "windows", success=False,
                               error=-105)
            assert store.visit_count() == 3
            assert store.visit_count("top2020") == 2

    def test_replace_on_duplicate_key(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "windows", success=False, error=-7)
            store.record_visit("c", "a.example", "windows", success=True)
            assert store.visit_count() == 1
            (visit,) = store.visits("c")
            assert visit.success

    def test_success_counts(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "windows", success=True)
            store.record_visit("c", "b.example", "windows", success=False, error=-105)
            store.record_visit("c", "a.example", "linux", success=True)
            counts = store.success_counts("c")
            assert counts["windows"] == (1, 1)
            assert counts["linux"] == (1, 0)

    def test_visit_metadata_roundtrip(self):
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "mac", success=True, rank=42, category="malware"
            )
            (visit,) = store.visits("c", os_name="mac")
            assert visit.rank == 42
            assert visit.category == "malware"


class TestLocalRequests:
    def test_detection_rows_stored(self, events):
        detection = _detection(
            events, ["http://localhost:8000/x", "http://10.0.0.1/y.png"]
        )
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "windows", success=True, detection=detection
            )
            localhost = store.domains_with_local_activity("c", "localhost")
            lan = store.domains_with_local_activity("c", "lan")
            assert localhost == ["a.example"]
            assert lan == ["a.example"]

    def test_requests_roundtrip(self, events):
        detection = _detection(events, ["wss://localhost:5939/"])
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "windows", success=True, detection=detection
            )
            rows = store.local_requests_for("c", "a.example")
            assert len(rows) == 1
            assert rows[0].scheme == "wss"
            assert rows[0].port == 5939
            assert rows[0].os_name == "windows"
            assert not rows[0].via_redirect

    def test_os_filter(self, events):
        detection = _detection(events, ["http://localhost:1/"])
        with TelemetryStore() as store:
            store.record_visit(
                "c", "a.example", "windows", success=True, detection=detection
            )
            store.record_visit("c", "a.example", "linux", success=True)
            assert store.domains_with_local_activity(
                "c", "localhost", os_name="windows"
            ) == ["a.example"]
            assert (
                store.domains_with_local_activity("c", "localhost", os_name="linux")
                == []
            )


class TestEvents:
    def test_raw_events_stored_on_request(self, events):
        events.request("http://localhost:9/")
        with TelemetryStore() as store:
            visit_id = store.record_visit(
                "c", "a.example", "mac", success=True, events=events.events
            )
            assert store.event_count(visit_id) == len(events.events)
            assert store.event_count() == len(events.events)

    def test_events_not_stored_by_default(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "mac", success=True)
            assert store.event_count() == 0


class TestEndToEndStorage:
    def test_campaign_findings_storable(self, top2020_result):
        with TelemetryStore() as store:
            for finding in top2020_result.findings[:20]:
                for os_name, detection in finding.per_os.items():
                    store.record_visit(
                        "top2020",
                        finding.domain,
                        os_name,
                        success=True,
                        rank=finding.rank,
                        detection=detection,
                    )
            domains = store.domains_with_local_activity("top2020", "localhost")
            expected = {
                f.domain
                for f in top2020_result.findings[:20]
                if f.has_localhost_activity
            }
            assert set(domains) == expected


class TestDeadLetters:
    def test_record_and_list_ordering(self):
        with TelemetryStore() as store:
            store.record_dead_letter(
                "c", "b.example", "mac", error=-999, failures=3, reason="hang"
            )
            store.record_dead_letter(
                "c", "a.example", "linux", error=-999, failures=3, reason="hang"
            )
            letters = store.dead_letters("c")
            assert [(l.domain, l.os_name) for l in letters] == [
                ("a.example", "linux"),
                ("b.example", "mac"),
            ]
            assert all(l.error == -999 and l.failures == 3 for l in letters)

    def test_upsert_is_idempotent(self):
        with TelemetryStore() as store:
            for failures in (3, 5):
                store.record_dead_letter(
                    "c", "a.example", "mac", error=-999, failures=failures
                )
            (letter,) = store.dead_letters()
            assert letter.failures == 5  # last write wins, still one row

    def test_crawl_filter(self):
        with TelemetryStore() as store:
            store.record_dead_letter("c1", "a.example", "mac", error=-999, failures=3)
            store.record_dead_letter("c2", "b.example", "mac", error=-999, failures=3)
            assert [l.crawl for l in store.dead_letters("c1")] == ["c1"]
            assert len(store.dead_letters()) == 2

    def test_requeue_clears_letters_and_visit_rows(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "mac", success=False, error=-999)
            store.record_visit("c", "b.example", "mac", success=True)
            store.record_dead_letter("c", "a.example", "mac", error=-999, failures=3)
            assert store.requeue_dead_letters("c") == 1
            assert store.dead_letters() == []
            # The quarantined visit row is gone (resume will re-attempt
            # it); unrelated rows survive.
            assert [row.domain for row in store.visits("c")] == ["b.example"]

    def test_requeue_domain_filter(self):
        with TelemetryStore() as store:
            for domain in ("a.example", "b.example"):
                store.record_dead_letter("c", domain, "mac", error=-999, failures=3)
            assert store.requeue_dead_letters("c", domain="a.example") == 1
            assert [l.domain for l in store.dead_letters()] == ["b.example"]


class TestBatchedCommits:
    def _fill(self, store, count):
        for index in range(count):
            store.record_visit(
                "c", f"site-{index:03}.example", "mac", success=True
            )

    def test_crash_loses_at_most_one_batch(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, commit_every=10)
        self._fill(store, 27)
        # Simulate a crash: a second reader sees only committed batches —
        # 20 of the 27 rows (the open transaction's tail is invisible).
        with TelemetryStore(path) as reader:
            assert reader.visit_count("c") == 20
        # A graceful flush makes the tail durable.
        store.flush()
        with TelemetryStore(path) as reader:
            assert reader.visit_count("c") == 27
        store.close()

    def test_close_flushes_tail_batch(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        with TelemetryStore(path, commit_every=10) as store:
            self._fill(store, 7)
        with TelemetryStore(path) as reader:
            assert reader.visit_count("c") == 7

    def test_resume_from_crash_point_recovers(self, tmp_path):
        """The crash-point recovery loop: crash mid-batch, reopen, and
        the re-written rows land exactly once (UPSERT semantics)."""
        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, commit_every=10)
        self._fill(store, 27)
        del store  # crash: no close, no flush — rows 21..27 are lost
        import gc

        gc.collect()  # make the dropped connection release its lock now

        recovered = TelemetryStore(path, commit_every=10)
        assert recovered.visit_count("c") == 20
        # A resumed campaign re-records everything past the checkpoint.
        for index in range(20, 27):
            recovered.record_visit(
                "c", f"site-{index:03}.example", "mac", success=True
            )
        recovered.flush()
        assert recovered.visit_count("c") == 27
        rows = recovered.visits("c")
        assert len({row.domain for row in rows}) == 27  # no duplicates
        recovered.close()


class TestSerializedMode:
    def test_concurrent_writers(self):
        import threading

        store = TelemetryStore(serialized=True)
        errors = []

        def write(worker):
            try:
                for index in range(25):
                    store.record_visit(
                        "c",
                        f"w{worker}-site-{index:02}.example",
                        "mac",
                        success=True,
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.visit_count("c") == 100
        store.close()

    def test_file_store_uses_wal(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, serialized=True)
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_wal_param_forces_wal_without_serialized(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, wal=True)
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_wal_param_can_opt_out(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, serialized=True, wal=False)
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "memory"
        store.close()

    def test_busy_timeout_pragma_applied(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, busy_timeout_ms=1234)
        value = store._conn.execute("PRAGMA busy_timeout").fetchone()[0]
        assert value == 1234
        store.close()

    def test_unserialized_store_rejects_cross_thread_use(self):
        import threading

        store = TelemetryStore()
        outcome = {}

        def write():
            try:
                store.record_visit("c", "a.example", "mac", success=True)
                outcome["error"] = None
            except Exception as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=write)
        thread.start()
        thread.join()
        assert outcome["error"] is not None  # sqlite guards the misuse
        store.close()


class TestCrossProcessLocking:
    """App-level retry on ``database is locked`` (sharded writers)."""

    def test_write_retries_until_competing_lock_clears(self, tmp_path):
        import sqlite3
        import threading

        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, wal=True, busy_timeout_ms=1)
        # A competing connection holds the write lock, as a sibling shard
        # process (or a mid-merge coordinator) would.
        blocker = sqlite3.connect(path, check_same_thread=False)
        blocker.execute("BEGIN IMMEDIATE")
        release = threading.Timer(0.15, blocker.commit)
        release.start()
        try:
            # busy_timeout is 1ms, so sqlite itself gives up instantly;
            # only the bounded retry loop can carry this write across the
            # lock window.
            store.record_visit("c", "a.example", "mac", success=True)
            store.commit()
            assert store.visit_count("c") == 1
        finally:
            release.cancel()
            blocker.close()
            store.close()

    def test_retry_budget_is_bounded(self, tmp_path):
        import sqlite3

        import pytest

        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, wal=True, busy_timeout_ms=1)
        blocker = sqlite3.connect(path)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            # The lock never clears: the retry loop must give up and
            # surface the real error, not spin forever.
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                store.record_visit("c", "a.example", "mac", success=True)
                store.commit()
        finally:
            blocker.rollback()
            blocker.close()
            store.close()


class TestCloseLifecycle:
    def test_close_is_idempotent(self):
        store = TelemetryStore()
        assert not store.closed
        store.close()
        assert store.closed
        # A second close is a no-op, not a double-close crash.
        store.close()
        assert store.closed

    def test_context_manager_closes_exactly_once(self):
        with TelemetryStore() as store:
            store.record_visit("c", "a.example", "windows", success=True)
            assert not store.closed
        assert store.closed
        store.close()  # explicit close after the context is still safe
        assert store.closed

    def test_close_flushes_batched_writes(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        store = TelemetryStore(path, commit_every=1000)
        store.record_visit("c", "a.example", "windows", success=True)
        store.close()
        with TelemetryStore(path) as reopened:
            assert reopened.visit_count("c") == 1
