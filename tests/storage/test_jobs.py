"""Tests for the serve job journal: state machine, recovery queries."""

import pytest

from repro.faults import InjectedDiskFullError
from repro.storage.db import TelemetryStore
from repro.storage.jobs import (
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    JobJournal,
    JournalStateError,
)


@pytest.fixture
def store():
    with TelemetryStore() as store:
        yield store


@pytest.fixture
def journal(store):
    return JobJournal(store)


class TestSubmission:
    def test_submit_creates_queued_row(self, journal):
        assert journal.submit("j1", "sha256:aa", 128, now=10.0)
        row = journal.get("j1")
        assert row.state == QUEUED
        assert row.digest == "sha256:aa"
        assert row.size_bytes == 128
        assert row.attempts == 0
        assert row.submitted_at == 10.0

    def test_submit_is_idempotent(self, journal):
        assert journal.submit("j1", "sha256:aa", 128, now=10.0)
        assert not journal.submit("j1", "sha256:aa", 128, now=11.0)
        assert journal.get("j1").submitted_at == 10.0

    def test_get_unknown_job(self, journal):
        assert journal.get("nope") is None


class TestStateMachine:
    def test_happy_path(self, journal):
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        journal.mark_running("j1", now=2.0)
        row = journal.get("j1")
        assert row.state == RUNNING
        assert row.attempts == 1
        assert row.started_at == 2.0
        journal.mark_done("j1", '{"report":1}\n', now=3.0)
        row = journal.get("j1")
        assert row.state == DONE
        assert row.report == '{"report":1}\n'
        assert row.finished_at == 3.0

    def test_failed_verdict(self, journal):
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        journal.mark_running("j1", now=2.0)
        journal.mark_failed("j1", "not a NetLog document", now=3.0)
        row = journal.get("j1")
        assert row.state == FAILED
        assert row.error == "not a NetLog document"

    def test_requeue_counts_attempts(self, journal):
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        journal.mark_running("j1", now=2.0)
        journal.requeue("j1", "worker crashed")
        row = journal.get("j1")
        assert row.state == QUEUED
        assert row.attempts == 1
        assert row.error == "worker crashed"
        journal.mark_running("j1", now=3.0)
        assert journal.get("j1").attempts == 2
        journal.mark_quarantined("j1", "poison", now=4.0)
        assert journal.get("j1").state == QUARANTINED

    @pytest.mark.parametrize(
        "illegal",
        [
            lambda j: j.mark_done("j1", "r", now=2.0),   # queued -> done
            lambda j: j.mark_failed("j1", "e", now=2.0),  # queued -> failed
            lambda j: j.requeue("j1", "r"),               # queued -> queued
        ],
    )
    def test_illegal_transitions_from_queued(self, journal, illegal):
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        with pytest.raises(JournalStateError):
            illegal(journal)

    def test_terminal_states_are_final(self, journal):
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        journal.mark_running("j1", now=2.0)
        journal.mark_done("j1", "r\n", now=3.0)
        with pytest.raises(JournalStateError):
            journal.mark_running("j1", now=4.0)
        with pytest.raises(JournalStateError):
            journal.requeue("j1", "no")

    def test_transition_on_missing_job(self, journal):
        with pytest.raises(JournalStateError, match="<missing>"):
            journal.mark_running("ghost", now=1.0)

    def test_resubmit_lost_resurrects_only_spool_loss(self, journal):
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        journal.mark_running("j1", now=2.0)
        journal.mark_failed("j1", "upload spool lost in crash", now=3.0)
        assert journal.resubmit_lost("j1", now=4.0)
        row = journal.get("j1")
        assert row.state == QUEUED
        assert (row.attempts, row.error, row.report) == (0, None, None)
        assert row.submitted_at == 4.0

    def test_resubmit_lost_keeps_true_verdicts_terminal(self, journal):
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        journal.mark_running("j1", now=2.0)
        journal.mark_failed("j1", "not a NetLog document", now=3.0)
        assert not journal.resubmit_lost("j1", now=4.0)
        assert journal.get("j1").state == FAILED
        assert not journal.resubmit_lost("ghost", now=4.0)


class TestRecoveryQueries:
    def _seed(self, journal):
        journal.submit("j-done", "sha256:aa", 1, now=1.0)
        journal.mark_running("j-done", now=1.5)
        journal.mark_done("j-done", "report-a\n", now=2.0)
        journal.submit("j-run", "sha256:bb", 1, now=3.0)
        journal.mark_running("j-run", now=3.5)
        journal.submit("j-wait", "sha256:cc", 1, now=4.0)

    def test_recoverable_orders_by_submission(self, journal):
        self._seed(journal)
        recovered = journal.recoverable()
        assert [row.job_id for row in recovered] == ["j-run", "j-wait"]
        assert [row.state for row in recovered] == [RUNNING, QUEUED]

    def test_completed_reports_warm_the_cache(self, journal):
        self._seed(journal)
        assert journal.completed_reports() == {"sha256:aa": "report-a\n"}

    def test_counts_cover_every_state(self, journal):
        self._seed(journal)
        counts = journal.counts()
        assert counts == {
            "queued": 1, "running": 1, "done": 1,
            "failed": 0, "quarantined": 0,
        }

    def test_jobs_filter_by_state(self, journal):
        self._seed(journal)
        assert [r.job_id for r in journal.jobs(QUEUED)] == ["j-wait"]
        assert len(journal.jobs()) == 3


class TestWriteFaultSeam:
    def test_hook_sees_transition_keys(self, store):
        keys = []
        journal = JobJournal(store, write_fault_hook=keys.append)
        journal.submit("j1", "sha256:aa", 1, now=1.0)
        journal.mark_running("j1", now=2.0)
        journal.mark_done("j1", "r\n", now=3.0)
        assert keys == ["job:j1:submit", "job:j1:running", "job:j1:done"]

    def test_hook_failure_propagates(self, store):
        def explode(key: str) -> None:
            raise InjectedDiskFullError(key)

        journal = JobJournal(store, write_fault_hook=explode)
        with pytest.raises(InjectedDiskFullError):
            journal.submit("j1", "sha256:aa", 1, now=1.0)
        # The row was never written: the fault fires before the statement.
        assert journal.get("j1") is None


class TestSurvivesReopen:
    def test_journal_state_survives_store_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        with TelemetryStore(path) as store:
            journal = JobJournal(store)
            journal.submit("j1", "sha256:aa", 9, now=1.0)
            journal.mark_running("j1", now=2.0)
        with TelemetryStore(path) as store:
            row = JobJournal(store).get("j1")
            assert row.state == RUNNING
            assert row.attempts == 1
