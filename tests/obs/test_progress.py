"""Progress-line tests: stderr discipline, throttling, thread safety."""

import io
import threading

from repro.obs.progress import ProgressLine, _format_eta


class TestFormatEta:
    def test_ranges(self):
        assert _format_eta(5.4) == "5s"
        assert _format_eta(65) == "1m05s"
        assert _format_eta(3700) == "1h01m"
        assert _format_eta(float("inf")) == "--"
        assert _format_eta(-1) == "--"


class TestProgressLine:
    def test_non_tty_stays_silent_until_finish(self):
        stream = io.StringIO()  # not a TTY: no live frames
        progress = ProgressLine(10, stream=stream)
        for _ in range(10):
            progress.update()
        assert stream.getvalue() == ""
        progress.finish()
        summary = stream.getvalue()
        assert summary.endswith("\n")
        assert "visits 10/10 (100.0%)" in summary
        assert "\r" not in summary

    def test_live_mode_rewrites_one_line(self):
        stream = io.StringIO()
        progress = ProgressLine(
            4, stream=stream, live=True, min_interval_s=0.0
        )
        progress.update()
        progress.update(error=True)
        assert stream.getvalue().count("\r") == 2
        progress.finish()
        final = stream.getvalue().splitlines()[-1]
        assert "visits 2/4 (50.0%)" in final
        assert "errors 50.0%" in final

    def test_error_rate_in_summary(self):
        stream = io.StringIO()
        progress = ProgressLine(8, stream=stream)
        for i in range(8):
            progress.update(error=i < 2)
        progress.finish()
        assert "errors 25.0%" in stream.getvalue()

    def test_zero_total_does_not_divide_by_zero(self):
        stream = io.StringIO()
        progress = ProgressLine(0, stream=stream)
        progress.finish()
        assert "visits 0/0 (100.0%)" in stream.getvalue()

    def test_thread_safe_updates(self):
        stream = io.StringIO()
        progress = ProgressLine(
            800, stream=stream, live=True, min_interval_s=0.0
        )
        threads = [
            threading.Thread(
                target=lambda: [progress.update() for _ in range(100)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        progress.finish()
        assert progress.done == 800
        assert "visits 800/800" in stream.getvalue().splitlines()[-1]
