"""Tracer tests: dual clocks, nesting, the bounded ring, Chrome export."""

import json
import threading

import pytest

from repro.obs.tracing import Tracer, to_chrome_trace


class FakeSimClock:
    def __init__(self):
        self.now_ms = 0.0

    def __call__(self) -> float:
        return self.now_ms


class TestSpans:
    def test_span_records_name_category_and_wall_duration(self):
        tracer = Tracer()
        with tracer.span("visit", category="crawl"):
            pass
        (span,) = tracer.spans()
        assert span.name == "visit"
        assert span.category == "crawl"
        assert span.dur_wall_s >= 0.0
        assert span.sim_start_ms is None

    def test_sim_clock_sampled_at_entry_and_exit(self):
        tracer = Tracer()
        clock = FakeSimClock()
        with tracer.span("visit", sim_now=clock):
            clock.now_ms = 1500.0
        (span,) = tracer.spans()
        assert span.sim_start_ms == 0.0
        assert span.sim_dur_ms == 1500.0

    def test_args_annotated_inside_body(self):
        tracer = Tracer()
        with tracer.span("visit", args={"domain": "a.example"}) as args:
            args["success"] = True
        (span,) = tracer.spans()
        assert span.args == {"domain": "a.example", "success": True}

    def test_nesting_depth_is_per_thread(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner finishes first
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0

    def test_depth_restored_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        with tracer.span("after"):
            pass
        failing, after = tracer.spans()
        assert failing.depth == 0
        assert after.depth == 0

    def test_threads_do_not_share_depth(self):
        tracer = Tracer()
        ready = threading.Event()

        def other():
            ready.wait(5.0)
            with tracer.span("other-thread"):
                pass

        thread = threading.Thread(target=other)
        thread.start()
        with tracer.span("main-outer"):
            ready.set()
            thread.join()
        spans = {s.name: s for s in tracer.spans()}
        assert spans["other-thread"].depth == 0


class TestRingBuffer:
    def test_ring_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestChromeExport:
    def test_export_shape_is_json_and_perfetto_loadable(self):
        tracer = Tracer()
        clock = FakeSimClock()
        with tracer.span("visit", category="crawl", sim_now=clock) as args:
            args["domain"] = "a.example"
            clock.now_ms = 250.0
        document = to_chrome_trace(tracer)
        # Must survive a JSON round trip (the CLI writes it verbatim).
        document = json.loads(json.dumps(document))
        assert document["displayTimeUnit"] == "ms"
        assert document["metadata"]["spans"] == 1
        meta, event = document["traceEvents"]
        assert meta["ph"] == "M" and meta["name"] == "thread_name"
        assert event["ph"] == "X"
        assert event["cat"] == "crawl"
        assert event["pid"] == 1 and event["tid"] == 1
        assert event["args"]["domain"] == "a.example"
        assert event["args"]["sim_dur_ms"] == 250.0
        assert event["dur"] >= 0.0

    def test_thread_ids_are_stable_and_small(self):
        tracer = Tracer()

        def in_thread():
            with tracer.span("worker-span"):
                pass

        with tracer.span("main-span"):
            pass
        thread = threading.Thread(target=in_thread, name="worker-7")
        thread.start()
        thread.join()
        document = to_chrome_trace(tracer)
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert sorted(e["tid"] for e in events) == [1, 2]
        names = {
            e["tid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        assert names[2] == "worker-7"
