"""Facade tests: the off-by-default switch and instrument binding."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class TestDisabledDefault:
    def test_instruments_are_noops_when_disabled(self):
        counter = obs.counter("test_noop_total", "help")
        hist = obs.histogram("test_noop_seconds", "help")
        assert not counter.enabled
        counter.inc()
        hist.observe(0.5)  # silently dropped, never raises
        assert obs.registry() is None
        assert not obs.enabled()

    def test_span_is_shared_null_object(self):
        assert obs.span("a") is obs.span("b") is obs.NULL_SPAN
        with obs.span("a") as args:
            args["ignored"] = True  # writable, discarded


class TestEnableDisable:
    def test_enable_binds_declared_instruments(self):
        counter = obs.counter("test_bind_total", "help", ("k",))
        registry = obs.enable()
        counter.inc(labels=("v",))
        assert counter.enabled
        assert registry.get("test_bind_total").value(("v",)) == 1

    def test_instruments_declared_after_enable_are_live(self):
        registry = obs.enable()
        counter = obs.counter("test_late_total", "help")
        counter.inc(2)
        assert registry.get("test_late_total").value() == 2

    def test_disable_unbinds_and_drops_state(self):
        counter = obs.counter("test_unbind_total", "help")
        obs.enable()
        counter.inc()
        obs.disable()
        assert not counter.enabled
        counter.inc()  # back to a no-op
        # A fresh enable starts from a fresh registry.
        registry = obs.enable()
        assert registry.get("test_unbind_total").value() == 0

    def test_enable_is_idempotent(self):
        first = obs.enable()
        second = obs.enable()
        assert first is second

    def test_explicit_registry_honoured(self):
        from repro.obs.metrics import MetricsRegistry

        mine = MetricsRegistry()
        assert obs.enable(mine) is mine
        assert obs.registry() is mine

    def test_tracer_lifecycle(self):
        assert obs.tracer() is None
        obs.enable(trace_capacity=8)
        tracer = obs.tracer()
        assert tracer is not None and tracer.capacity == 8
        with obs.span("live") as args:
            args["k"] = 1
        assert [s.name for s in tracer.spans()] == ["live"]
        obs.disable()
        assert obs.tracer() is None


class TestDeclarationDiscipline:
    def test_redeclaration_returns_same_proxy(self):
        a = obs.counter("test_dup_total", "help")
        b = obs.counter("test_dup_total", "help")
        assert a is b

    def test_kind_mismatch_rejected(self):
        obs.counter("test_kind_total", "help")
        with pytest.raises(ValueError, match="already declared"):
            obs.gauge("test_kind_total", "help")

    def test_label_mismatch_rejected(self):
        obs.counter("test_labels_total", "help", ("a",))
        with pytest.raises(ValueError, match="already declared"):
            obs.counter("test_labels_total", "help", ("b",))

    def test_pipeline_instruments_all_registered(self):
        # Importing the pipeline must have declared the headline
        # instruments — a rename here breaks dashboards downstream.
        import repro.crawler.campaign  # noqa: F401
        import repro.crawler.executor  # noqa: F401
        import repro.crawler.watchdog  # noqa: F401
        import repro.netlog.parser  # noqa: F401
        import repro.storage.db  # noqa: F401
        import repro.storage.integrity  # noqa: F401

        registry = obs.enable()
        names = {family.name for family in registry.collect()}
        assert {
            "repro_visits_total",
            "repro_executor_dispatched_total",
            "repro_executor_queue_depth",
            "repro_watchdog_cancellations_total",
            "repro_watchdog_cancel_latency_seconds",
            "repro_visit_retries_total",
            "repro_netlog_parse_seconds",
            "repro_store_commit_seconds",
            "repro_fsck_repairs_total",
        } <= names
