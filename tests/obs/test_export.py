"""Exporter tests: Prometheus text, JSON snapshots, the periodic sink."""

import json
import os

import pytest

from repro.obs.export import (
    SNAPSHOT_FORMAT,
    PeriodicSink,
    SnapshotError,
    load_snapshot,
    prometheus_text,
    render_snapshot,
    snapshot,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_visits_total", "visits", ("os",)).inc(
        5, ("linux",)
    )
    registry.gauge("repro_queue_depth", "queue").set(3)
    hist = registry.histogram(
        "repro_commit_seconds", "commit latency", (), buckets=(0.1, 1.0)
    )
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(7.0)
    return registry


class TestPrometheusText:
    def test_exposition_format(self, registry):
        text = prometheus_text(registry.collect())
        assert "# HELP repro_visits_total visits" in text
        assert "# TYPE repro_visits_total counter" in text
        assert 'repro_visits_total{os="linux"} 5' in text
        assert "repro_queue_depth 3" in text
        assert 'repro_commit_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_commit_seconds_bucket{le="1"} 2' in text
        assert 'repro_commit_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_commit_seconds_sum 7.55" in text
        assert "repro_commit_seconds_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("q",)).inc(
            labels=('a"b\\c\nd',)
        )
        text = prometheus_text(registry.collect())
        assert 'q="a\\"b\\\\c\\nd"' in text


class TestSnapshot:
    def test_snapshot_is_json_safe_and_self_describing(self, registry):
        document = snapshot(registry, meta={"scale": 0.01})
        document = json.loads(json.dumps(document))  # no Infinity leaks
        assert document["format"] == SNAPSHOT_FORMAT
        assert document["meta"] == {"scale": 0.01}
        by_name = {m["name"]: m for m in document["metrics"]}
        hist = by_name["repro_commit_seconds"]["samples"][0]
        assert hist["count"] == 3
        # The +Inf bound serialises as null.
        assert hist["buckets"][-1] == [None, 3]

    def test_write_metrics_format_by_extension(self, registry, tmp_path):
        json_path = str(tmp_path / "m.json")
        prom_path = str(tmp_path / "m.prom")
        write_metrics(json_path, registry)
        write_metrics(prom_path, registry)
        assert json.load(open(json_path))["format"] == SNAPSHOT_FORMAT
        assert "# TYPE" in open(prom_path).read()
        # Atomic writes leave no temp files behind.
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]

    def test_write_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = str(tmp_path / "trace.json")
        write_trace(path, tracer)
        assert json.load(open(path))["metadata"]["spans"] == 1

    def test_load_snapshot_round_trip(self, registry, tmp_path):
        path = str(tmp_path / "m.json")
        write_metrics(path, registry, meta={"workers": 4})
        document = load_snapshot(path)
        assert document["meta"]["workers"] == 4

    def test_load_snapshot_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotError, match="not a JSON"):
            load_snapshot(str(path))

    def test_load_snapshot_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(SnapshotError, match=SNAPSHOT_FORMAT):
            load_snapshot(str(path))


class TestRenderSnapshot:
    def test_table_contains_all_series(self, registry):
        text = render_snapshot(snapshot(registry, meta={"scale": 0.01}))
        assert "snapshot: scale=0.01" in text
        assert "repro_visits_total" in text
        assert "os=linux" in text
        assert "count=3" in text and "p50=" in text and "p99=" in text

    def test_empty_snapshot_renders(self):
        text = render_snapshot(snapshot(MetricsRegistry()))
        assert "no samples" in text


class TestPeriodicSink:
    def test_zero_interval_flushes_every_tick(self, registry, tmp_path):
        path = str(tmp_path / "m.json")
        sink = PeriodicSink(path, registry, interval_s=0.0)
        assert sink.tick() is True
        assert sink.tick() is True
        assert sink.flushes == 2
        assert os.path.exists(path)

    def test_long_interval_skips_until_due(self, registry, tmp_path):
        path = str(tmp_path / "m.json")
        sink = PeriodicSink(path, registry, interval_s=3600.0)
        assert sink.tick() is False
        assert not os.path.exists(path)
        sink.close()  # final flush always lands
        assert sink.flushes == 1
        assert os.path.exists(path)

    def test_negative_interval_rejected(self, registry, tmp_path):
        with pytest.raises(ValueError):
            PeriodicSink(str(tmp_path / "m.json"), registry, interval_s=-1)
