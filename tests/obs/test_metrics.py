"""Metrics registry tests: shards, label discipline, scrape-under-fire.

The concurrency tests pin the subsystem's core contract: N threads
hammering a Counter/Histogram while another thread scrapes must lose no
increments and never block or raise.
"""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help", ())
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("c_total", "", ("os",))
        counter.inc(labels=("linux",))
        counter.inc(3, labels=("windows",))
        assert counter.value(("linux",)) == 1
        assert counter.value(("windows",)) == 3
        assert counter.value(("mac",)) == 0

    def test_label_arity_checked_at_scrape(self):
        counter = Counter("c_total", "", ("os",))
        counter.inc(labels=("linux", "extra"))
        with pytest.raises(ValueError, match="label value"):
            counter.values()

    def test_dead_thread_shard_keeps_its_counts(self):
        counter = Counter("c_total", "", ())
        thread = threading.Thread(target=lambda: counter.inc(7))
        thread.start()
        thread.join()
        counter.inc(1)
        assert counter.value() == 8
        assert counter.shard_count == 2


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "", ())
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_labeled(self):
        gauge = Gauge("g", "", ("worker",))
        gauge.set(2, ("0",))
        gauge.set(3, ("1",))
        assert gauge.values() == {("0",): 2, ("1",): 3}

    def test_label_arity_checked_on_write(self):
        gauge = Gauge("g", "", ("worker",))
        with pytest.raises(ValueError):
            gauge.set(1)


class TestHistogram:
    def test_le_semantics_boundary_lands_in_its_bucket(self):
        # Prometheus `le`: a bucket counts observations <= its bound.
        hist = Histogram("h", "", (), buckets=(0.1, 0.5, 1.0))
        hist.observe(0.1)
        value = hist.value()
        assert value.buckets[0] == (0.1, 1)
        assert value.count == 1

    def test_overflow_goes_to_inf_bucket(self):
        hist = Histogram("h", "", (), buckets=(0.1,))
        hist.observe(99.0)
        value = hist.value()
        assert value.buckets == [(0.1, 0), (float("inf"), 1)]
        assert value.sum == 99.0

    def test_cumulative_buckets_and_sum(self):
        hist = Histogram("h", "", (), buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.7, 4.0, 100.0):
            hist.observe(v)
        value = hist.value()
        assert [c for _, c in value.buckets] == [1, 3, 4, 5]
        assert value.count == 5
        assert value.sum == pytest.approx(107.7)

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram("h", "", (), buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)
        value = hist.value()
        # All mass in (1.0, 2.0]: the median interpolates inside it.
        assert 1.0 < value.quantile(0.5) <= 2.0
        assert value.quantile(0.0) <= value.quantile(0.5) <= value.quantile(1.0)

    def test_empty_value_is_zeroed(self):
        hist = Histogram("h", "", ())
        value = hist.value()
        assert value.count == 0
        assert value.quantile(0.99) == 0.0

    def test_rejects_empty_and_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "", (), buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "", (), buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "help")
        b = registry.counter("c_total", "help")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m", "")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "", ("os",))
        with pytest.raises(ValueError, match="label names differ"):
            registry.counter("m", "", ("worker",))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", "", (), buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket"):
            registry.histogram("h", "", (), buckets=(1.0, 3.0))

    def test_collect_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("zzz_total", "").inc()
        registry.gauge("aaa", "").set(1)
        registry.histogram("mmm", "").observe(0.01)
        families = registry.collect()
        assert [f.name for f in families] == ["aaa", "mmm", "zzz_total"]
        assert families[0].kind == "gauge"
        assert families[2].samples[()] == 1.0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestConcurrency:
    """Satellite: scrapes never block or corrupt concurrent writers."""

    THREADS = 8
    INCREMENTS = 5_000

    def test_counter_totals_exact_under_concurrent_scrapes(self):
        counter = Counter("c_total", "", ("t",))
        stop_scraping = threading.Event()
        scrape_errors = []

        def scrape_loop():
            while not stop_scraping.is_set():
                try:
                    counter.values()  # must never raise mid-write
                except Exception as exc:  # pragma: no cover - the failure
                    scrape_errors.append(exc)
                    return

        def hammer(tid: int):
            label = (str(tid),)
            for _ in range(self.INCREMENTS):
                counter.inc(labels=label)

        scraper = threading.Thread(target=scrape_loop)
        scraper.start()
        workers = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop_scraping.set()
        scraper.join()

        assert not scrape_errors
        totals = counter.values()
        for t in range(self.THREADS):
            assert totals[(str(t),)] == self.INCREMENTS
        # One shard per writer thread: the hot path never contended.
        assert counter.shard_count == self.THREADS

    def test_histogram_counts_exact_under_concurrent_scrapes(self):
        hist = Histogram("h", "", (), buckets=(0.25, 0.5, 0.75))
        stop_scraping = threading.Event()

        def scrape_loop():
            while not stop_scraping.is_set():
                value = hist.value()
                # Monotonic invariants must hold in every mid-flight view.
                counts = [c for _, c in value.buckets]
                assert counts == sorted(counts)

        def hammer(tid: int):
            for i in range(self.INCREMENTS):
                hist.observe((i % 4) / 4.0)

        scraper = threading.Thread(target=scrape_loop)
        scraper.start()
        workers = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop_scraping.set()
        scraper.join()

        value = hist.value()
        assert value.count == self.THREADS * self.INCREMENTS
