"""Loopback end-to-end tests for the ``repro serve`` HTTP surface.

Every status code in the contract is exercised against a real listener,
and every 200 body is compared byte-for-byte with the batch analyzer —
the service is allowed to refuse work, never to answer it differently.
"""

import http.client
import json
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.serve.engine import EngineConfig, JobEngine
from repro.serve.http import ReproServer, ServerConfig
from repro.serve.report import analyze_report_text, job_id_for, upload_digest

pytestmark = pytest.mark.loopback


def _post(url, body, *, client_id="test-client", headers=None):
    request = urllib.request.Request(
        f"{url}/v1/analyze",
        data=body,
        method="POST",
        headers={"X-Client-Id": client_id, **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _get(url, path):
    try:
        with urllib.request.urlopen(f"{url}{path}", timeout=30.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _serve(injector=None, engine_config=None, server_config=None):
    engine = JobEngine(
        engine_config or EngineConfig(workers=2, backlog=4),
        injector=injector,
    )
    return ReproServer(
        engine, server_config or ServerConfig(), injector=injector
    )


@pytest.fixture
def server():
    with _serve() as server:
        yield server


class TestHealthSurface:
    def test_healthz(self, server):
        status, _, body = _get(server.url, "/healthz")
        assert (status, body) == (200, b"ok\n")

    def test_readyz_ready(self, server):
        status, _, body = _get(server.url, "/readyz")
        assert (status, body) == (200, b"ready\n")

    def test_readyz_draining(self, server):
        server.engine.drain(timeout_s=10.0)
        status, headers, body = _get(server.url, "/readyz")
        assert status == 503
        assert b"draining" in body
        assert headers.get("Retry-After") == "5"

    def test_metricsz_exposition(self, server):
        obs.enable()
        try:
            _get(server.url, "/healthz")
            status, headers, body = _get(server.url, "/metricsz")
            assert status == 200
            assert "text/plain" in headers["Content-Type"]
            assert b"repro_serve_http_requests_total" in body
        finally:
            obs.disable()

    def test_unknown_routes_404(self, server):
        assert _get(server.url, "/nope")[0] == 404
        assert _get(server.url, "/v1/jobs/jdeadbeef")[0] == 404


class TestAnalyze:
    def test_fresh_upload_returns_canonical_report(self, server, local_upload):
        status, _, body = _post(server.url, local_upload)
        assert status == 200
        assert body.decode() == analyze_report_text(local_upload)

    def test_repeat_upload_is_cache_hit_and_identical(
        self, server, local_upload
    ):
        _, _, first = _post(server.url, local_upload)
        status, headers, second = _post(server.url, local_upload)
        assert status == 200
        assert headers.get("X-Cache") == "hit"
        assert second == first

    def test_job_status_and_report_endpoints(self, server, local_upload):
        _post(server.url, local_upload)
        job_id = job_id_for(upload_digest(local_upload))
        status, _, body = _get(server.url, f"/v1/jobs/{job_id}")
        assert status == 200
        document = json.loads(body)
        assert document["state"] == "done"
        assert document["job"] == job_id
        status, _, body = _get(server.url, f"/v1/jobs/{job_id}/report")
        assert status == 200
        assert body.decode() == analyze_report_text(local_upload)

    def test_not_a_netlog_422(self, server):
        status, _, body = _post(server.url, b'{"hello": "world"}')
        assert status == 422
        assert b"NetLog" in body

    def test_missing_content_length_411(self, server):
        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            connection.putrequest(
                "POST", "/v1/analyze", skip_host=False
            )
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 411
        finally:
            connection.close()

    def test_oversized_upload_413(self, local_upload):
        config = ServerConfig(max_bytes=64)
        with _serve(server_config=config) as server:
            status, _, body = _post(server.url, local_upload)
            assert status == 413
            assert json.loads(body)["max_bytes"] == 64


class TestBackpressure:
    def test_overload_429_with_retry_after(self, corpus, local_upload):
        # One worker wedged by a hang fault on the first upload's digest,
        # a one-slot queue: the third distinct upload must bounce.
        injector = FaultInjector(
            plan=FaultPlan(
                seed="http-429",
                faults=(FaultSpec(kind=FaultKind.HANG, rate=1.0, times=1),),
            )
        )
        engine_config = EngineConfig(
            workers=1, backlog=1, job_deadline_s=1.0, breaker_threshold=100
        )
        server_config = ServerConfig(sync_wait_s=0.05)
        with _serve(injector, engine_config, server_config) as server:
            first, _, _ = _post(server.url, corpus[0][1])
            assert first == 202
            # With the only worker wedged and a one-slot queue, distinct
            # uploads must start bouncing with 429 almost immediately.
            overloaded = None
            for _, body, _ in (corpus[1], corpus[2], ("x", local_upload, "")):
                status, headers, response = _post(server.url, body)
                assert status in (202, 429)
                if status == 429:
                    overloaded = (headers, response)
                    break
            assert overloaded is not None, "queue never filled"
            headers, response = overloaded
            assert int(headers["Retry-After"]) >= 1
            assert json.loads(response)["retry_after_s"] >= 1
            # The wedge resolves (watchdog cancel + bounded re-run).  The
            # overload contract: the job ends in an explicit verdict —
            # either the byte-exact report, or a quarantine refusal when
            # its re-run could not be re-admitted past the full queue.
            # A wrong or partial 200 is never acceptable.
            job_id = job_id_for(upload_digest(corpus[0][1]))
            start = time.monotonic()
            state = None
            while time.monotonic() - start < 30.0:
                _, _, body = _get(server.url, f"/v1/jobs/{job_id}")
                state = json.loads(body).get("state")
                if state in ("done", "failed", "quarantined"):
                    break
                time.sleep(0.05)
            assert state in ("done", "quarantined")
            if state == "done":
                status, _, body = _get(
                    server.url, f"/v1/jobs/{job_id}/report"
                )
                assert status == 200
                assert body.decode() == corpus[0][2]

    def test_draining_503_but_cache_keeps_serving(self, server, corpus):
        cached_body = corpus[0][1]
        _post(server.url, cached_body)
        server.engine.drain(timeout_s=10.0)
        status, headers, _ = _post(server.url, corpus[1][1])
        assert status == 503
        assert "Retry-After" in headers
        status, headers, body = _post(server.url, cached_body)
        assert status == 200
        assert headers.get("X-Cache") == "hit"
        assert body.decode() == corpus[0][2]


class TestInjectedClientFaults:
    def test_slow_client_408(self, local_upload):
        injector = FaultInjector(
            plan=FaultPlan(
                seed="http-slow",
                faults=(
                    FaultSpec(
                        kind=FaultKind.SLOW_CLIENT, rate=1.0, duration=300
                    ),
                ),
            )
        )
        config = ServerConfig(read_timeout_s=0.2)
        with _serve(injector, server_config=config) as server:
            status, _, body = _post(
                server.url, local_upload, client_id="trickler"
            )
            assert status == 408
            assert b"deadline" in body

    def test_torn_upload_salvage_is_byte_identical(self, local_upload):
        plan = FaultPlan(
            seed="http-torn",
            faults=(FaultSpec(kind=FaultKind.TORN_UPLOAD, rate=1.0, times=1),),
        )
        injector = FaultInjector(plan=plan)
        # A twin injector predicts the exact torn bytes the server saw.
        torn = FaultInjector(plan=plan).torn_upload_hook(
            local_upload, "torn-client"
        )
        assert len(torn) < len(local_upload)
        with _serve(injector) as server:
            status, _, body = _post(
                server.url, local_upload, client_id="torn-client"
            )
            assert status == 200
            assert body.decode() == analyze_report_text(torn)
            assert json.loads(body)["parse"]["damaged"]
            # The fault is transient: the second upload arrives whole.
            status, _, body = _post(
                server.url, local_upload, client_id="torn-client"
            )
            assert status == 200
            assert body.decode() == analyze_report_text(local_upload)
