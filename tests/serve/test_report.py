"""Tests for the canonical report document: stability, salvage, digests."""

import json

import pytest

from repro.serve.report import (
    CHECKPOINT_EVERY,
    REPORT_FORMAT,
    ReportError,
    analyze_report,
    analyze_report_text,
    job_id_for,
    render_report,
    upload_digest,
)

from .conftest import build_upload


class TestDigests:
    def test_digest_is_prefixed_sha256(self, local_upload):
        digest = upload_digest(local_upload)
        assert digest.startswith("sha256:")
        assert len(digest) == len("sha256:") + 64

    def test_job_id_is_digest_derived(self, local_upload):
        digest = upload_digest(local_upload)
        assert job_id_for(digest) == "j" + digest.split(":")[1][:16]
        assert job_id_for(digest) == job_id_for(upload_digest(local_upload))

    def test_distinct_bytes_distinct_ids(self, local_upload, public_upload):
        assert job_id_for(upload_digest(local_upload)) != job_id_for(
            upload_digest(public_upload)
        )


class TestReportDocument:
    def test_rq_fields(self, local_upload):
        document = analyze_report(local_upload)
        assert document["format"] == REPORT_FORMAT
        assert document["bytes"] == len(local_upload)
        assert document["rq1"]["local_activity"]
        assert document["rq1"]["localhost_requests"] == 2
        assert document["rq1"]["lan_requests"] == 1
        assert 5939 in document["rq2"]["ports"]
        assert "http" in document["rq2"]["schemes"]
        assert document["rq3"]["behavior"]

    def test_negative_detection(self, public_upload):
        document = analyze_report(public_upload)
        assert not document["rq1"]["local_activity"]
        assert document["rq2"]["ports"] == []
        # Two request flows plus the page-commit source.
        assert document["flows"] == 3

    def test_rendering_is_byte_stable(self, local_upload):
        first = analyze_report_text(local_upload)
        second = analyze_report_text(local_upload)
        assert first == second
        assert first.endswith("\n")
        # Canonical form: compact separators, sorted keys.
        assert first == render_report(json.loads(first))

    def test_checkpoint_called_during_parse(self):
        # ~3 events per request: well past one checkpoint interval.
        body = build_upload(
            [f"https://cdn.example/{i}.js" for i in range(CHECKPOINT_EVERY)]
        )
        calls = []
        analyze_report(body, checkpoint=lambda: calls.append(1))
        assert calls

    def test_not_a_netlog_raises(self):
        with pytest.raises(ReportError):
            analyze_report(b'{"hello": "world"}')

    def test_empty_upload_is_salvaged_as_damaged(self):
        # Zero bytes is an extreme torn upload, not a malformed document:
        # the salvage parser reports it as truncated with no events.
        document = analyze_report(b"")
        assert document["parse"]["damaged"]
        assert document["parse"]["events"] == 0
        assert document["flows"] == 0


class TestSalvage:
    def test_torn_upload_parses_with_damage_accounted(self, local_upload):
        torn = local_upload[: int(len(local_upload) * 0.6)]
        document = analyze_report(torn)
        assert document["parse"]["damaged"]
        assert document["parse"]["truncated"]
        assert document["digest"] == upload_digest(torn)

    def test_torn_report_is_byte_stable(self, local_upload):
        torn = local_upload[: int(len(local_upload) * 0.7)]
        assert analyze_report_text(torn) == analyze_report_text(torn)

    def test_torn_mid_multibyte_sequence_degrades_gracefully(self):
        body = build_upload(["http://localhost:1234/påth"])
        # Cut inside the two-byte UTF-8 sequence if present; any cut in
        # the back half must still produce a report, never an exception.
        for cut in range(len(body) // 2, len(body), 7):
            analyze_report(body[:cut])
