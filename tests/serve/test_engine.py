"""Tests for the admission-controlled job engine.

Covers the tentpole robustness properties without HTTP in the way:
bounded admission, byte-identical caching, watchdog-cancelled hangs,
crash retries and quarantine, the overload breaker, graceful drain, and
exactly-once crash recovery through the journal.
"""

import time

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.serve.engine import (
    Degraded,
    Draining,
    EngineConfig,
    JobEngine,
    Overloaded,
)
from repro.serve.report import analyze_report_text, job_id_for, upload_digest
from repro.storage.db import TelemetryStore
from repro.storage.jobs import JobJournal


def _injector(*faults, seed="serve-test"):
    return FaultInjector(plan=FaultPlan(seed=seed, faults=tuple(faults)))


def _config(**overrides):
    defaults = dict(workers=2, backlog=4, job_deadline_s=5.0)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def _wait_done(engine, job_id, timeout_s=10.0):
    assert engine.wait(job_id, timeout_s), f"job {job_id} did not finish"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("workers", 0),
            ("backlog", 0),
            ("job_deadline_s", 0.0),
            ("quarantine_after", 0),
        ],
    )
    def test_rejects_nonsense(self, field, value):
        with pytest.raises(ValueError):
            EngineConfig(**{field: value})


class TestAnalysis:
    def test_submit_produces_canonical_report(self, local_upload):
        with JobEngine(_config()) as engine:
            job_id, cached = engine.submit(local_upload)
            assert cached is None
            assert job_id == job_id_for(upload_digest(local_upload))
            _wait_done(engine, job_id)
            assert engine.report_for(job_id) == analyze_report_text(
                local_upload
            )
            assert engine.job_status(job_id)["state"] == "done"

    def test_repeat_submission_is_cached_and_identical(self, local_upload):
        with JobEngine(_config()) as engine:
            job_id, _ = engine.submit(local_upload)
            _wait_done(engine, job_id)
            first = engine.report_for(job_id)
            again, cached = engine.submit(local_upload)
            assert again == job_id
            assert cached == first

    def test_invalid_upload_fails_terminally(self):
        with JobEngine(_config()) as engine:
            job_id, _ = engine.submit(b'{"not": "a netlog"}')
            _wait_done(engine, job_id)
            status = engine.job_status(job_id)
            assert status["state"] == "failed"
            assert "NetLog" in status["error"]
            assert engine.report_for(job_id) is None
            # Resubmitting the same poison bytes replays the verdict.
            again, cached = engine.submit(b'{"not": "a netlog"}')
            assert again == job_id and cached is None
            assert engine.job_status(job_id)["state"] == "failed"

    def test_torn_upload_report_matches_batch(self, local_upload):
        torn = local_upload[: int(len(local_upload) * 0.65)]
        with JobEngine(_config()) as engine:
            job_id, _ = engine.submit(torn)
            _wait_done(engine, job_id)
            assert engine.report_for(job_id) == analyze_report_text(torn)


class TestAdmission:
    def test_overload_rejects_with_retry_hint(self, corpus):
        engine = JobEngine(_config(workers=1, backlog=1))
        # Not started: nothing consumes the queue, so admission fills.
        engine.submit(corpus[0][1])
        with pytest.raises(Overloaded) as excinfo:
            engine.submit(corpus[1][1])
        assert 1 <= excinfo.value.retry_after_s <= 60

    def test_coalesces_inflight_duplicate(self, local_upload):
        engine = JobEngine(_config())
        first, _ = engine.submit(local_upload)
        second, cached = engine.submit(local_upload)
        assert first == second and cached is None
        assert engine.stats()["queue_depth"] == 1

    def test_draining_rejects_new_but_serves_cache(self, corpus):
        engine = JobEngine(_config())
        engine.start()
        job_id, _ = engine.submit(corpus[0][1])
        _wait_done(engine, job_id)
        assert engine.drain(timeout_s=10.0)
        with pytest.raises(Draining):
            engine.submit(corpus[1][1])
        _, cached = engine.submit(corpus[0][1])
        assert cached == corpus[0][2]
        assert not engine.ready


class TestFaultTolerance:
    def test_worker_crash_is_retried_to_success(self, local_upload):
        injector = _injector(
            FaultSpec(kind=FaultKind.WORKER_CRASH, rate=1.0, times=1)
        )
        with JobEngine(_config(), injector=injector) as engine:
            job_id, _ = engine.submit(local_upload)
            _wait_done(engine, job_id)
            status = engine.job_status(job_id)
            assert status["state"] == "done"
            assert status["attempts"] == 2
            assert engine.report_for(job_id) == analyze_report_text(
                local_upload
            )
        assert injector.injected[FaultKind.WORKER_CRASH] == 1

    def test_deep_crash_quarantines(self, local_upload):
        injector = _injector(
            FaultSpec(kind=FaultKind.WORKER_CRASH, rate=1.0, times=10)
        )
        config = _config(quarantine_after=2, breaker_threshold=100)
        with JobEngine(config, injector=injector) as engine:
            job_id, _ = engine.submit(local_upload)
            _wait_done(engine, job_id)
            status = engine.job_status(job_id)
            assert status["state"] == "quarantined"
            assert status["attempts"] == 2

    def test_hang_is_cancelled_by_watchdog_then_succeeds(self, local_upload):
        injector = _injector(
            FaultSpec(kind=FaultKind.HANG, rate=1.0, times=1)
        )
        config = _config(workers=1, job_deadline_s=0.3, breaker_threshold=100)
        with JobEngine(config, injector=injector) as engine:
            job_id, _ = engine.submit(local_upload)
            _wait_done(engine, job_id, timeout_s=15.0)
            status = engine.job_status(job_id)
            assert status["state"] == "done"
            assert status["attempts"] == 2
        assert injector.injected[FaultKind.HANG] == 1

    def test_breaker_degrades_then_recovers(self, corpus):
        injector = _injector(
            FaultSpec(kind=FaultKind.WORKER_CRASH, rate=1.0, times=10)
        )
        config = _config(
            workers=1,
            quarantine_after=2,
            breaker_threshold=2,
            breaker_cooldown_s=0.2,
        )
        with JobEngine(config, injector=injector) as engine:
            poison_id, _ = engine.submit(corpus[0][1])
            _wait_done(engine, poison_id)
            assert engine.degraded
            with pytest.raises(Degraded) as excinfo:
                engine.submit(corpus[1][1])
            assert excinfo.value.retry_after_s >= 1
            # Past the cooldown the breaker half-opens; a clean upload
            # (different digest: the crash spec strikes per key, and this
            # key's budget is untouched but rate=1.0 selects it too) ...
            time.sleep(0.25)
            assert not engine.degraded

    def test_journal_disk_full_degrades_durability_not_answers(
        self, local_upload
    ):
        injector = _injector(
            FaultSpec(kind=FaultKind.JOURNAL_DISK_FULL, rate=1.0, times=100)
        )
        with TelemetryStore() as store:
            journal = JobJournal(
                store, write_fault_hook=injector.journal_write_hook
            )
            with JobEngine(_config(), journal=journal) as engine:
                job_id, _ = engine.submit(local_upload)
                _wait_done(engine, job_id)
                assert engine.report_for(job_id) == analyze_report_text(
                    local_upload
                )
                assert engine.stats()["journal_errors"] > 0
            # Nothing was journalled — the disk was "full" throughout.
            assert journal.get(job_id) is None


class TestCrashRecovery:
    def _engine(self, store, spool, **overrides):
        journal = JobJournal(store)
        return JobEngine(
            _config(**overrides), journal=journal, spool_dir=str(spool)
        )

    def test_resume_requeues_interrupted_jobs_exactly_once(
        self, tmp_path, local_upload
    ):
        path = str(tmp_path / "serve.sqlite")
        spool = tmp_path / "spool"
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool)
            job_id, _ = engine.submit(local_upload)
            # Simulate SIGKILL mid-analysis: the journal says running,
            # no clean shutdown ever happened.
            engine.journal.mark_running(job_id, now=time.time())
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool)
            recovered, cached = engine.resume()
            assert (recovered, cached) == (1, 0)
            row = engine.journal.get(job_id)
            assert row.state == "queued"
            assert row.error == "recovered after restart"
            engine.start()
            _wait_done(engine, job_id)
            status = engine.job_status(job_id)
            assert status["state"] == "done"
            # attempts: 1 (interrupted) + 1 (recovery) — exactly once more.
            assert status["attempts"] == 2
            assert engine.report_for(job_id) == analyze_report_text(
                local_upload
            )
            engine.drain(timeout_s=10.0)

    def test_resume_warms_cache_from_done_rows(self, tmp_path, local_upload):
        path = str(tmp_path / "serve.sqlite")
        spool = tmp_path / "spool"
        expected = analyze_report_text(local_upload)
        with TelemetryStore(path, serialized=True) as store:
            with self._engine(store, spool) as engine:
                job_id, _ = engine.submit(local_upload)
                _wait_done(engine, job_id)
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool)
            recovered, cached = engine.resume()
            assert (recovered, cached) == (0, 1)
            # Served from the warmed cache without any worker running.
            again, report = engine.submit(local_upload)
            assert again == job_id
            assert report == expected

    def test_lost_spool_fails_the_job_explicitly(self, tmp_path, local_upload):
        path = str(tmp_path / "serve.sqlite")
        spool = tmp_path / "spool"
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool)
            job_id, _ = engine.submit(local_upload)
        for file in spool.iterdir():
            file.unlink()
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool)
            recovered, _ = engine.resume()
            assert recovered == 0
            status = engine.job_status(job_id)
            assert status["state"] == "failed"
            assert "spool lost" in status["error"]

    def test_resupplied_bytes_resurrect_a_spool_lost_job(
        self, tmp_path, local_upload
    ):
        """Spool loss is an infra failure, not a verdict: a fresh POST
        of the same bytes re-runs the job instead of replaying 422."""
        path = str(tmp_path / "serve.sqlite")
        spool = tmp_path / "spool"
        expected = analyze_report_text(local_upload)
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool)
            job_id, _ = engine.submit(local_upload)
        for file in spool.iterdir():
            file.unlink()
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool)
            engine.resume()
            engine.start()
            try:
                assert engine.job_status(job_id)["state"] == "failed"
                again, cached = engine.submit(local_upload)
                assert (again, cached) == (job_id, None)
                _wait_done(engine, job_id)
                assert engine.report_for(job_id) == expected
            finally:
                engine.drain(timeout_s=10.0)
            assert JobJournal(store).get(job_id).state == "done"

    def test_drain_leaves_queued_jobs_recoverable(self, tmp_path, corpus):
        path = str(tmp_path / "serve.sqlite")
        spool = tmp_path / "spool"
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool, workers=1)
            # Never started: both jobs stay queued in the journal.
            for _, body, _ in corpus[:2]:
                engine.submit(body)
            assert engine.drain(timeout_s=5.0)
        with TelemetryStore(path, serialized=True) as store:
            engine = self._engine(store, spool, workers=1)
            recovered, _ = engine.resume()
            assert recovered == 2
            engine.start()
            for _, body, expected in corpus[:2]:
                job_id = job_id_for(upload_digest(body))
                _wait_done(engine, job_id)
                assert engine.report_for(job_id) == expected
            engine.drain(timeout_s=10.0)
