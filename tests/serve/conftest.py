"""Fixtures for the serve suite: NetLog uploads with known-good reports."""

from __future__ import annotations

import pytest

from repro.netlog import dumps
from repro.serve.report import analyze_report_text
from tests.conftest import EventBuilder


def build_upload(
    urls: list[str], *, checksums: bool = False, page: str | None = None
) -> bytes:
    """Serialise a small NetLog document covering ``urls`` as bytes."""
    builder = EventBuilder()
    builder.page_commit(page or "https://site.example/", time=100.0)
    for index, url in enumerate(urls):
        builder.request(url, time=2100.0 + 10.0 * index)
    return dumps(builder.events, checksums=checksums).encode()


@pytest.fixture
def local_upload() -> bytes:
    """An upload with localhost + LAN traffic (all three RQs light up)."""
    return build_upload(
        [
            "http://localhost:5939/check",
            "http://127.0.0.1:8000/setuid",
            "http://192.168.0.12/cam.jpg",
            "https://cdn.example/app.js",
        ]
    )


@pytest.fixture
def public_upload() -> bytes:
    """An upload with only public traffic (a negative detection)."""
    return build_upload(
        ["https://cdn.example/app.js", "https://fonts.example/r.woff2"]
    )


@pytest.fixture
def corpus(local_upload, public_upload) -> list[tuple[str, bytes, str]]:
    """(name, body, expected canonical report) triples for load tests."""
    uploads = {
        "local": local_upload,
        "public": public_upload,
        "portscan": build_upload(
            [f"http://127.0.0.1:{port}/" for port in range(6000, 6012)]
        ),
    }
    return [
        (name, body, analyze_report_text(body))
        for name, body in uploads.items()
    ]
