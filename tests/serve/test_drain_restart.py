"""Slow end-to-end tests: graceful drain, kill -9, and daemon restart.

Marked ``slow`` + ``loopback``: these boot real servers (including the
CLI daemon as a subprocess under real signals) and exercise the full
crash-recovery loop — submit, kill, restart with ``--resume``, and prove
the recovered answers are byte-identical to the batch analyzer.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.engine import EngineConfig, JobEngine
from repro.serve.http import ReproServer, ServerConfig
from repro.serve.report import analyze_report_text, job_id_for, upload_digest
from repro.storage.db import TelemetryStore
from repro.storage.jobs import JobJournal

pytestmark = [pytest.mark.slow, pytest.mark.loopback]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _post(url, body):
    request = urllib.request.Request(
        f"{url}/v1/analyze", data=body, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class TestDrainRestart:
    def test_drain_then_restart_completes_interrupted_work(
        self, tmp_path, corpus
    ):
        """A drained server's unfinished queue survives into the next run."""
        path = str(tmp_path / "serve.sqlite")
        spool = str(tmp_path / "spool")

        with TelemetryStore(path, serialized=True) as store:
            engine = JobEngine(
                EngineConfig(workers=1, backlog=8),
                journal=JobJournal(store),
                spool_dir=spool,
            )
            # Never start the workers: every submission stays queued in
            # the journal, the shape of a server stopped under backlog.
            server = ReproServer(engine, ServerConfig(sync_wait_s=0.01))
            for _, body, _ in corpus:
                engine.submit(body)
            assert server.drain(timeout_s=10.0)  # never-started drain is safe
            counts = JobJournal(store).counts()
            assert counts["queued"] == len(corpus)

        with TelemetryStore(path, serialized=True) as store:
            engine = JobEngine(
                EngineConfig(workers=2, backlog=8),
                journal=JobJournal(store),
                spool_dir=spool,
            )
            recovered, cached = engine.resume()
            assert (recovered, cached) == (len(corpus), 0)
            with ReproServer(engine) as server:
                for _, body, expected in corpus:
                    job_id = job_id_for(upload_digest(body))
                    assert engine.wait(job_id, 30.0)
                    status, answer = _post(server.url, body)
                    assert status == 200
                    assert answer.decode() == expected
            assert JobJournal(store).counts()["done"] == len(corpus)


class TestCliDaemon:
    def _spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--port", "0", "--db", str(tmp_path / "daemon.sqlite"),
                "--drain-timeout", "15",
                *extra,
            ],
            cwd=_REPO_ROOT,
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        lines = []
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = process.stderr.readline()
            lines.append(line)
            if line.startswith("serving on "):
                return process, line.split()[2], lines
        process.kill()
        raise AssertionError(f"daemon never came up: {lines!r}")

    def test_sigterm_drains_and_exits_zero(self, tmp_path, local_upload):
        process, url, _ = self._spawn(tmp_path)
        try:
            status, body = _post(url, local_upload)
            assert status == 200
            assert body.decode() == analyze_report_text(local_upload)
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30.0)
        assert process.returncode == 0

    def test_kill_dash_nine_then_resume_reruns_exactly_once(
        self, tmp_path, local_upload
    ):
        expected = analyze_report_text(local_upload)
        job_id = job_id_for(upload_digest(local_upload))
        db = str(tmp_path / "daemon.sqlite")

        process, url, _ = self._spawn(tmp_path)
        status, body = _post(url, local_upload)
        assert (status, body.decode()) == (200, expected)
        # SIGKILL: no drain, no journal checkpointing, nothing graceful.
        process.kill()
        process.wait(timeout=30.0)
        assert process.returncode != 0

        # Forge the crash signature a SIGKILL mid-analysis leaves behind:
        # flip the finished row back to mid-flight states.
        with TelemetryStore(db, serialized=True) as store:
            store._execute(
                "UPDATE jobs SET state = 'running', report = NULL "
                "WHERE job_id = ?",
                (job_id,),
            )
            store.commit()
            spool = db + ".spool"
            digest_hex = upload_digest(local_upload).split(":")[1]
            with open(os.path.join(spool, digest_hex + ".netlog"), "wb") as fp:
                fp.write(local_upload)

        process, url, lines = self._spawn(tmp_path, "--resume")
        try:
            assert any("resumed: 1 interrupted" in line for line in lines)
            deadline = time.monotonic() + 30.0
            state = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{url}/v1/jobs/{job_id}", timeout=10.0
                ) as response:
                    state = json.loads(response.read())["state"]
                if state == "done":
                    break
                time.sleep(0.1)
            assert state == "done"
            with urllib.request.urlopen(
                f"{url}/v1/jobs/{job_id}/report", timeout=10.0
            ) as response:
                assert response.read().decode() == expected
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30.0)
        assert process.returncode == 0
        with TelemetryStore(db, serialized=True) as store:
            row = JobJournal(store).get(job_id)
            assert row.state == "done"
            assert row.report == expected
