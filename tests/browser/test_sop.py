"""Tests for the Same-Origin Policy model and its WebSocket exemption."""

from repro.browser.sop import Origin, ResponseVisibility, SameOriginPolicy
from repro.core.addresses import parse_target


def _origin(url: str) -> Origin:
    return Origin.from_target(parse_target(url))


class TestOrigin:
    def test_same_origin_requires_scheme_host_port(self):
        a = _origin("https://site.example/")
        assert a.same_origin_as(_origin("https://site.example/page"))
        assert not a.same_origin_as(_origin("http://site.example/"))
        assert not a.same_origin_as(_origin("https://site.example:8443/"))
        assert not a.same_origin_as(_origin("https://other.example/"))

    def test_secure_origins(self):
        assert _origin("https://a.example/").is_secure
        assert _origin("wss://a.example/").is_secure
        assert not _origin("http://a.example/").is_secure


class TestVisibility:
    def setup_method(self):
        self.policy = SameOriginPolicy()
        self.page = _origin("https://shop.example/")

    def test_cross_origin_http_is_opaque(self):
        target = parse_target("http://localhost:4444/")
        assert (
            self.policy.visibility(self.page, target)
            is ResponseVisibility.OPAQUE
        )

    def test_same_origin_is_full(self):
        target = parse_target("https://shop.example/api")
        assert (
            self.policy.visibility(self.page, target) is ResponseVisibility.FULL
        )

    def test_websockets_bypass_sop(self):
        # The paper's central protocol observation.
        for scheme in ("ws", "wss"):
            target = parse_target(f"{scheme}://localhost:5939/")
            assert (
                self.policy.visibility(self.page, target)
                is ResponseVisibility.FULL
            )

    def test_cors_opt_in_grants_full(self):
        target = parse_target("http://localhost:8000/api")
        assert (
            self.policy.visibility(self.page, target, cors_allowed=True)
            is ResponseVisibility.FULL
        )

    def test_requests_are_always_sent(self):
        # Classic SOP restricts reading, not sending — the gap PNA closes.
        target = parse_target("http://192.168.0.1/admin")
        assert self.policy.request_allowed(self.page, target)


class TestObservableSignal:
    def test_opaque_probe_still_leaks_timing(self):
        policy = SameOriginPolicy()
        page = _origin("https://gov.example/")
        target = parse_target("http://localhost:17556/")
        signal = policy.observable_signal(
            page, target, connect_ok=True, latency_ms=0.4
        )
        assert signal["completed"] is True
        assert signal["latency_ms"] == 0.4
        assert signal["visibility"] == "opaque"
        assert "readable" not in signal

    def test_websocket_probe_reads_data(self):
        policy = SameOriginPolicy()
        page = _origin("https://shop.example/")
        target = parse_target("wss://localhost:5900/")
        signal = policy.observable_signal(
            page, target, connect_ok=True, latency_ms=0.3
        )
        assert signal.get("readable") is True
