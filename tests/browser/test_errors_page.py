"""Tests for the net-error model, user agents, and the page/script model."""

import pytest

from repro.browser.errors import (
    OTHER_ERROR_POOL,
    TABLE1_ERROR_COLUMNS,
    NetError,
    table1_bucket,
)
from repro.browser.page import Page, PlannedRequest, ScriptContext
from repro.browser.useragent import ALL_OSES, OS_IDENTITIES, OSIdentity, identity_for


class TestNetError:
    def test_ok_is_not_failed(self):
        assert not NetError.OK.failed
        assert NetError.ERR_NAME_NOT_RESOLVED.failed

    @pytest.mark.parametrize(
        ("error", "bucket"),
        [
            (NetError.ERR_NAME_NOT_RESOLVED, "NAME_NOT_RESOLVED"),
            (NetError.ERR_CONNECTION_REFUSED, "CONN_REFUSED"),
            (NetError.ERR_CONNECTION_RESET, "CONN_RESET"),
            (NetError.ERR_CERT_COMMON_NAME_INVALID, "CERT_CN_INVALID"),
            (NetError.ERR_TIMED_OUT, "Others"),
            (NetError.ERR_SSL_PROTOCOL_ERROR, "Others"),
            (NetError.ERR_ABORTED, "Others"),
        ],
    )
    def test_table1_buckets(self, error, bucket):
        assert table1_bucket(error) == bucket
        assert bucket in TABLE1_ERROR_COLUMNS

    def test_other_pool_maps_to_others(self):
        for error in OTHER_ERROR_POOL:
            assert table1_bucket(error) == "Others"

    def test_codes_match_chrome_values(self):
        assert NetError.ERR_NAME_NOT_RESOLVED == -105
        assert NetError.ERR_CONNECTION_REFUSED == -102
        assert NetError.ERR_CONNECTION_RESET == -101
        assert NetError.ERR_CERT_COMMON_NAME_INVALID == -200


class TestUserAgents:
    def test_three_oses(self):
        assert set(ALL_OSES) == {"windows", "linux", "mac"}
        assert set(OS_IDENTITIES) == set(ALL_OSES)

    def test_chrome84_everywhere(self):
        for identity in OS_IDENTITIES.values():
            assert "Chrome/84" in identity.user_agent

    @pytest.mark.parametrize(
        ("os_name", "marker"),
        [("windows", "Windows NT 10.0"), ("linux", "X11; Linux"), ("mac", "Mac OS X")],
    )
    def test_platform_markers(self, os_name, marker):
        assert marker in identity_for(os_name).user_agent

    def test_unknown_os_rejected(self):
        with pytest.raises(ValueError):
            OSIdentity(name="beos", label="BeOS", user_agent="x")
        with pytest.raises(KeyError):
            identity_for("beos")


class TestPageModel:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            PlannedRequest(url="http://localhost/", delay_ms=-1.0)

    def test_planned_requests_get_script_name_as_initiator(self):
        class Script:
            name = "my-script"

            def plan(self, context):
                return [PlannedRequest(url="http://localhost:1/")]

        page = Page(url="https://a.example/", scripts=[Script()])
        context = ScriptContext(
            os_name="linux", user_agent="UA", page_url=page.url
        )
        planned = page.planned_requests(context)
        assert planned[0].initiator == "my-script"

    def test_explicit_initiator_preserved(self):
        class Script:
            name = "outer"

            def plan(self, context):
                return [
                    PlannedRequest(url="http://localhost:1/", initiator="blob:x")
                ]

        page = Page(url="https://a.example/", scripts=[Script()])
        context = ScriptContext(os_name="mac", user_agent="UA", page_url=page.url)
        assert page.planned_requests(context)[0].initiator == "blob:x"

    def test_plan_order_is_script_order(self):
        class One:
            name = "one"

            def plan(self, context):
                return [PlannedRequest(url="http://localhost:1/")]

        class Two:
            name = "two"

            def plan(self, context):
                return [PlannedRequest(url="http://localhost:2/")]

        page = Page(url="https://a.example/", scripts=[One(), Two()])
        context = ScriptContext(os_name="mac", user_agent="UA", page_url=page.url)
        urls = [p.url for p in page.planned_requests(context)]
        assert urls == ["http://localhost:1/", "http://localhost:2/"]
