"""Tests for the simulated resolver."""

import pytest

from repro.browser.dns import SimulatedResolver
from repro.browser.errors import NetError
from repro.core.addresses import Locality, classify_host


class TestResolution:
    def test_localhost_resolves_without_records(self):
        resolver = SimulatedResolver(default_resolvable=False)
        result = resolver.resolve("localhost")
        assert result.ok and result.address == "127.0.0.1"

    def test_localhost_subdomain(self):
        resolver = SimulatedResolver(default_resolvable=False)
        assert resolver.resolve("app.localhost").address == "127.0.0.1"

    def test_ip_literals_pass_through(self):
        resolver = SimulatedResolver(default_resolvable=False)
        assert resolver.resolve("192.168.1.8").address == "192.168.1.8"

    def test_registered_record(self):
        resolver = SimulatedResolver()
        resolver.add_record("ebay.com", "203.0.113.7")
        assert resolver.resolve("ebay.com").address == "203.0.113.7"

    def test_record_matching_is_case_insensitive(self):
        resolver = SimulatedResolver()
        resolver.add_record("Example.COM", "203.0.113.9")
        assert resolver.resolve("example.com.").address == "203.0.113.9"

    def test_default_resolvable_synthesizes_public_address(self):
        resolver = SimulatedResolver()
        result = resolver.resolve("random-site.example")
        assert result.ok
        assert classify_host(result.address) is Locality.PUBLIC

    def test_synthetic_addresses_are_stable(self):
        resolver = SimulatedResolver()
        first = resolver.resolve("stable.example").address
        second = resolver.resolve("stable.example").address
        assert first == second

    def test_unresolvable_when_defaults_off(self):
        resolver = SimulatedResolver(default_resolvable=False)
        result = resolver.resolve("nosuch.example")
        assert not result.ok
        assert result.error is NetError.ERR_NAME_NOT_RESOLVED

    def test_query_counter(self):
        resolver = SimulatedResolver()
        resolver.resolve("a.example")
        resolver.resolve("b.example")
        assert resolver.queries == 2


class TestFailureInjection:
    def test_injected_failure_wins(self):
        resolver = SimulatedResolver()
        resolver.inject_failure("broken.example", NetError.ERR_NAME_NOT_RESOLVED)
        result = resolver.resolve("broken.example")
        assert result.error is NetError.ERR_NAME_NOT_RESOLVED

    def test_clear_failure_restores(self):
        resolver = SimulatedResolver()
        resolver.inject_failure("flaky.example", NetError.ERR_NAME_NOT_RESOLVED)
        resolver.clear_failure("flaky.example")
        assert resolver.resolve("flaky.example").ok

    def test_injecting_ok_rejected(self):
        resolver = SimulatedResolver()
        with pytest.raises(ValueError):
            resolver.inject_failure("x.example", NetError.OK)
