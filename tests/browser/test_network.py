"""Tests for the simulated network stack's connect semantics."""

import pytest

from repro.browser.errors import NetError
from repro.browser.network import (
    CONNECT_TIMEOUT_MS,
    LocalServiceTable,
    PortState,
    SimulatedNetwork,
)


class TestLocalServiceTable:
    def test_default_state_is_closed(self):
        table = LocalServiceTable()
        assert table.state("127.0.0.1", 5939) is PortState.CLOSED

    def test_open_service(self):
        table = LocalServiceTable()
        table.open_service("127.0.0.1", 5939)
        assert table.state("127.0.0.1", 5939) is PortState.OPEN

    def test_invalid_port_rejected(self):
        table = LocalServiceTable()
        with pytest.raises(ValueError):
            table.set_state("127.0.0.1", 0, PortState.OPEN)


class TestConnectSemantics:
    def test_public_connects_with_wan_latency(self):
        network = SimulatedNetwork()
        outcome = network.connect("example.com", 443)
        assert outcome.ok
        assert outcome.latency_ms >= SimulatedNetwork.WAN_RTT_MS

    def test_closed_localhost_port_refuses_fast(self):
        network = SimulatedNetwork()
        outcome = network.connect("127.0.0.1", 3389)
        assert outcome.error is NetError.ERR_CONNECTION_REFUSED
        assert outcome.latency_ms < 5.0

    def test_open_localhost_port_accepts_fast(self):
        network = SimulatedNetwork()
        network.services.open_service("127.0.0.1", 3389)
        outcome = network.connect("127.0.0.1", 3389)
        assert outcome.ok
        assert outcome.latency_ms < 5.0

    def test_localhost_aliases_share_service_table(self):
        # A service opened on 127.0.0.1 answers for "localhost" too.
        network = SimulatedNetwork()
        network.services.open_service("127.0.0.1", 6463)
        assert network.connect("localhost", 6463).ok

    def test_dropped_port_times_out(self):
        network = SimulatedNetwork()
        network.services.set_state("127.0.0.1", 9999, PortState.DROPPED)
        outcome = network.connect("127.0.0.1", 9999)
        assert outcome.error is NetError.ERR_TIMED_OUT
        assert outcome.latency_ms == CONNECT_TIMEOUT_MS

    def test_timing_side_channel_exists(self):
        """The BIG-IP inference: closed vs dropped are distinguishable by
        latency even when the response body is unreadable."""
        network = SimulatedNetwork()
        network.services.set_state("127.0.0.1", 1111, PortState.DROPPED)
        closed = network.connect("127.0.0.1", 2222)
        dropped = network.connect("127.0.0.1", 1111)
        assert dropped.latency_ms > 100 * closed.latency_ms

    def test_lan_latency_between_loopback_and_wan(self):
        network = SimulatedNetwork()
        network.services.open_service("192.168.1.8", 80)
        lan = network.connect("192.168.1.8", 80)
        public = network.connect("example.com", 80)
        assert lan.ok
        assert lan.latency_ms < public.latency_ms

    def test_latency_is_deterministic(self):
        network = SimulatedNetwork()
        first = network.connect("example.com", 443)
        second = network.connect("example.com", 443)
        assert first.latency_ms == second.latency_ms

    def test_attempt_counter(self):
        network = SimulatedNetwork()
        network.connect("a.example", 80)
        network.connect("127.0.0.1", 80)
        assert network.connect_attempts == 2
