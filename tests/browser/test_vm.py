"""Tests for OS environments (crawl vantage points)."""

import pytest

from repro.browser.chrome import DEFAULT_MONITOR_WINDOW_MS
from repro.browser.network import PortState
from repro.crawler.vm import VANTAGE_BY_OS, OSEnvironment


class TestOSEnvironment:
    def test_for_os_builds_identity_and_vantage(self):
        environment = OSEnvironment.for_os("windows")
        assert environment.os_name == "windows"
        assert environment.vantage == "gatech-isp"
        assert environment.monitor_window_ms == DEFAULT_MONITOR_WINDOW_MS

    def test_mac_crawls_from_residential_network(self):
        # The paper's Mac crawl ran on a Comcast residential connection.
        assert OSEnvironment.for_os("mac").vantage == "comcast-residential"
        assert VANTAGE_BY_OS["linux"] == "gatech-isp"

    def test_unknown_os_rejected(self):
        with pytest.raises(KeyError):
            OSEnvironment.for_os("templeos")

    def test_custom_monitor_window(self):
        environment = OSEnvironment.for_os("linux", monitor_window_ms=5_000.0)
        browser = environment.browser()
        assert browser.monitor_window_ms == 5_000.0

    def test_browsers_share_the_environment_service_table(self):
        # Local services installed in the environment must be visible to
        # every browser instance it spawns (the host machine's state).
        environment = OSEnvironment.for_os("windows")
        environment.services.open_service("127.0.0.1", 5939)
        browser = environment.browser()
        assert browser.network.connect("127.0.0.1", 5939).ok
        assert environment.services.state("127.0.0.1", 5939) is PortState.OPEN

    def test_each_browser_gets_its_own_network_counters(self):
        environment = OSEnvironment.for_os("windows")
        first = environment.browser()
        second = environment.browser()
        first.network.connect("example.com", 443)
        assert first.network.connect_attempts == 1
        assert second.network.connect_attempts == 0

    def test_user_agent_propagates_to_browser(self):
        browser = OSEnvironment.for_os("mac").browser()
        assert "Mac OS X" in browser.identity.user_agent
