"""Tests for the simulated Chrome instance."""

import pytest

from repro.browser.chrome import DEFAULT_MONITOR_WINDOW_MS, SimulatedChrome
from repro.browser.dns import SimulatedResolver
from repro.browser.errors import NetError
from repro.browser.page import Page, PlannedRequest
from repro.browser.useragent import identity_for
from repro.core.detector import LocalTrafficDetector
from repro.core.flows import extract_flows, page_load_time
from repro.netlog.constants import EventType


class _StaticScript:
    """Minimal PageScript emitting a fixed plan."""

    name = "static-script"

    def __init__(self, requests):
        self._requests = requests

    def plan(self, context):
        return self._requests


def _chrome(os_name="windows", **kwargs) -> SimulatedChrome:
    return SimulatedChrome(identity_for(os_name), **kwargs)


class TestVisitSuccess:
    def test_successful_visit_commits_page(self):
        chrome = _chrome()
        result = chrome.visit(Page(url="https://site.example/"))
        assert result.success
        assert result.page_load_time_ms is not None
        assert page_load_time(result.events) == result.page_load_time_ms

    def test_script_requests_are_logged(self):
        page = Page(
            url="https://site.example/",
            scripts=[
                _StaticScript(
                    [PlannedRequest(url="http://localhost:8000/x", delay_ms=50.0)]
                )
            ],
        )
        result = _chrome().visit(page)
        detection = LocalTrafficDetector().detect(result.events)
        assert detection.has_local_activity
        assert detection.requests[0].port == 8000

    def test_websocket_requests_emit_handshake_events(self):
        page = Page(
            url="https://site.example/",
            scripts=[
                _StaticScript([PlannedRequest(url="wss://localhost:5939/")])
            ],
        )
        result = _chrome().visit(page)
        types = {e.type for e in result.events}
        assert EventType.WEB_SOCKET_SEND_HANDSHAKE_REQUEST in types

    def test_redirect_chain_emitted(self):
        page = Page(
            url="https://site.example/",
            scripts=[
                _StaticScript(
                    [
                        PlannedRequest(
                            url="http://site.example/home",
                            redirect_to=("http://127.0.0.1:80/",),
                        )
                    ]
                )
            ],
        )
        result = _chrome().visit(page)
        detection = LocalTrafficDetector().detect(result.events)
        assert detection.requests and detection.requests[0].via_redirect

    def test_requests_beyond_window_are_invisible(self):
        page = Page(
            url="https://site.example/",
            scripts=[
                _StaticScript(
                    [
                        PlannedRequest(
                            url="http://localhost:1/",
                            delay_ms=DEFAULT_MONITOR_WINDOW_MS + 1,
                        ),
                        PlannedRequest(url="http://localhost:2/", delay_ms=10.0),
                    ]
                )
            ],
        )
        result = _chrome().visit(page)
        detection = LocalTrafficDetector().detect(result.events)
        assert detection.ports() == {2}

    def test_monitor_window_is_configurable(self):
        chrome = _chrome(monitor_window_ms=1000.0)
        page = Page(
            url="https://site.example/",
            scripts=[
                _StaticScript(
                    [PlannedRequest(url="http://localhost:7/", delay_ms=1500.0)]
                )
            ],
        )
        result = chrome.visit(page)
        assert not LocalTrafficDetector().detect(result.events).has_local_activity

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            _chrome(monitor_window_ms=0)

    def test_source_ids_increase_across_visits(self):
        chrome = _chrome()
        first = chrome.visit(Page(url="https://a.example/"))
        second = chrome.visit(Page(url="https://b.example/"))
        assert max(e.source.id for e in first.events) < min(
            e.source.id for e in second.events
        )
        assert chrome.pages_visited == 2

    def test_events_sorted_by_time(self):
        page = Page(
            url="https://site.example/",
            resources=["https://cdn.example/app.js"],
            scripts=[
                _StaticScript([PlannedRequest(url="http://localhost:3/", delay_ms=5.0)])
            ],
        )
        result = _chrome().visit(page)
        times = [e.time for e in result.events]
        assert times == sorted(times)


class TestVisitFailure:
    @pytest.mark.parametrize(
        "error",
        [
            NetError.ERR_NAME_NOT_RESOLVED,
            NetError.ERR_CONNECTION_REFUSED,
            NetError.ERR_CONNECTION_RESET,
            NetError.ERR_CERT_COMMON_NAME_INVALID,
            NetError.ERR_TIMED_OUT,
        ],
    )
    def test_forced_error_fails_visit(self, error):
        result = _chrome().visit(
            Page(url="https://down.example/"), forced_error=error
        )
        assert result.failed
        assert result.error is error
        # The flow layer sees the same terminal error.
        flows = extract_flows(result.events)
        assert flows and flows[0].net_error == int(error)

    def test_dns_failure_via_resolver(self):
        resolver = SimulatedResolver()
        resolver.inject_failure("gone.example", NetError.ERR_NAME_NOT_RESOLVED)
        chrome = _chrome(resolver=resolver)
        result = chrome.visit(Page(url="https://gone.example/"))
        assert result.error is NetError.ERR_NAME_NOT_RESOLVED
        assert any(
            e.type is EventType.HOST_RESOLVER_IMPL_REQUEST for e in result.events
        )

    def test_failed_visit_runs_no_scripts(self):
        page = Page(
            url="https://down.example/",
            scripts=[_StaticScript([PlannedRequest(url="http://localhost:1/")])],
        )
        result = _chrome().visit(
            page, forced_error=NetError.ERR_CONNECTION_REFUSED
        )
        assert not LocalTrafficDetector().detect(result.events).has_local_activity

    def test_unparsable_url_fails(self):
        result = _chrome().visit(Page(url="not-a-url"))
        assert result.failed


class TestOsConditionalScripts:
    def test_scripts_see_the_os(self):
        class OsProbe:
            name = "os-probe"

            def plan(self, context):
                if context.os_name == "windows":
                    return [PlannedRequest(url="http://localhost:3389/")]
                return []

        page = Page(url="https://site.example/", scripts=[OsProbe()])
        on_windows = _chrome("windows").visit(page)
        on_linux = _chrome("linux").visit(page)
        assert LocalTrafficDetector().detect(on_windows.events).has_local_activity
        assert not LocalTrafficDetector().detect(on_linux.events).has_local_activity

    def test_user_agent_matches_os(self):
        class UaProbe:
            name = "ua-probe"
            seen = None

            def plan(self, context):
                UaProbe.seen = context.user_agent
                return []

        _chrome("mac").visit(Page(url="https://site.example/", scripts=[UaProbe()]))
        assert "Mac OS X" in UaProbe.seen
