"""Tests for service banners and what SOP lets a scanner read of them."""

from repro.browser.network import LocalServiceTable, PortState, SimulatedNetwork
from repro.browser.sop import Origin, SameOriginPolicy
from repro.core.addresses import parse_target


class TestBanners:
    def test_open_service_with_banner(self):
        table = LocalServiceTable()
        table.open_service("127.0.0.1", 5939, banner="TeamViewer 15.8")
        assert table.banner("127.0.0.1", 5939) == "TeamViewer 15.8"

    def test_open_service_without_banner(self):
        table = LocalServiceTable()
        table.open_service("127.0.0.1", 80)
        assert table.banner("127.0.0.1", 80) is None

    def test_closed_service_yields_no_banner(self):
        table = LocalServiceTable()
        table.banners[("127.0.0.1", 22)] = "ghost"
        assert table.state("127.0.0.1", 22) is PortState.CLOSED
        assert table.banner("127.0.0.1", 22) is None

    def test_connect_outcome_carries_banner(self):
        network = SimulatedNetwork()
        network.services.open_service("127.0.0.1", 5900, banner="RFB 003.008")
        outcome = network.connect("127.0.0.1", 5900)
        assert outcome.ok
        assert outcome.banner == "RFB 003.008"

    def test_public_connects_have_no_banner(self):
        network = SimulatedNetwork()
        assert network.connect("example.com", 443).banner is None


class TestBannerVisibility:
    def setup_method(self):
        self.policy = SameOriginPolicy()
        self.page = Origin(scheme="https", host="shop.example", port=443)
        self.network = SimulatedNetwork()
        self.network.services.open_service(
            "127.0.0.1", 5939, banner="TeamViewer 15.8"
        )

    def test_websocket_probe_reads_the_banner(self):
        target = parse_target("wss://localhost:5939/")
        outcome = self.network.connect("localhost", 5939)
        signal = self.policy.observable_signal(
            self.page,
            target,
            connect_ok=outcome.ok,
            latency_ms=outcome.latency_ms,
            banner=outcome.banner,
        )
        assert signal["banner"] == "TeamViewer 15.8"

    def test_sop_bound_http_probe_cannot_read_it(self):
        target = parse_target("http://localhost:5939/")
        outcome = self.network.connect("localhost", 5939)
        signal = self.policy.observable_signal(
            self.page,
            target,
            connect_ok=outcome.ok,
            latency_ms=outcome.latency_ms,
            banner=outcome.banner,
        )
        # Liveness still leaks; the banner does not.
        assert signal["completed"] is True
        assert "banner" not in signal
