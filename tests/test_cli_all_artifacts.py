"""Exhaustive CLI coverage: every table and figure number renders."""

import pytest

from repro.cli import main

_SCALE = ["--scale", "0.002"]

_TABLE_MARKERS = {
    1: "NAME_NOT_RESOLVED",
    2: "malware",
    3: "ebay.com",
    4: "TeamViewer",
    5: "Fraud Detection",
    6: "10.10.34.35",
    7: "iqiyi.com",
    8: "customer-ebay.com",
    9: "wangzonghang.cn",
    10: "unib.ac.id",
    11: "rkn.gov.ru",
}

_FIGURE_MARKERS = {
    2: "OS overlap",
    3: "rank CDFs",
    4: "protocols and ports",
    5: "seconds to first request",
    6: "seconds to first request",
    7: "seconds to first request",
    8: "protocols and ports",
    9: "rank CDFs",
}


@pytest.mark.parametrize("number", sorted(_TABLE_MARKERS))
def test_every_table_renders(number, capsys):
    assert main(["table", str(number), *_SCALE]) == 0
    out = capsys.readouterr().out
    assert _TABLE_MARKERS[number] in out, f"table {number}"


@pytest.mark.parametrize("number", sorted(_FIGURE_MARKERS))
def test_every_figure_renders(number, capsys):
    assert main(["figure", str(number), *_SCALE]) == 0
    out = capsys.readouterr().out
    assert _FIGURE_MARKERS[number] in out, f"figure {number}"


@pytest.mark.parametrize(
    "population", ["top2020", "top2021", "malicious"]
)
def test_study_all_populations(population, capsys):
    assert main(["study", "--population", population, *_SCALE]) == 0
    out = capsys.readouterr().out
    assert "localhost-active sites:" in out
