"""Shared fixtures: small-scale campaigns and event-building helpers.

Campaign fixtures are session-scoped — the populations are deterministic,
so every test sees identical findings without re-crawling per test.
"""

from __future__ import annotations

import pytest

from repro.crawler.campaign import run_campaign
from repro.netlog.constants import EventPhase, EventType, SourceType
from repro.netlog.events import NetLogEvent, NetLogSource
from repro.web.population import (
    build_malicious_population,
    build_top_population,
)

#: Scale factors small enough for quick tests but large enough that every
#: seeded site is present (populations always keep all seeds).
TOP_SCALE = 0.005
MALICIOUS_SCALE = 0.002


@pytest.fixture(scope="session")
def top2020_population():
    return build_top_population(2020, scale=TOP_SCALE)


@pytest.fixture(scope="session")
def top2021_population(top2020_population):
    return build_top_population(
        2021, scale=TOP_SCALE, base_list=top2020_population.top_list
    )


@pytest.fixture(scope="session")
def malicious_population():
    return build_malicious_population(scale=MALICIOUS_SCALE)


@pytest.fixture(scope="session")
def top2020_result(top2020_population):
    return run_campaign(top2020_population)


@pytest.fixture(scope="session")
def top2021_result(top2021_population):
    return run_campaign(top2021_population)


@pytest.fixture(scope="session")
def malicious_result(malicious_population):
    return run_campaign(malicious_population)


class EventBuilder:
    """Fluent helper for constructing NetLog event streams in tests."""

    def __init__(self) -> None:
        self.events: list[NetLogEvent] = []
        self._next_source = 1

    def source(self, type: SourceType = SourceType.URL_REQUEST) -> NetLogSource:
        source = NetLogSource(id=self._next_source, type=type)
        self._next_source += 1
        return source

    def add(
        self,
        time: float,
        type: EventType,
        source: NetLogSource,
        phase: EventPhase = EventPhase.NONE,
        **params,
    ) -> NetLogEvent:
        event = NetLogEvent(
            time=time, type=type, source=source, phase=phase, params=params
        )
        self.events.append(event)
        return event

    def request(
        self,
        url: str,
        *,
        time: float = 0.0,
        method: str = "GET",
        redirects: tuple[str, ...] = (),
        source_type: SourceType = SourceType.URL_REQUEST,
    ) -> NetLogSource:
        """A complete simple request flow."""
        source = self.source(source_type)
        self.add(time, EventType.REQUEST_ALIVE, source, EventPhase.BEGIN)
        if source_type is SourceType.WEB_SOCKET:
            self.add(
                time,
                EventType.WEB_SOCKET_SEND_HANDSHAKE_REQUEST,
                source,
                EventPhase.BEGIN,
                url=url,
                method=method,
            )
        else:
            self.add(
                time,
                EventType.URL_REQUEST_START_JOB,
                source,
                EventPhase.BEGIN,
                url=url,
                method=method,
            )
        for hop in redirects:
            self.add(
                time + 1.0,
                EventType.URL_REQUEST_REDIRECTED,
                source,
                location=hop,
            )
        self.add(time + 2.0, EventType.REQUEST_ALIVE, source, EventPhase.END)
        return source

    def page_commit(self, url: str, *, time: float = 0.0) -> None:
        source = self.source()
        self.add(time, EventType.PAGE_LOAD_COMMITTED, source, url=url)


@pytest.fixture
def events() -> EventBuilder:
    return EventBuilder()
