"""Tests for the command-line interface."""

import json

import pytest

from repro.browser.chrome import SimulatedChrome
from repro.browser.page import Page, PlannedRequest
from repro.browser.useragent import identity_for
from repro.cli import main
from repro.netlog import dumps


class _Script:
    name = "s"

    def __init__(self, urls):
        self._urls = urls

    def plan(self, context):
        return [PlannedRequest(url=u) for u in self._urls]


@pytest.fixture
def netlog_file(tmp_path):
    chrome = SimulatedChrome(identity_for("windows"))
    page = Page(
        url="https://site.example/",
        scripts=[_Script(["http://localhost:8000/setuid"])],
    )
    visit = chrome.visit(page)
    path = tmp_path / "netlog.json"
    path.write_text(dumps(visit.events))
    return path


class TestAnalyze:
    def test_detects_and_classifies(self, netlog_file, capsys):
        assert main(["analyze", str(netlog_file)]) == 0
        out = capsys.readouterr().out
        assert "localhost" in out
        assert "Developer Errors" in out

    def test_clean_log(self, tmp_path, capsys):
        chrome = SimulatedChrome(identity_for("linux"))
        visit = chrome.visit(Page(url="https://clean.example/"))
        path = tmp_path / "clean.json"
        path.write_text(dumps(visit.events))
        assert main(["analyze", str(path)]) == 0
        assert "no localhost or LAN traffic" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        assert main(["analyze", str(path)]) == 2
        assert "not a NetLog" in capsys.readouterr().err

    def test_non_netlog_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        assert main(["analyze", str(path)]) == 2


class TestStudy:
    def test_top2020_headlines(self, capsys):
        assert main(["study", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "localhost-active sites: 107" in out
        assert "LAN-active sites: 9" in out
        assert "Fraud Detection" in out


class TestTableCommand:
    def test_static_table4(self, capsys):
        assert main(["table", "4"]) == 0
        assert "TeamViewer" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(["table", "5", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "ebay.com" in out
        assert "Fraud Detection" in out

    def test_table9(self, capsys):
        assert main(["table", "9", "--scale", "0.002"]) == 0
        assert "wangzonghang.cn" in capsys.readouterr().out

    def test_invalid_table_number(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "12"])


class TestFigureCommand:
    def test_figure3(self, capsys):
        assert main(["figure", "3", "--scale", "0.002"]) == 0
        assert "rank CDFs" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure", "5", "--scale", "0.002"]) == 0
        assert "seconds to first request" in capsys.readouterr().out
