"""Tests for the command-line interface."""

import json

import pytest

from repro.browser.chrome import SimulatedChrome
from repro.browser.page import Page, PlannedRequest
from repro.browser.useragent import identity_for
from repro.cli import main
from repro.netlog import dumps


class _Script:
    name = "s"

    def __init__(self, urls):
        self._urls = urls

    def plan(self, context):
        return [PlannedRequest(url=u) for u in self._urls]


@pytest.fixture
def netlog_file(tmp_path):
    chrome = SimulatedChrome(identity_for("windows"))
    page = Page(
        url="https://site.example/",
        scripts=[_Script(["http://localhost:8000/setuid"])],
    )
    visit = chrome.visit(page)
    path = tmp_path / "netlog.json"
    path.write_text(dumps(visit.events))
    return path


class TestAnalyze:
    def test_detects_and_classifies(self, netlog_file, capsys):
        assert main(["analyze", str(netlog_file)]) == 0
        out = capsys.readouterr().out
        assert "localhost" in out
        assert "Developer Errors" in out

    def test_clean_log(self, tmp_path, capsys):
        chrome = SimulatedChrome(identity_for("linux"))
        visit = chrome.visit(Page(url="https://clean.example/"))
        path = tmp_path / "clean.json"
        path.write_text(dumps(visit.events))
        assert main(["analyze", str(path)]) == 0
        assert "no localhost or LAN traffic" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        assert main(["analyze", str(path)]) == 2
        assert "not a NetLog" in capsys.readouterr().err

    def test_non_netlog_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        assert main(["analyze", str(path)]) == 2


class TestStudy:
    def test_top2020_headlines(self, capsys):
        assert main(["study", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "localhost-active sites: 107" in out
        assert "LAN-active sites: 9" in out
        assert "Fraud Detection" in out


class TestOutputStreams:
    """Diagnostics belong on stderr; stdout carries only results."""

    def test_study_progress_chatter_on_stderr(self, capsys):
        assert main(["study", "--scale", "0.002"]) == 0
        captured = capsys.readouterr()
        assert "crawling top2020" not in captured.out
        assert "crawling top2020" in captured.err
        # The final progress summary is diagnostics too.
        assert "visits " in captured.err
        assert "localhost-active sites" in captured.out

    def test_analyze_salvage_warning_on_stderr(self, netlog_file, capsys):
        # Regression: the salvage warning used to land on stdout, where
        # it corrupted piped results.
        truncated = netlog_file.read_text()[:-4]
        netlog_file.write_text(truncated)
        assert main(["analyze", str(netlog_file)]) == 0
        captured = capsys.readouterr()
        assert "damaged NetLog salvaged" in captured.err
        assert "damaged NetLog salvaged" not in captured.out
        assert "request flows" in captured.out


class TestStudyObservability:
    def test_metrics_and_trace_written(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        code = main(
            [
                "study", "--scale", "0.002", "--workers", "2",
                "--metrics-out", str(metrics), "--trace-out", str(trace),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "metrics snapshot written" in captured.err
        assert "trace written" in captured.err
        document = json.loads(metrics.read_text())
        assert document["format"] == "repro-metrics-v1"
        names = {m["name"] for m in document["metrics"]}
        assert "repro_visits_total" in names
        assert "repro_executor_dispatched_total" in names
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("name") == "visit" for e in events)

    def test_observability_does_not_change_results(self, tmp_path, capsys):
        assert main(["study", "--scale", "0.002"]) == 0
        plain = capsys.readouterr().out
        code = main(
            [
                "study", "--scale", "0.002",
                "--metrics-out", str(tmp_path / "m.json"),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == plain

    def test_prometheus_extension_selects_text_format(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        code = main(
            ["study", "--scale", "0.002", "--metrics-out", str(prom)]
        )
        assert code == 0
        text = prom.read_text()
        assert "# TYPE repro_visits_total counter" in text


class TestMetricsCommand:
    def test_renders_snapshot_table(self, tmp_path, capsys):
        snapshot = tmp_path / "m.json"
        assert main(
            ["study", "--scale", "0.002", "--metrics-out", str(snapshot)]
        ) == 0
        capsys.readouterr()
        assert main(["metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "metric" in out and "labels" in out and "value" in out
        assert "repro_visits_total" in out
        assert "os=linux" in out

    def test_missing_file_rejected(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_foreign_json_rejected(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        assert main(["metrics", str(path)]) == 2
        assert "not a metrics snapshot" in capsys.readouterr().err


class TestTableCommand:
    def test_static_table4(self, capsys):
        assert main(["table", "4"]) == 0
        assert "TeamViewer" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(["table", "5", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "ebay.com" in out
        assert "Fraud Detection" in out

    def test_table9(self, capsys):
        assert main(["table", "9", "--scale", "0.002"]) == 0
        assert "wangzonghang.cn" in capsys.readouterr().out

    def test_invalid_table_number(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "12"])


class TestFigureCommand:
    def test_figure3(self, capsys):
        assert main(["figure", "3", "--scale", "0.002"]) == 0
        assert "rank CDFs" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure", "5", "--scale", "0.002"]) == 0
        assert "seconds to first request" in capsys.readouterr().out


class TestStudySupervised:
    def test_workers_flag_runs_supervised(self, capsys):
        assert main(["study", "--scale", "0.001", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "supervision:" in out
        assert "2 workers" in out

    def test_sequential_run_prints_no_supervision(self, capsys):
        assert main(["study", "--scale", "0.001"]) == 0
        assert "supervision:" not in capsys.readouterr().out

    def test_visit_deadline_below_window_rejected(self, capsys):
        assert (
            main(
                [
                    "study", "--scale", "0.001", "--workers", "2",
                    "--visit-deadline", "1000",
                ]
            )
            != 0
        )
        err = capsys.readouterr().err
        assert "monitor window" in err

    def test_negative_workers_rejected(self, capsys):
        assert main(["study", "--scale", "0.001", "--workers", "-1"]) == 2
        err = capsys.readouterr().err
        assert "--workers must be >= 0" in err
        # The error explains the 0 sentinel, mirroring the --help text.
        assert "sequential loop" in err

    def test_zero_retries_rejected(self, capsys):
        # Symmetric with --workers: out-of-range values get one clear
        # line naming the flag, the value, and the sentinel meaning.
        assert main(["study", "--scale", "0.001", "--retries", "0"]) == 2
        err = capsys.readouterr().err
        assert "--retries must be >= 1" in err
        assert "single attempt" in err

    def test_workers_zero_is_the_documented_sequential_sentinel(self, capsys):
        assert main(["study", "--scale", "0.001", "--workers", "0"]) == 0
        assert "supervision:" not in capsys.readouterr().out

    def test_workers_help_documents_sentinel(self, capsys):
        with pytest.raises(SystemExit):
            main(["study", "--help"])
        # Collapse argparse's line wrapping before matching phrases.
        help_text = " ".join(capsys.readouterr().out.split())
        assert "0 is a sentinel meaning the plain sequential loop" in help_text


class TestStudySharded:
    @staticmethod
    def _summary_tail(out: str) -> str:
        # Everything from the RQ summary onward is shared between the
        # serial and sharded paths and must be byte-identical.
        marker = "localhost-active sites:"
        assert marker in out
        return out[out.index(marker):]

    def test_sharded_study_output_matches_serial(self, tmp_path, capsys):
        assert main(["study", "--scale", "0.002"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                [
                    "study", "--scale", "0.002", "--shards", "2",
                    "--db", str(tmp_path / "rollup.db"),
                    "--shard-dir", str(tmp_path / "shards"),
                ]
            )
            == 0
        )
        sharded_out = capsys.readouterr().out
        assert "fabric: 2 shard processes" in sharded_out
        assert self._summary_tail(sharded_out) == self._summary_tail(
            serial_out
        )

    def test_negative_shards_rejected(self, capsys):
        assert main(["study", "--scale", "0.001", "--shards", "-1"]) == 2
        err = capsys.readouterr().err
        # Symmetric with --workers: name the flag, the value, the sentinel.
        assert "--shards must be >= 0" in err
        assert "os.cpu_count()" in err

    def test_shards_and_workers_mutually_exclusive(self, capsys):
        assert (
            main(
                [
                    "study", "--scale", "0.001",
                    "--shards", "2", "--workers", "2",
                ]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_shard_dir_requires_shards(self, tmp_path, capsys):
        assert (
            main(
                [
                    "study", "--scale", "0.001",
                    "--shard-dir", str(tmp_path / "shards"),
                ]
            )
            == 2
        )
        assert "--shard-dir requires --shards" in capsys.readouterr().err

    def test_shards_help_documents_sentinel(self, capsys):
        with pytest.raises(SystemExit):
            main(["study", "--help"])
        help_text = " ".join(capsys.readouterr().out.split())
        assert "--shards" in help_text
        assert "0 is a sentinel meaning auto-size from os.cpu_count()" in help_text


class TestFaultPlanErrors:
    def _run(self, tmp_path, capsys, text):
        path = tmp_path / "plan.json"
        path.write_text(text)
        code = main(
            ["study", "--scale", "0.001", "--fault-plan", str(path)]
        )
        return code, capsys.readouterr().err

    def test_unknown_kind_is_one_clear_line(self, tmp_path, capsys):
        code, err = self._run(
            tmp_path, capsys, '{"seed": "x", "faults": [{"kind": "wedge"}]}'
        )
        assert code == 2
        assert err.startswith("error: invalid fault plan: faults[0]")
        assert "wedge" in err and "known kinds" in err
        assert "Traceback" not in err

    def test_bad_field_named(self, tmp_path, capsys):
        code, err = self._run(
            tmp_path,
            capsys,
            '{"faults": [{"kind": "dns", "rate": "lots"}]}',
        )
        assert code == 2
        assert "'rate'" in err and "Traceback" not in err

    def test_invalid_json_reported(self, tmp_path, capsys):
        code, err = self._run(tmp_path, capsys, "{not json")
        assert code == 2
        assert "invalid fault plan" in err

    def test_missing_file_reported(self, tmp_path, capsys):
        code = main(
            [
                "study", "--scale", "0.001",
                "--fault-plan", "/nonexistent/plan.json",
            ]
        )
        assert code == 2
        assert "cannot read fault plan" in capsys.readouterr().err


class TestDeadletterCommand:
    def _quarantine_db(self, tmp_path):
        path = str(tmp_path / "telemetry.db")
        plan = tmp_path / "plan.json"
        # Seed chosen so the rate selects exactly one domain at this
        # scale; hangs cost real wall time, so keep the set tiny and the
        # wall deadline short.
        plan.write_text(
            json.dumps(
                {
                    "seed": "cli-dl-2",
                    "faults": [{"kind": "hang", "rate": 0.02, "times": 10}],
                }
            )
        )
        code = main(
            [
                "study", "--scale", "0.0001", "--workers", "2",
                "--wall-deadline", "0.15",
                "--fault-plan", str(plan), "--db", path,
            ]
        )
        assert code == 0
        return path

    def test_list_and_retry_round_trip(self, tmp_path, capsys):
        path = self._quarantine_db(tmp_path)
        capsys.readouterr()

        assert main(["deadletter", "list", "--db", path]) == 0
        out = capsys.readouterr().out
        assert "VISIT_DEADLINE" in out

        assert main(["deadletter", "retry", "--db", path]) == 0
        assert "re-queued" in capsys.readouterr().out

        assert main(["deadletter", "list", "--db", path]) == 0
        assert "empty" in capsys.readouterr().out

    def test_missing_db_rejected(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.db")
        assert main(["deadletter", "list", "--db", missing]) == 2
        assert "no such database" in capsys.readouterr().err

    def test_retry_on_empty_queue_exits_zero(self, tmp_path, capsys):
        # Regression: an empty queue used to be indistinguishable from a
        # failed retry.  It must exit 0 with a clear one-liner.
        path = str(tmp_path / "telemetry.db")
        assert main(["study", "--scale", "0.0001", "--db", path]) == 0
        capsys.readouterr()
        assert main(["deadletter", "retry", "--db", path]) == 0
        out = capsys.readouterr().out
        assert "nothing to retry" in out

    def test_retry_with_unmatched_filter_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "telemetry.db")
        assert main(["study", "--scale", "0.0001", "--db", path]) == 0
        capsys.readouterr()
        code = main(
            ["deadletter", "retry", "--db", path, "--domain", "nosuch.example"]
        )
        assert code == 0
        assert "nothing to retry" in capsys.readouterr().out


class TestFsckCommand:
    def _archived_study(self, tmp_path):
        db = str(tmp_path / "telemetry.db")
        netlogs = str(tmp_path / "netlogs")
        code = main(
            [
                "study", "--scale", "0.002", "--db", db,
                "--netlog-dir", netlogs,
            ]
        )
        assert code == 0
        return db, netlogs

    def _corrupt_one_row(self, db):
        import sqlite3

        conn = sqlite3.connect(db)
        domain = conn.execute(
            "UPDATE visits SET rank = rank + 7 WHERE visit_id = "
            "(SELECT MIN(visit_id) FROM visits) RETURNING domain"
        ).fetchone()[0]
        conn.commit()
        conn.close()
        return domain

    def test_clean_store_passes(self, tmp_path, capsys):
        db, netlogs = self._archived_study(tmp_path)
        capsys.readouterr()
        assert main(["fsck", "--db", db, "--netlog-dir", netlogs]) == 0
        out = capsys.readouterr().out
        assert "no integrity violations found" in out
        assert "campaign digest top2020:" in out

    def test_detect_only_exits_nonzero_with_hint(self, tmp_path, capsys):
        db, netlogs = self._archived_study(tmp_path)
        domain = self._corrupt_one_row(db)
        capsys.readouterr()
        assert main(["fsck", "--db", db, "--netlog-dir", netlogs]) == 1
        captured = capsys.readouterr()
        assert "digest-mismatch" in captured.out
        assert domain in captured.out
        assert "--repair" in captured.err

    def test_repair_fixes_and_rescan_is_clean(self, tmp_path, capsys):
        db, netlogs = self._archived_study(tmp_path)
        self._corrupt_one_row(db)
        capsys.readouterr()
        code = main(["fsck", "--db", db, "--netlog-dir", netlogs, "--repair"])
        assert code == 0
        assert "repaired (reparse)" in capsys.readouterr().out
        assert main(["fsck", "--db", db, "--netlog-dir", netlogs]) == 0

    def test_json_report(self, tmp_path, capsys):
        db, netlogs = self._archived_study(tmp_path)
        self._corrupt_one_row(db)
        capsys.readouterr()
        assert main(["fsck", "--db", db, "--netlog-dir", netlogs, "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is False
        assert document["findings"][0]["kind"] == "digest-mismatch"

    def test_missing_db_rejected(self, tmp_path, capsys):
        assert main(["fsck", "--db", str(tmp_path / "absent.db")]) == 2
        assert "no such database" in capsys.readouterr().err

    def test_missing_archive_dir_rejected(self, tmp_path, capsys):
        db, _ = self._archived_study(tmp_path)
        capsys.readouterr()
        code = main(
            ["fsck", "--db", db, "--netlog-dir", str(tmp_path / "nowhere")]
        )
        assert code == 2
        assert "no such archive directory" in capsys.readouterr().err

    def test_db_only_audit_works_without_archive(self, tmp_path, capsys):
        db, _ = self._archived_study(tmp_path)
        capsys.readouterr()
        assert main(["fsck", "--db", db]) == 0
        assert "0 archive document(s)" in capsys.readouterr().out
