"""Tests for the report and validate CLI commands."""

from repro.cli import main


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Knock and Talk — reproduction report" in out
        assert "RQ1" in out and "Malicious webpages" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["report", "--scale", "0.002", "-o", str(target)]) == 0
        assert target.exists()
        text = target.read_text()
        assert "107 localhost-active sites" in text
        assert "report written" in capsys.readouterr().out


class TestValidateCommand:
    def test_validate_passes_at_small_scale(self, capsys):
        assert main(["validate", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "[FAIL]" not in out
        assert "top2020" in out and "malicious" in out


class TestLintCommand:
    def test_lint_dev_error_site(self, capsys):
        assert main(["lint", "zakupki.gov.ru"]) == 0
        out = capsys.readouterr().out
        assert "ERROR" in out
        assert "/record/state" in out

    def test_lint_native_app_site(self, capsys):
        assert main(["lint", "faceit.com"]) == 0
        out = capsys.readouterr().out
        assert "INFO" in out and "Native Application" in out

    def test_lint_unknown_domain(self, capsys):
        assert main(["lint", "nosuch.example"]) == 2
        assert "not in any seeded population" in capsys.readouterr().err
