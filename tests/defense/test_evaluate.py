"""Tests for PNA policy evaluation against measured findings."""

from repro.core.signatures import BehaviorClass
from repro.defense.evaluate import evaluate_policy, native_app_directory
from repro.defense.pna import PrivateNetworkAccessPolicy


class TestNativeAppDirectory:
    def test_directory_covers_native_endpoints_only(self, top2020_result):
        directory = native_app_directory(top2020_result.findings)
        assert directory.acknowledges("localhost", 28337)  # FACEIT
        assert directory.acknowledges("localhost", 6463)  # Discord
        assert not directory.acknowledges("localhost", 3389)  # TM scan target


class TestEvaluatePolicy:
    def test_scanners_blocked_native_preserved(self, top2020_result):
        policy = PrivateNetworkAccessPolicy(
            directory=native_app_directory(top2020_result.findings)
        )
        evaluation = evaluate_policy(
            top2020_result.findings, policy, label="pna+native-opt-in"
        )
        fraud = evaluation.impacts[BehaviorClass.FRAUD_DETECTION]
        assert fraud.block_rate > 0.9  # probes die; telemetry upload is public
        assert fraud.sites_fully_blocked == 0 or fraud.sites == 35
        native = evaluation.impacts[BehaviorClass.NATIVE_APPLICATION]
        assert native.sites_fully_blocked == 0
        assert native.block_rate == 0.0
        dev = evaluation.impacts[BehaviorClass.DEVELOPER_ERROR]
        assert dev.requests_blocked > 0

    def test_without_opt_in_everything_local_is_blocked(self, top2020_result):
        policy = PrivateNetworkAccessPolicy()
        evaluation = evaluate_policy(
            top2020_result.findings, policy, label="pna-no-adoption"
        )
        for impact in evaluation.impacts.values():
            local_requests = impact.requests
            if local_requests:
                assert impact.requests_blocked == local_requests

    def test_malicious_population_blocked_by_insecure_context(
        self, malicious_result
    ):
        # Malicious pages load over http -> rule 1 alone kills their local
        # traffic under PNA.
        policy = PrivateNetworkAccessPolicy(
            directory=native_app_directory(malicious_result.findings)
        )
        evaluation = evaluate_policy(
            malicious_result.findings, policy, label="pna-malicious"
        )
        assert evaluation.total_requests_blocked > 0
        for impact in evaluation.impacts.values():
            assert impact.requests_blocked == impact.requests

    def test_render_contains_classes(self, top2020_result):
        policy = PrivateNetworkAccessPolicy()
        evaluation = evaluate_policy(top2020_result.findings, policy, label="x")
        text = evaluation.render()
        assert "Fraud Detection" in text
        assert "Native Application" in text
