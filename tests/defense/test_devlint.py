"""Tests for the §5.4 developer lint tool."""

from repro.core.signatures import BehaviorClass
from repro.defense.devlint import LintSeverity, lint_website
from repro.web.behaviors import (
    PortScanBehavior,
    PublicResourceBehavior,
    ResourceFetchBehavior,
)
from repro.web.seeds import TM_PORTS
from repro.web.website import Website

ALL = frozenset({"windows", "linux", "mac"})


class TestCleanSites:
    def test_no_behaviors(self):
        report = lint_website(Website("clean.example"))
        assert report.clean
        assert "no local network requests" in report.render()

    def test_public_only_behaviors(self):
        site = Website(
            "publicish.example",
            behaviors=[
                PublicResourceBehavior(
                    name="cdn", urls=("https://cdn.example/app.js",)
                )
            ],
        )
        assert lint_website(site).clean


class TestDevErrorFlagging:
    def test_remnant_fetch_is_an_error(self):
        site = Website(
            "oops.example",
            behaviors=[
                ResourceFetchBehavior(
                    name="stale",
                    urls=("http://127.0.0.1:8888/wp-content/uploads/x.jpg",),
                    active_oses=ALL,
                )
            ],
        )
        report = lint_website(site)
        (finding,) = report.findings
        assert finding.severity is LintSeverity.ERROR
        assert finding.behavior is BehaviorClass.DEVELOPER_ERROR
        assert report.count(LintSeverity.ERROR) == 1
        assert "remnant" in finding.advice

    def test_os_conditional_remnant_reports_its_oses(self):
        # The §5.4 point: lint must sweep all user agents.
        site = Website(
            "winonly.example",
            behaviors=[
                ResourceFetchBehavior(
                    name="stale",
                    urls=("http://127.0.0.1/banner.png",),
                    active_oses=frozenset({"windows"}),
                )
            ],
        )
        (finding,) = lint_website(site).findings
        assert finding.oses == ("windows",)


class TestIntentionalTraffic:
    def test_anti_fraud_scan_is_informational(self):
        site = Website(
            "shop.example",
            behaviors=[
                PortScanBehavior(
                    name="threatmetrix@h.online-metrix.net",
                    scheme="wss",
                    ports=TM_PORTS,
                    active_oses=frozenset({"windows"}),
                )
            ],
        )
        report = lint_website(site)
        assert len(report.findings) == 14
        assert report.count(LintSeverity.INFO) == 14
        assert report.count(LintSeverity.ERROR) == 0
        assert all(
            f.behavior is BehaviorClass.FRAUD_DETECTION
            for f in report.findings
        )

    def test_internal_pages_are_linted_too(self):
        from repro.web.internal import LOGIN_PAGE_SCANNERS, login_scan_behavior

        scanner = LOGIN_PAGE_SCANNERS[0]
        site = Website(
            scanner.domain,
            internal_pages={"/signin": [login_scan_behavior(scanner)]},
        )
        report = lint_website(site)
        assert not report.clean
        assert all(f.page == "/signin" for f in report.findings)


class TestSeededPopulationLint:
    def test_lint_agrees_with_crawl_findings(self, top2020_population):
        """Every seeded active site lints dirty; every filler site clean."""
        dirty = 0
        for domain in sorted(top2020_population.active_domains):
            report = lint_website(top2020_population.website(domain))
            assert not report.clean, domain
            dirty += 1
        assert dirty == len(top2020_population.active_domains)

        filler = next(
            w
            for w in top2020_population.websites
            if w.domain not in top2020_population.active_domains
        )
        assert lint_website(filler).clean

    def test_render_shape(self, top2020_population):
        report = lint_website(top2020_population.website("rkn.gov.ru"))
        text = report.render()
        assert "ERROR" in text
        assert "/xook.js" in text
