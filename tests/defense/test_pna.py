"""Tests for the Private Network Access policy model."""

from repro.core.addresses import Locality, parse_target
from repro.defense.pna import (
    AddressSpace,
    PnaServiceDirectory,
    PrivateNetworkAccessPolicy,
    Verdict,
    is_private_network_request,
)


class TestAddressSpace:
    def test_mapping_from_locality(self):
        assert AddressSpace.of(Locality.LOCALHOST) is AddressSpace.LOCAL
        assert AddressSpace.of(Locality.LAN) is AddressSpace.PRIVATE
        assert AddressSpace.of(Locality.PUBLIC) is AddressSpace.PUBLIC

    def test_private_network_request_ordering(self):
        assert is_private_network_request(AddressSpace.PUBLIC, AddressSpace.LOCAL)
        assert is_private_network_request(AddressSpace.PUBLIC, AddressSpace.PRIVATE)
        assert is_private_network_request(AddressSpace.PRIVATE, AddressSpace.LOCAL)
        assert not is_private_network_request(
            AddressSpace.PUBLIC, AddressSpace.PUBLIC
        )
        assert not is_private_network_request(
            AddressSpace.LOCAL, AddressSpace.PUBLIC
        )
        assert not is_private_network_request(
            AddressSpace.LOCAL, AddressSpace.LOCAL
        )


class TestPolicy:
    def test_public_requests_always_allowed(self):
        policy = PrivateNetworkAccessPolicy()
        decision = policy.evaluate(
            parse_target("https://cdn.example/app.js"), initiator_secure=False
        )
        assert decision.allowed
        assert policy.blocked == 0

    def test_insecure_context_blocked_first(self):
        policy = PrivateNetworkAccessPolicy()
        decision = policy.evaluate(
            parse_target("http://localhost:8080/"), initiator_secure=False
        )
        assert decision.verdict is Verdict.BLOCKED_INSECURE_CONTEXT
        assert not decision.preflight_sent

    def test_preflight_without_acknowledgement_blocks(self):
        policy = PrivateNetworkAccessPolicy()
        decision = policy.evaluate(
            parse_target("wss://localhost:5939/"), initiator_secure=True
        )
        assert decision.verdict is Verdict.BLOCKED_PREFLIGHT_FAILED
        assert decision.preflight_sent

    def test_opted_in_service_allowed(self):
        directory = PnaServiceDirectory()
        directory.opt_in("localhost", 6463)
        policy = PrivateNetworkAccessPolicy(directory=directory)
        decision = policy.evaluate(
            parse_target("ws://localhost:6463/?v=1"), initiator_secure=True
        )
        assert decision.allowed
        assert decision.preflight_sent

    def test_opt_in_is_per_port(self):
        directory = PnaServiceDirectory()
        directory.opt_in("localhost", 6463)
        policy = PrivateNetworkAccessPolicy(directory=directory)
        assert not policy.evaluate(
            parse_target("ws://localhost:6464/?v=1"), initiator_secure=True
        ).allowed

    def test_private_initiator_to_local_still_gated(self):
        policy = PrivateNetworkAccessPolicy()
        decision = policy.evaluate(
            parse_target("http://127.0.0.1:80/"),
            initiator_secure=True,
            initiator_space=AddressSpace.PRIVATE,
        )
        assert decision.verdict is Verdict.BLOCKED_PREFLIGHT_FAILED

    def test_counters(self):
        policy = PrivateNetworkAccessPolicy()
        policy.evaluate(parse_target("https://x.example/"), initiator_secure=True)
        policy.evaluate(parse_target("http://localhost/"), initiator_secure=True)
        assert policy.decisions == 2
        assert policy.blocked == 1


class TestPromptMode:
    def test_user_grant_allows(self):
        policy = PrivateNetworkAccessPolicy(
            prompt_mode=True, prompt_grants={"localhost": True}
        )
        assert policy.evaluate(
            parse_target("http://localhost:9000/"), initiator_secure=False
        ).allowed

    def test_user_denial_blocks(self):
        policy = PrivateNetworkAccessPolicy(prompt_mode=True)
        decision = policy.evaluate(
            parse_target("http://192.168.1.1/admin"), initiator_secure=True
        )
        assert decision.verdict is Verdict.BLOCKED_USER_DENIED
