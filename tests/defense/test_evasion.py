"""Tests for the port-moving evasion study (§5.1 extension)."""

import pytest

from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS
from repro.defense.evasion import (
    HEADLESS_CRAWLER_PROFILE,
    REAL_USER_PROFILE,
    STEALTH_CRAWLER_PROFILE,
    AttackerHost,
    AutomationSignal,
    FingerprintGate,
    PortStrategy,
    VisitorProfile,
    detection_rate,
    evasion_sweep,
    fingerprinting_sweep,
    host_is_flagged,
)


class TestAttackerHost:
    def test_standard_strategy_keeps_ports(self):
        host = AttackerHost(label="a", services=(3389, 5939))
        assert host.listening_ports() == {3389, 5939}

    def test_shifted_strategy_moves_ports(self):
        host = AttackerHost(
            label="a", services=(3389,), strategy=PortStrategy.SHIFTED
        )
        assert host.listening_ports() == {13389}

    def test_shifted_strategy_stays_in_port_range(self):
        host = AttackerHost(
            label="a", services=(60_000,), strategy=PortStrategy.SHIFTED
        )
        (port,) = host.listening_ports()
        assert 0 < port <= 65_535

    def test_randomized_strategy_is_deterministic_per_label(self):
        a = AttackerHost(
            label="bot-1", services=(4444,), strategy=PortStrategy.RANDOMIZED
        )
        b = AttackerHost(
            label="bot-1", services=(4444,), strategy=PortStrategy.RANDOMIZED
        )
        assert a.listening_ports() == b.listening_ports()
        assert all(p >= 49_152 for p in a.listening_ports())


class TestDetection:
    def test_standard_hosts_are_flagged(self):
        host = AttackerHost(label="rdp-bot", services=(3389,))
        assert host_is_flagged(host, THREATMETRIX_PORTS)

    def test_moved_hosts_evade(self):
        host = AttackerHost(
            label="rdp-bot",
            services=(3389,),
            strategy=PortStrategy.RANDOMIZED,
        )
        assert not host_is_flagged(host, THREATMETRIX_PORTS)

    def test_detection_rate_over_mixed_population(self):
        hosts = [
            AttackerHost(label=f"s{i}", services=(4444,)) for i in range(6)
        ] + [
            AttackerHost(
                label=f"r{i}",
                services=(4444,),
                strategy=PortStrategy.RANDOMIZED,
            )
            for i in range(4)
        ]
        assert detection_rate(hosts, BIGIP_ASM_PORTS) == pytest.approx(0.6)

    def test_empty_population(self):
        assert detection_rate([], BIGIP_ASM_PORTS) == 0.0


class TestEvasionSweep:
    def test_sweep_monotonically_decreases(self):
        points = evasion_sweep(
            population=100,
            services=(3389, 5939),
            scan_ports=THREATMETRIX_PORTS,
        )
        rates = [p.detection_rate for p in points]
        assert rates[0] == 1.0
        assert rates[-1] == 0.0
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_fraction_endpoints(self):
        points = evasion_sweep(
            population=40,
            services=(4444,),
            scan_ports=BIGIP_ASM_PORTS,
            fractions=(0.0, 0.5, 1.0),
        )
        assert [p.evading_fraction for p in points] == [0.0, 0.5, 1.0]
        assert points[1].detection_rate == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            evasion_sweep(
                population=0, services=(1,), scan_ports=(1,)
            )
        with pytest.raises(ValueError):
            evasion_sweep(
                population=5, services=(1,), scan_ports=(1,), fractions=(2.0,)
            )


class TestAutomationSignals:
    def test_real_user_exposes_no_signals(self):
        assert REAL_USER_PROFILE.signals() == frozenset()

    def test_headless_crawler_exposes_every_signal(self):
        assert HEADLESS_CRAWLER_PROFILE.signals() == {
            AutomationSignal.HEADLESS_UA,
            AutomationSignal.MISSING_PLUGINS,
            AutomationSignal.WEBDRIVER_FLAG,
        }

    def test_stealth_crawler_still_leaks_webdriver_flag(self):
        assert STEALTH_CRAWLER_PROFILE.signals() == {
            AutomationSignal.WEBDRIVER_FLAG
        }

    def test_missing_plugins_alone(self):
        profile = VisitorProfile(
            label="fresh-profile", user_agent="Mozilla/5.0 Chrome/86.0"
        )
        assert profile.signals() == {AutomationSignal.MISSING_PLUGINS}


class TestFingerprintGate:
    def test_strict_gate_blocks_any_signal(self):
        gate = FingerprintGate()
        assert gate.scan_fires(REAL_USER_PROFILE)
        assert not gate.scan_fires(STEALTH_CRAWLER_PROFILE)
        assert not gate.scan_fires(HEADLESS_CRAWLER_PROFILE)

    def test_sloppy_gate_needs_corroboration(self):
        gate = FingerprintGate(max_signals=1)
        assert gate.scan_fires(STEALTH_CRAWLER_PROFILE)
        assert not gate.scan_fires(HEADLESS_CRAWLER_PROFILE)


class TestFingerprintingSweep:
    def test_crawler_rate_collapses_while_user_rate_holds(self):
        points = fingerprinting_sweep(sites=100)
        crawler = [p.crawler_observed_rate for p in points]
        user = [p.user_observed_rate for p in points]
        assert crawler[0] == 1.0 and crawler[-1] == 0.0
        assert all(a >= b for a, b in zip(crawler, crawler[1:]))
        assert user == [1.0] * len(points)

    def test_visibility_gap_equals_gating_fraction(self):
        points = fingerprinting_sweep(sites=40, fractions=(0.0, 0.5, 1.0))
        assert [p.visibility_gap for p in points] == pytest.approx(
            [0.0, 0.5, 1.0]
        )

    def test_sloppy_gate_spares_stealth_crawler(self):
        points = fingerprinting_sweep(
            sites=10,
            crawler=STEALTH_CRAWLER_PROFILE,
            gate=FingerprintGate(max_signals=1),
            fractions=(1.0,),
        )
        assert points[0].crawler_observed_rate == 1.0
        assert points[0].visibility_gap == 0.0

    def test_deterministic_across_calls(self):
        assert fingerprinting_sweep(sites=33) == fingerprinting_sweep(sites=33)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fingerprinting_sweep(sites=0)
        with pytest.raises(ValueError):
            fingerprinting_sweep(sites=5, fractions=(-0.1,))
