"""ddmin shrinker unit tests (synthetic predicates — no pipeline runs)."""

import pytest

from repro.chaos.shrink import MinimalRepro, shrink_plan
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

KINDS = (
    FaultKind.DNS,
    FaultKind.TLS,
    FaultKind.CONNECTION_RESET,
    FaultKind.STORAGE_WRITE,
    FaultKind.DISK_FULL,
)


def _plan(*kinds: FaultKind) -> FaultPlan:
    return FaultPlan(
        seed="shrink-test",
        faults=tuple(FaultSpec(kind=kind, rate=1.0) for kind in kinds),
    )


def _fails_when(required: set[FaultKind]):
    def predicate(plan: FaultPlan) -> bool:
        present = {spec.kind for spec in plan.faults}
        return required <= present

    return predicate


class TestDdmin:
    def test_reduces_to_the_guilty_pair(self):
        result = shrink_plan(
            _plan(*KINDS), _fails_when({FaultKind.DNS, FaultKind.TLS})
        )
        assert {s.kind for s in result.plan.faults} == {FaultKind.DNS, FaultKind.TLS}

    def test_reduces_to_a_single_spec(self):
        result = shrink_plan(_plan(*KINDS), _fails_when({FaultKind.DISK_FULL}))
        assert [s.kind for s in result.plan.faults] == [FaultKind.DISK_FULL]

    def test_irreducible_plan_survives_whole(self):
        required = set(KINDS)
        result = shrink_plan(_plan(*KINDS), _fails_when(required))
        assert {s.kind for s in result.plan.faults} == required

    def test_deterministic_across_calls(self):
        runs = [
            shrink_plan(_plan(*KINDS), _fails_when({FaultKind.TLS, FaultKind.DNS}))
            for _ in range(3)
        ]
        texts = {str(r.plan.to_json()) for r in runs}
        assert len(texts) == 1
        assert len({r.iterations for r in runs}) == 1

    def test_preserves_seed_and_spec_shape(self):
        plan = FaultPlan(
            seed="keep-me",
            faults=(
                FaultSpec(kind=FaultKind.CRASH, rate=1.0, at_count=17),
                FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.5, duration=48),
            ),
        )
        result = shrink_plan(plan, _fails_when({FaultKind.CRASH}))
        assert result.plan.seed == "keep-me"
        (spec,) = result.plan.faults
        assert spec.at_count == 17

    def test_iteration_budget_is_respected(self):
        calls = 0

        def expensive(plan: FaultPlan) -> bool:
            nonlocal calls
            calls += 1
            return {s.kind for s in plan.faults} >= {FaultKind.DNS, FaultKind.TLS}

        result = shrink_plan(_plan(*KINDS), expensive, max_iterations=3)
        assert calls <= 3
        # budget exhausted → may not be minimal, but must still fail
        assert {FaultKind.DNS, FaultKind.TLS} <= {s.kind for s in result.plan.faults}

    def test_subset_cache_avoids_duplicate_runs(self):
        seen: list[frozenset] = []

        def predicate(plan: FaultPlan) -> bool:
            key = frozenset(s.kind for s in plan.faults)
            assert key not in seen, f"subset {key} executed twice"
            seen.append(key)
            return {FaultKind.DNS, FaultKind.TLS} <= key

        shrink_plan(_plan(*KINDS), predicate)


class TestMinimalReproFormat:
    def _repro(self) -> MinimalRepro:
        return MinimalRepro(
            driver="campaign",
            schedule_id="pair:dns+tls",
            invariant="campaign-digest-equality",
            detail="digest diverged",
            plan=_plan(FaultKind.DNS, FaultKind.TLS),
            shrink_iterations=6,
            engine_seed="chaos-conformance",
        )

    def test_round_trip(self):
        repro = self._repro()
        clone = MinimalRepro.loads(repro.dumps())
        assert clone == repro
        assert clone.dumps() == repro.dumps()

    def test_bad_format_is_one_line_error(self):
        with pytest.raises(ValueError) as excinfo:
            MinimalRepro.loads('{"format": "bogus"}')
        assert "\n" not in str(excinfo.value)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"driver": ""},
            {"schedule": None},
            {"invariant": 7},
            {"engine_seed": ""},
            {"shrink_iterations": -1},
            {"shrink_iterations": True},
            {"plan": "not-an-object"},
        ],
    )
    def test_field_validation(self, mutation):
        record = self._repro().to_json()
        record.update(mutation)
        with pytest.raises(ValueError) as excinfo:
            MinimalRepro.from_json(record)
        assert "\n" not in str(excinfo.value)

    def test_invalid_json_text(self):
        with pytest.raises(ValueError, match="invalid repro JSON"):
            MinimalRepro.loads("{nope")
