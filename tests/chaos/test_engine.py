"""Engine integration tests on a restricted (fast) kind set."""

import json

import pytest

from repro import obs
from repro.chaos.drivers import CampaignDriver
from repro.chaos.engine import ChaosEngine, EngineBudget, render_coverage
from repro.chaos.registry import SeamDriftError
from repro.chaos.shrink import MinimalRepro
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

FAST_KINDS = (FaultKind.DNS, FaultKind.BIT_FLIP)
FAST_BUDGET = EngineBudget(max_schedules=6, pair_budget=0, sweep_budget=0)


def _fast_engine(ctx, **overrides):
    options = {
        "seed": "engine-test",
        "kinds": FAST_KINDS,
        "budget": FAST_BUDGET,
        "drivers": {"campaign": CampaignDriver(ctx)},
    }
    options.update(overrides)
    return ChaosEngine(ctx, **options)


class TestSweep:
    def test_restricted_sweep_reaches_full_coverage(self, chaos_ctx):
        report = _fast_engine(chaos_ctx).run()
        assert report.coverage_percent == 100.0
        assert report.uncovered == set()
        assert report.violations == []
        assert report.ok
        assert all(not r.violations for r in report.schedules)

    def test_report_round_trips_through_render(self, chaos_ctx):
        report = _fast_engine(chaos_ctx).run()
        record = json.loads(report.dumps())
        text = render_coverage(record)
        for kind in FAST_KINDS:
            assert kind.value in text
        assert "violations: none" in text
        assert f"coverage {record['coverage_percent']}%" in text

    def test_obs_metrics_are_recorded(self, chaos_ctx):
        registry = obs.enable()
        try:
            report = _fast_engine(chaos_ctx).run()
            families = {family.name: family for family in registry.collect()}
        finally:
            obs.disable()
        schedules = families["repro_chaos_schedules_total"]
        assert schedules.samples[("campaign",)] == len(report.schedules)
        fires = families["repro_chaos_seam_fires_total"]
        for kind in FAST_KINDS:
            assert fires.samples[(kind.value,)] >= 1

    def test_kinds_restricted_to_available_drivers(self, chaos_ctx):
        engine = ChaosEngine(
            chaos_ctx, kinds=None, drivers={"campaign": CampaignDriver(chaos_ctx)}
        )
        assert FaultKind.DNS in engine.kinds
        assert FaultKind.WORKER_CRASH not in engine.kinds  # serve-only seam
        assert FaultKind.SHARD_CRASH not in engine.kinds  # fabric-only seam


class TestRenderValidation:
    def test_wrong_format_is_rejected(self):
        with pytest.raises(ValueError, match="unsupported coverage format"):
            render_coverage({"format": "bogus"})


class TestDriftGate:
    def test_registry_drift_fails_engine_construction(self, chaos_ctx, monkeypatch):
        from repro.chaos import registry

        monkeypatch.delitem(registry.SEAM_REGISTRY, FaultKind.DNS)
        with pytest.raises(SeamDriftError, match="dns"):
            _fast_engine(chaos_ctx)


class TestReplay:
    def _repro(self, driver="campaign"):
        return MinimalRepro(
            driver=driver,
            schedule_id="single:dns",
            invariant="campaign-digest-equality",
            detail="digest diverged",
            plan=FaultPlan(
                seed="replay-test",
                faults=(FaultSpec(kind=FaultKind.DNS, rate=1.0, times=2),),
            ),
            shrink_iterations=0,
            engine_seed="engine-test",
        )

    def test_replay_of_masked_plan_reports_nothing(self, chaos_ctx):
        engine = _fast_engine(chaos_ctx)
        assert engine.replay(self._repro()) == []

    def test_replay_rejects_unknown_driver(self, chaos_ctx):
        engine = _fast_engine(chaos_ctx)
        with pytest.raises(ValueError, match="unknown driver"):
            engine.replay(self._repro(driver="fabric"))
