"""Satellite: the shrinker against a planted injector bug, end to end.

A `LeakyDnsInjector` (see conftest) violates digest equality only when DNS
and TLS specs appear together.  The engine must (a) catch the violation
when its pair phase schedules the two kinds jointly, (b) delta-debug the
failing schedule to the minimal two-spec plan, and (c) produce exactly the
same minimal repro bytes on every run and at every worker count.
"""

import json

from repro.chaos.drivers import CampaignDriver
from repro.chaos.engine import ChaosEngine, EngineBudget
from repro.chaos.invariants import evaluate_invariants
from repro.chaos.shrink import MinimalRepro, shrink_plan
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

THREE_KIND_PLAN = FaultPlan(
    seed="planted",
    faults=(
        FaultSpec(kind=FaultKind.DNS, rate=1.0, times=1),
        FaultSpec(kind=FaultKind.TLS, rate=1.0, times=1),
        FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=1.0, times=1),
    ),
)


def _digest_fails(driver):
    def predicate(plan):
        observation = driver.run(plan)
        return any(
            v.invariant == "campaign-digest-equality"
            for v in evaluate_invariants(observation)
        )

    return predicate


def _shrink_once(ctx, workers: int):
    driver = CampaignDriver(
        ctx, name="supervised" if workers else "campaign", workers=workers
    )
    predicate = _digest_fails(driver)
    assert predicate(THREE_KIND_PLAN), "planted bug failed to trigger"
    result = shrink_plan(THREE_KIND_PLAN, predicate)
    return result, json.dumps(result.plan.to_json(), sort_keys=True)


class TestPlantedBugShrinks:
    def test_three_kind_schedule_reduces_to_two_specs(self, planted_ctx):
        result, _ = _shrink_once(planted_ctx, workers=0)
        kinds = {spec.kind for spec in result.plan.faults}
        assert len(result.plan.faults) <= 2
        assert kinds == {FaultKind.DNS, FaultKind.TLS}
        assert result.iterations > 0

    def test_byte_identical_across_runs_and_worker_counts(self, planted_ctx):
        _, sequential_a = _shrink_once(planted_ctx, workers=0)
        _, sequential_b = _shrink_once(planted_ctx, workers=0)
        _, parallel = _shrink_once(planted_ctx, workers=2)
        assert sequential_a == sequential_b
        assert sequential_a == parallel


class TestEngineCatchesPlantedBug:
    def _run_engine(self, ctx, repro_dir):
        engine = ChaosEngine(
            ctx,
            seed="planted-engine",
            kinds=(FaultKind.DNS, FaultKind.TLS),
            budget=EngineBudget(max_schedules=8, pair_budget=1, sweep_budget=0),
            repro_dir=str(repro_dir),
            drivers={"campaign": CampaignDriver(ctx)},
        )
        return engine.run()

    def test_pair_phase_finds_shrinks_and_persists(self, planted_ctx, tmp_path):
        report = self._run_engine(planted_ctx, tmp_path / "repros-a")
        # singles are masked (the bug needs both kinds), the pair is not
        singles = [r for r in report.schedules if r.family == "single"]
        assert all(not r.violations for r in singles)
        assert report.violations, "engine missed the planted pair violation"
        violation = report.violations[0]
        assert violation.schedule_id == "pair:dns+tls"
        assert violation.minimal_specs <= 2
        assert violation.repro_path is not None

        repro = MinimalRepro.load(violation.repro_path)
        assert {s.kind for s in repro.plan.faults} == {FaultKind.DNS, FaultKind.TLS}
        assert repro.invariant == violation.invariant
        assert not report.ok

    def test_repro_file_is_deterministic(self, planted_ctx, tmp_path):
        first = self._run_engine(planted_ctx, tmp_path / "repros-a")
        second = self._run_engine(planted_ctx, tmp_path / "repros-b")
        path_a = first.violations[0].repro_path
        path_b = second.violations[0].repro_path
        with open(path_a, encoding="utf-8") as handle:
            bytes_a = handle.read()
        with open(path_b, encoding="utf-8") as handle:
            bytes_b = handle.read()
        assert bytes_a == bytes_b
