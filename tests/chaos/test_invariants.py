"""Invariant registry unit tests over synthetic observations."""

from repro.chaos.invariants import (
    INVARIANT_REGISTRY,
    RunObservation,
    evaluate_invariants,
)
from repro.faults.plan import FaultKind


def _names(observation) -> list[str]:
    return [v.invariant for v in evaluate_invariants(observation)]


def _clean_campaign_obs(**overrides) -> RunObservation:
    base = RunObservation(
        driver="campaign",
        fired={FaultKind.DNS: 3},
        digest="d" * 64,
        baseline_digest="d" * 64,
        fingerprints=("a", "b"),
        baseline_fingerprints=("a", "b"),
        fsck_findings=0,
        fsck_exit_code=0,
    )
    for name, value in overrides.items():
        setattr(base, name, value)
    return base


class TestRegistryShape:
    def test_registry_names_are_unique(self):
        names = [inv.name for inv in INVARIANT_REGISTRY]
        assert len(names) == len(set(names))

    def test_every_invariant_documents_itself(self):
        assert all(inv.description for inv in INVARIANT_REGISTRY)


class TestCampaignInvariants:
    def test_clean_run_has_no_violations(self):
        assert _names(_clean_campaign_obs()) == []

    def test_digest_divergence(self):
        obs = _clean_campaign_obs(digest="e" * 64)
        assert "campaign-digest-equality" in _names(obs)

    def test_fingerprint_divergence(self):
        obs = _clean_campaign_obs(fingerprints=("a", "c"))
        assert "fingerprint-set-equality" in _names(obs)

    def test_missing_evidence_skips_judgement(self):
        # A serve observation carries no digests; digest invariants must
        # not vote on it.
        obs = RunObservation(driver="serve", wrong_reports=0, unrecovered=0)
        assert _names(obs) == []

    def test_run_error_is_always_a_violation(self):
        obs = RunObservation(driver="campaign", error="RuntimeError: boom")
        assert _names(obs) == ["no-run-error"]


class TestFsckInvariants:
    def test_masked_fault_must_leave_store_clean(self):
        obs = _clean_campaign_obs(fsck_findings=2, fsck_exit_code=1)
        assert "fsck-conformance" in _names(obs)

    def test_corruption_seam_must_be_detected(self):
        obs = _clean_campaign_obs(
            fired={FaultKind.BIT_FLIP: 5}, fsck_findings=0
        )
        assert "fsck-conformance" in _names(obs)

    def test_detected_and_repaired_is_conformant(self):
        obs = _clean_campaign_obs(
            fired={FaultKind.BIT_FLIP: 5},
            fsck_findings=5,
            fsck_clean_after_repair=True,
            fsck_exit_code=0,
        )
        assert _names(obs) == []

    def test_unrepairable_corruption_is_a_violation(self):
        obs = _clean_campaign_obs(
            fired={FaultKind.BIT_FLIP: 5},
            fsck_findings=5,
            fsck_clean_after_repair=False,
            fsck_exit_code=1,
        )
        assert "fsck-conformance" in _names(obs)


class TestServeInvariants:
    def test_wrong_report_is_a_violation(self):
        obs = RunObservation(driver="serve", wrong_reports=1, unrecovered=0)
        assert "serve-report-byte-identity" in _names(obs)

    def test_unrecovered_client_is_a_violation(self):
        obs = RunObservation(driver="serve", wrong_reports=0, unrecovered=2)
        assert "serve-report-byte-identity" in _names(obs)

    def test_short_delivery_is_a_violation(self):
        obs = RunObservation(
            driver="serve",
            wrong_reports=0,
            unrecovered=0,
            reports_expected=12,
            reports_received=11,
        )
        assert "serve-report-byte-identity" in _names(obs)


class TestExitCodeInvariant:
    def test_clean_store_must_exit_zero(self):
        obs = _clean_campaign_obs(fsck_exit_code=1)
        assert "exit-code-convention" in _names(obs)

    def test_repaired_store_must_exit_zero(self):
        obs = _clean_campaign_obs(
            fired={FaultKind.BIT_FLIP: 2},
            fsck_findings=2,
            fsck_clean_after_repair=True,
            fsck_exit_code=1,
        )
        assert "exit-code-convention" in _names(obs)

    def test_unrepaired_store_must_exit_one(self):
        obs = _clean_campaign_obs(
            fired={FaultKind.BIT_FLIP: 2},
            fsck_findings=2,
            fsck_clean_after_repair=False,
            fsck_exit_code=0,
        )
        assert "exit-code-convention" in _names(obs)
