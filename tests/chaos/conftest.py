"""Shared fixtures for the chaos engine tests."""

import pytest

from repro.browser.errors import NetError
from repro.chaos.drivers import RETRIES, ChaosContext
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind


class LeakyDnsInjector(FaultInjector):
    """Planted bug for the shrinker tests.

    Whenever a TLS spec rides along in the plan, the DNS seam fails one
    visit's *entire* retry budget instead of its scheduled depth — an
    unmaskable off-by-N that flips visit outcomes and therefore breaks
    digest equality.  The bug needs both kinds present, so the minimal
    repro is exactly the two-spec plan [dns, tls].
    """

    def dns_hook(self, host):
        if self.plan.specs(FaultKind.DNS) and self.plan.specs(FaultKind.TLS):
            depth = self.plan.fail_depth(FaultKind.DNS, host)
            if depth and self._next_attempt(FaultKind.DNS, host) <= RETRIES:
                self._record(FaultKind.DNS)
                return NetError.ERR_NAME_NOT_RESOLVED
            return None
        return super().dns_hook(host)


@pytest.fixture
def chaos_ctx(tmp_path):
    return ChaosContext(workdir=str(tmp_path / "chaos"))


@pytest.fixture
def planted_ctx(tmp_path):
    return ChaosContext(
        workdir=str(tmp_path / "chaos"), injector_factory=LeakyDnsInjector
    )
