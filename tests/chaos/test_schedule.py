"""Schedule generator: deterministic, coverage-guided, maskable shapes."""

from repro.chaos.registry import SEAM_REGISTRY
from repro.chaos.schedule import CoverageState, ScheduleGenerator
from repro.faults.plan import FaultKind


def _drain(generator, *, fire=True, limit=100):
    """Run the propose loop, pretending every target fires (or none do)."""
    coverage = CoverageState()
    schedules = []
    while len(schedules) < limit:
        schedule = generator.propose(coverage)
        if schedule is None:
            break
        schedules.append(schedule)
        fired = {kind: 3 for kind in schedule.targets} if fire else {}
        coverage.record(fired)
    return schedules


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = _drain(ScheduleGenerator("seed-a"))
        second = _drain(ScheduleGenerator("seed-a"))
        assert [s.schedule_id for s in first] == [s.schedule_id for s in second]
        assert [s.plan.to_json() for s in first] == [s.plan.to_json() for s in second]

    def test_different_seed_different_plans(self):
        first = _drain(ScheduleGenerator("seed-a"))
        second = _drain(ScheduleGenerator("seed-b"))
        # same structural phases, but every plan draws from its own seed
        assert all(s.plan.seed.startswith("seed-b:") for s in second)
        assert [s.plan.seed for s in first] != [s.plan.seed for s in second]


class TestPhases:
    def test_singles_cover_every_kind_first(self):
        schedules = _drain(ScheduleGenerator("seed"))
        singles = [s for s in schedules if s.family == "single"]
        assert {s.targets[0] for s in singles} == set(FaultKind)
        first_pair = next(
            (i for i, s in enumerate(schedules) if s.family == "pair"), None
        )
        assert first_pair is not None and first_pair >= len(singles)

    def test_fired_seams_are_skipped(self):
        generator = ScheduleGenerator("seed")
        coverage = CoverageState()
        coverage.record({kind: 1 for kind in FaultKind})
        schedule = generator.propose(coverage)
        # every seam (and, having fired jointly, every pair) is covered, so
        # no single may be proposed again — only later-phase schedules
        assert schedule is not None and schedule.family != "single"

    def test_escalation_ladder_on_unfired_seam(self):
        generator = ScheduleGenerator("seed", kinds=(FaultKind.HANG,))
        coverage = CoverageState()
        ids = []
        while True:
            schedule = generator.propose(coverage)
            if schedule is None or schedule.family != "single":
                break
            ids.append(schedule.schedule_id)
            coverage.record({})  # the seam never fires
        assert ids == ["single:hang", "single:hang#2", "single:hang#3"]
        rates = [0.15, 0.5, 1.0]
        assert len(ids) == len(rates)

    def test_pairs_share_a_driver(self):
        for schedule in _drain(ScheduleGenerator("seed")):
            if schedule.family == "pair":
                drivers = {SEAM_REGISTRY[k].driver for k in schedule.targets}
                assert len(drivers) == 1

    def test_sweeps_are_counter_timed(self):
        for schedule in _drain(ScheduleGenerator("seed")):
            if schedule.family == "sweep":
                (spec,) = schedule.plan.faults
                assert spec.at_count is not None and spec.at_count >= 1

    def test_generator_is_finite(self):
        schedules = _drain(ScheduleGenerator("seed"), limit=500)
        assert len(schedules) < 100


class TestMaskableShapes:
    def test_pair_specs_are_depth_clamped(self):
        # Two transients at times=2 each would stack to the full retry
        # budget; pair plans must clamp every spec to times<=1.
        for schedule in _drain(ScheduleGenerator("seed")):
            if schedule.family == "pair":
                for spec in schedule.plan.faults:
                    assert spec.times <= 1, (
                        f"{schedule.schedule_id} carries unclamped spec {spec}"
                    )

    def test_coverage_guided_pair_ranking(self):
        generator = ScheduleGenerator("seed", kinds=(
            FaultKind.DNS, FaultKind.TLS, FaultKind.CONNECTION_RESET,
        ))
        coverage = CoverageState()
        # dns fired least → the first pair proposed must include dns
        coverage.record({FaultKind.DNS: 1})
        coverage.record({FaultKind.TLS: 50})
        coverage.record({FaultKind.CONNECTION_RESET: 50})
        schedule = generator.propose(coverage)
        assert schedule.family == "pair"
        assert FaultKind.DNS in schedule.targets


class TestCoverageState:
    def test_pairs_recorded_from_joint_fires(self):
        coverage = CoverageState()
        coverage.record({FaultKind.DNS: 2, FaultKind.TLS: 1})
        assert frozenset((FaultKind.DNS, FaultKind.TLS)) in coverage.pairs_fired

    def test_zero_counts_do_not_cover(self):
        coverage = CoverageState()
        coverage.record({FaultKind.DNS: 0})
        assert coverage.covered() == set()
