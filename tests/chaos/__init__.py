"""Chaos conformance engine tests."""
