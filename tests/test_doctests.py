"""Run the doctests embedded in module docstrings.

Keeps inline examples in the public API honest; modules listed here are
the ones whose docstrings carry runnable examples.
"""

import doctest

import repro.analysis.stats
import repro.core.addresses

_MODULES = (
    repro.core.addresses,
    repro.analysis.stats,
)


def test_module_doctests():
    for module in _MODULES:
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"doctest failures in {module.__name__}"
        assert results.attempted > 0, f"no doctests found in {module.__name__}"
