"""Seam-drift lint: the chaos seam registry must track the fault surface.

These tests fail the suite the moment someone lands a new `FaultKind` or a
new `*_hook` on `FaultInjector` without registering the seam — the exact
drift that previously left fault kinds modelled but never exercised.
"""

from pathlib import Path

from repro.chaos.registry import (
    SEAM_REGISTRY,
    check_registry,
    injector_hooks,
    registry_problems,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSeamRegistryCompleteness:
    def test_registry_is_drift_free(self):
        assert registry_problems() == []
        check_registry()  # must not raise

    def test_every_fault_kind_has_a_seam(self):
        assert set(SEAM_REGISTRY) == set(FaultKind)

    def test_every_seam_hook_exists_on_injector(self):
        for seam in SEAM_REGISTRY.values():
            hook = getattr(FaultInjector, seam.hook, None)
            assert callable(hook), (
                f"seam '{seam.kind.value}' names FaultInjector.{seam.hook}, "
                "which does not exist"
            )

    def test_every_injector_hook_maps_back_to_a_kind(self):
        registered = {seam.hook for seam in SEAM_REGISTRY.values()}
        unclaimed = [
            hook
            for hook in injector_hooks()
            if hook != "write_fault_hook" and hook not in registered
        ]
        assert unclaimed == [], (
            f"FaultInjector hooks {unclaimed} fire no registered FaultKind seam; "
            "register them in repro.chaos.registry.SEAM_REGISTRY"
        )


class TestSeamExercise:
    """Every seam must point at real chaos tests/benches that use it."""

    def test_every_seam_lists_an_exercising_test(self):
        for seam in SEAM_REGISTRY.values():
            assert seam.exercised_by, f"seam '{seam.kind.value}' lists no chaos test"

    def test_exercising_files_exist_and_mention_the_kind(self):
        for seam in SEAM_REGISTRY.values():
            for rel_path in seam.exercised_by:
                path = REPO_ROOT / rel_path
                assert path.is_file(), (
                    f"seam '{seam.kind.value}' points at missing file {rel_path}"
                )
                text = path.read_text(encoding="utf-8")
                member = f"FaultKind.{seam.kind.name}"
                assert member in text or f'"{seam.kind.value}"' in text, (
                    f"{rel_path} does not exercise {member}"
                )


class TestDriftDetection:
    """registry_problems() must actually catch the drift cases."""

    def test_missing_kind_is_reported(self, monkeypatch):
        from repro.chaos import registry as module

        trimmed = dict(SEAM_REGISTRY)
        removed = trimmed.pop(FaultKind.DNS)
        monkeypatch.setattr(module, "SEAM_REGISTRY", trimmed)
        problems = module.registry_problems()
        assert any("'dns' has no registered seam" in p for p in problems)
        # the kind's hook is shared with no other seam, so it surfaces too
        assert any(removed.hook in p for p in problems)

    def test_unknown_hook_is_reported(self, monkeypatch):
        from repro.chaos import registry as module

        bent = dict(SEAM_REGISTRY)
        seam = bent[FaultKind.DNS]
        bent[FaultKind.DNS] = type(seam)(
            kind=seam.kind,
            hook="nonexistent_hook",
            layer=seam.layer,
            driver=seam.driver,
            fsck=seam.fsck,
            exercised_by=seam.exercised_by,
        )
        monkeypatch.setattr(module, "SEAM_REGISTRY", bent)
        problems = module.registry_problems()
        assert any("nonexistent_hook" in p for p in problems)
