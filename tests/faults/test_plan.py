"""Tests for fault plans: determinism, composition, serialisation."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec


def _plan(seed="test-seed"):
    return FaultPlan(
        seed=seed,
        faults=(
            FaultSpec(kind=FaultKind.DNS, rate=0.10, times=2),
            FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=0.05),
            FaultSpec(kind=FaultKind.OUTAGE, at_count=7, duration=3),
            FaultSpec(kind=FaultKind.CRASH, at_count=100),
        ),
    )


DOMAINS = [f"site-{i}.example" for i in range(500)]


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DNS, rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DNS, times=0)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.OUTAGE, duration=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.CRASH, at_count=0)

    def test_json_round_trip(self):
        spec = FaultSpec(kind=FaultKind.DNS, rate=0.25, times=3)
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec.from_json({"kind": "cosmic-ray"})


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert _plan().schedule(FaultKind.DNS, DOMAINS) == _plan().schedule(
            FaultKind.DNS, DOMAINS
        )

    def test_schedule_is_order_independent(self):
        forward = _plan().schedule(FaultKind.DNS, DOMAINS)
        backward = _plan().schedule(FaultKind.DNS, list(reversed(DOMAINS)))
        assert forward == backward

    def test_different_seed_different_schedule(self):
        a = _plan("seed-a").schedule(FaultKind.DNS, DOMAINS)
        b = _plan("seed-b").schedule(FaultKind.DNS, DOMAINS)
        assert a != b

    def test_rate_approximately_honoured(self):
        selected = _plan().schedule(FaultKind.DNS, DOMAINS)
        # 10% rate over 500 keys: the stable draw should land in a wide
        # but deterministic band around 50.
        assert 20 <= len(selected) <= 90

    def test_depth_from_times(self):
        schedule = _plan().schedule(FaultKind.DNS, DOMAINS)
        assert schedule and all(depth == 2 for depth in schedule.values())

    def test_zero_rate_selects_nothing(self):
        plan = FaultPlan(faults=(FaultSpec(kind=FaultKind.DNS, rate=0.0),))
        assert plan.schedule(FaultKind.DNS, DOMAINS) == {}


class TestComposition:
    def test_specs_filters_by_kind(self):
        plan = _plan()
        assert [s.kind for s in plan.specs(FaultKind.OUTAGE)] == [FaultKind.OUTAGE]

    def test_without_drops_kinds_and_keeps_seed(self):
        plan = _plan()
        stripped = plan.without(FaultKind.CRASH, FaultKind.OUTAGE)
        assert stripped.seed == plan.seed
        assert not stripped.specs(FaultKind.CRASH)
        assert not stripped.specs(FaultKind.OUTAGE)
        # The surviving kinds keep their exact schedules.
        assert stripped.schedule(FaultKind.DNS, DOMAINS) == plan.schedule(
            FaultKind.DNS, DOMAINS
        )


class TestSerialisation:
    def test_round_trip_preserves_schedule(self):
        plan = _plan()
        restored = FaultPlan.loads(plan.dumps())
        assert restored == plan
        assert restored.schedule(FaultKind.DNS, DOMAINS) == plan.schedule(
            FaultKind.DNS, DOMAINS
        )

    def test_loads_rejects_non_object(self):
        with pytest.raises(ValueError):
            FaultPlan.loads("[1, 2]")


class TestPlanValidationErrors:
    """`repro study --fault-plan` surfaces these verbatim — each must be
    a single actionable line naming the offending field or kind."""

    def _error(self, text):
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.loads(text)
        message = str(excinfo.value)
        assert "\n" not in message, "error must be one line"
        return message

    def test_unknown_kind_lists_known_kinds(self):
        message = self._error(
            '{"seed": "x", "faults": [{"kind": "wedge"}]}'
        )
        assert "faults[0]" in message
        assert "'wedge'" in message
        assert "hang" in message and "slow" in message  # known kinds listed

    def test_missing_kind_named(self):
        message = self._error('{"faults": [{"rate": 0.5}]}')
        assert "missing 'kind'" in message

    def test_unknown_field_named(self):
        message = self._error(
            '{"faults": [{"kind": "dns", "rte": 0.5}]}'
        )
        assert "rte" in message

    def test_non_numeric_rate_names_field(self):
        message = self._error(
            '{"faults": [{"kind": "dns", "rate": "lots"}]}'
        )
        assert "'rate'" in message and "'lots'" in message

    def test_out_of_range_value_names_kind(self):
        message = self._error(
            '{"faults": [{"kind": "hang", "rate": 3.5}]}'
        )
        assert "bad 'hang' fault spec" in message

    def test_position_identifies_bad_spec(self):
        message = self._error(
            '{"faults": [{"kind": "dns"}, {"kind": "slow", "times": 0}]}'
        )
        assert message.startswith("faults[1]")

    def test_non_string_seed_rejected(self):
        message = self._error('{"seed": 7, "faults": []}')
        assert "'seed'" in message

    def test_non_array_faults_rejected(self):
        message = self._error('{"faults": {"kind": "dns"}}')
        assert "'faults'" in message

    def test_hang_and_slow_round_trip(self):
        plan = FaultPlan(
            seed="supervised",
            faults=(
                FaultSpec(kind=FaultKind.HANG, rate=0.02, times=5),
                FaultSpec(kind=FaultKind.SLOW, rate=0.05, duration=3000),
            ),
        )
        assert FaultPlan.loads(plan.dumps()) == plan


class TestServeFaultKinds:
    """The serve seams ride the same plan machinery as every other kind."""

    def test_round_trip(self):
        plan = FaultPlan(
            seed="serve-chaos",
            faults=(
                FaultSpec(kind=FaultKind.SLOW_CLIENT, rate=0.2, duration=200),
                FaultSpec(kind=FaultKind.TORN_UPLOAD, rate=0.1, times=1),
                FaultSpec(kind=FaultKind.WORKER_CRASH, rate=0.05, times=2),
                FaultSpec(kind=FaultKind.JOURNAL_DISK_FULL, rate=0.01),
            ),
        )
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_loads_by_wire_name(self):
        plan = FaultPlan.loads(
            '{"seed": "s", "faults": ['
            '{"kind": "slow-client", "rate": 1.0, "duration": 50},'
            '{"kind": "torn-upload", "rate": 1.0},'
            '{"kind": "worker-crash", "rate": 0.5, "times": 3},'
            '{"kind": "journal-disk-full", "rate": 0.25}]}'
        )
        assert [spec.kind for spec in plan.faults] == [
            FaultKind.SLOW_CLIENT,
            FaultKind.TORN_UPLOAD,
            FaultKind.WORKER_CRASH,
            FaultKind.JOURNAL_DISK_FULL,
        ]

    def test_selection_is_deterministic(self):
        spec = FaultSpec(kind=FaultKind.WORKER_CRASH, rate=0.2, times=2)
        plan = FaultPlan(seed="stable", faults=(spec,))
        digests = [f"sha256:{i:064x}" for i in range(200)]
        first = {d for d in digests if plan.selects(spec, d)}
        second = {d for d in digests if plan.selects(spec, d)}
        assert first == second
        assert 0 < len(first) < len(digests)
