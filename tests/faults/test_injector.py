"""Tests for the fault injector's seam hooks."""

import pytest

from repro.browser.errors import NetError
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedDiskFullError,
    StorageWriteError,
)
from repro.netlog import (
    EventPhase,
    EventType,
    NetLogEvent,
    NetLogSource,
    ParseStats,
    SourceType,
    dumps,
    dumps_binary,
    loads,
)


def _injector(*faults, seed="inj-test"):
    return FaultInjector(plan=FaultPlan(seed=seed, faults=tuple(faults)))


def _faulted_key(injector, kind, keys):
    """First key the plan selects for ``kind`` (skip the test otherwise)."""
    for key in keys:
        if injector.plan.fail_depth(kind, key):
            return key
    pytest.fail(f"plan selected no key for {kind} among {len(keys)} keys")


KEYS = [f"host-{i}.example" for i in range(200)]


class TestTransientSeams:
    def test_dns_fails_then_recovers(self):
        injector = _injector(FaultSpec(kind=FaultKind.DNS, rate=0.2, times=2))
        host = _faulted_key(injector, FaultKind.DNS, KEYS)
        assert injector.dns_hook(host) is NetError.ERR_NAME_NOT_RESOLVED
        assert injector.dns_hook(host) is NetError.ERR_NAME_NOT_RESOLVED
        # Transient depth exhausted: the name resolves from now on.
        assert injector.dns_hook(host) is None
        assert injector.injected[FaultKind.DNS] == 2

    def test_unselected_host_never_faulted(self):
        injector = _injector(FaultSpec(kind=FaultKind.DNS, rate=0.2, times=2))
        clean = next(h for h in KEYS if not injector.plan.fail_depth(FaultKind.DNS, h))
        assert all(injector.dns_hook(clean) is None for _ in range(5))

    def test_connect_faults_keyed_by_host_and_port(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=0.2)
        )
        key = _faulted_key(
            injector, FaultKind.CONNECTION_RESET, [f"{h}:80" for h in KEYS]
        )
        host, port = key.rsplit(":", 1)
        assert injector.connect_hook(host, int(port)) is NetError.ERR_CONNECTION_RESET
        assert injector.connect_hook(host, int(port)) is None

    def test_tls_fault_returns_ssl_error(self):
        injector = _injector(FaultSpec(kind=FaultKind.TLS, rate=0.2))
        key = _faulted_key(injector, FaultKind.TLS, [f"{h}:443" for h in KEYS])
        host, port = key.rsplit(":", 1)
        assert injector.connect_hook(host, int(port)) is NetError.ERR_SSL_PROTOCOL_ERROR

    def test_storage_hook_raises_then_recovers(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.STORAGE_WRITE, rate=0.2)
        )
        key = _faulted_key(injector, FaultKind.STORAGE_WRITE, KEYS)
        with pytest.raises(StorageWriteError):
            injector.storage_hook(key)
        injector.storage_hook(key)  # second attempt succeeds


class TestCounterSeams:
    def test_outage_window_is_bounded(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.OUTAGE, at_count=3, duration=2)
        )
        observed = [injector.connectivity_hook() for _ in range(6)]
        assert observed == [False, False, True, True, False, False]
        assert injector.injected[FaultKind.OUTAGE] == 2

    def test_crash_fires_exactly_once(self):
        injector = _injector(FaultSpec(kind=FaultKind.CRASH, at_count=3))
        injector.on_visit()
        injector.on_visit()
        with pytest.raises(InjectedCrashError):
            injector.on_visit()
        # A resumed campaign with a fresh visit counter would re-crash;
        # the same injector past the trigger does not.
        injector.on_visit()


class TestShardSeams:
    def _spec(self, kind, **overrides):
        fields = dict(kind=kind, rate=1.0, at_count=3, times=1)
        fields.update(overrides)
        return FaultSpec(**fields)

    def test_shard_crash_fires_at_exact_visit_and_generation(self):
        injector = _injector(self._spec(FaultKind.SHARD_CRASH))
        fires = [
            injector.shard_crash_hook("shard-0", 0, count)
            for count in range(1, 6)
        ]
        assert fires == [False, False, True, False, False]

    def test_shard_crash_respects_generation_budget(self):
        injector = _injector(self._spec(FaultKind.SHARD_CRASH, times=2))
        # Generations 0 and 1 crash; the third incarnation survives.
        assert injector.shard_crash_hook("shard-0", 0, 3)
        assert injector.shard_crash_hook("shard-0", 1, 3)
        assert not injector.shard_crash_hook("shard-0", 2, 3)

    def test_shard_stall_returns_duration_seconds(self):
        injector = _injector(
            self._spec(FaultKind.SHARD_STALL, duration=7)
        )
        assert injector.shard_stall_hook("shard-0", 0, 3) == 7.0
        assert injector.shard_stall_hook("shard-0", 0, 4) == 0.0

    def test_shard_draw_is_keyed_by_shard(self):
        # rate=0.5 must not mean "every shard": the plan's deterministic
        # draw selects a stable subset keyed by shard id.
        spec = self._spec(FaultKind.SHARD_CRASH, rate=0.5)
        plan = FaultPlan(seed="draw", faults=(spec,))
        draws = {
            key: plan.selects(spec, key)
            for key in (f"shard-{i}" for i in range(64))
        }
        assert any(draws.values()) and not all(draws.values())
        # Replaying the same plan gives the same subset.
        replay = FaultPlan(seed="draw", faults=(spec,))
        assert draws == {
            key: replay.selects(spec, key) for key in draws
        }


class TestNetlogSeam:
    def _document(self):
        events = [
            NetLogEvent(
                time=float(i),
                type=EventType.URL_REQUEST_START_JOB,
                source=NetLogSource(id=i + 1, type=SourceType.URL_REQUEST),
                phase=EventPhase.BEGIN,
                params={"url": "http://localhost/"},
            )
            for i in range(8)
        ]
        return dumps(events)

    def test_corruption_is_salvageable(self):
        # The injector's damage model matches what the salvage parser
        # recovers from: corrupt end-to-end, then re-parse non-strictly.
        injector = _injector(
            FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5, duration=16)
        )
        document = self._document()
        clean = loads(document)
        key = _faulted_key(injector, FaultKind.NETLOG_TRUNCATION, KEYS)
        damaged = injector.corrupt_netlog(document, key)
        assert damaged != document
        assert "\x00" in damaged
        stats = ParseStats()
        salvaged = loads(damaged, strict=False, stats=stats)
        assert stats.truncated
        assert salvaged == clean[: len(salvaged)]

    def test_corruption_is_deterministic(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5)
        )
        document = self._document()
        key = _faulted_key(injector, FaultKind.NETLOG_TRUNCATION, KEYS)
        other = _injector(
            FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5)
        )
        assert injector.corrupt_netlog(document, key) == other.corrupt_netlog(
            document, key
        )

    def test_unscheduled_document_untouched(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5)
        )
        document = self._document()
        clean_key = next(
            k for k in KEYS
            if not injector.plan.fail_depth(FaultKind.NETLOG_TRUNCATION, k)
        )
        assert injector.corrupt_netlog(document, clean_key) == document


class TestIntegrityFaultSeams:
    """The PR-3 corruption kinds: torn writes, silent bit rot, disk-full."""

    def _document(self, checksums=True):
        events = [
            NetLogEvent(
                time=float(i),
                type=EventType.URL_REQUEST_START_JOB,
                source=NetLogSource(id=i + 1, type=SourceType.URL_REQUEST),
                phase=EventPhase.BEGIN,
                params={"url": "http://localhost/"},
            )
            for i in range(8)
        ]
        return dumps(events, checksums=checksums)

    def test_torn_write_is_an_interior_nul_hole(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.5, duration=32)
        )
        document = self._document()
        key = _faulted_key(injector, FaultKind.TORN_WRITE, KEYS)
        damaged = injector.corrupt_netlog(document, key)
        assert damaged != document
        assert len(damaged) == len(document)  # a hole, not a cut
        assert "\x00" * 32 in damaged
        assert not damaged.startswith("\x00") and not damaged.endswith("\x00")
        stats = ParseStats()
        loads(damaged, strict=False, stats=stats)
        assert stats.damaged

    def test_bit_flip_keeps_json_valid_but_fails_checksums(self):
        injector = _injector(FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5))
        document = self._document()
        key = _faulted_key(injector, FaultKind.BIT_FLIP, KEYS)
        damaged = injector.corrupt_netlog(document, key)
        assert damaged != document
        assert len(damaged) == len(document)
        assert sum(a != b for a, b in zip(document, damaged)) == 1
        import json as _json

        _json.loads(damaged)  # still syntactically perfect
        stats = ParseStats()
        loads(damaged, strict=False, stats=stats)
        # Only the end-to-end checksums can see this damage.
        assert stats.checksum_failures + stats.chain_breaks >= 1
        assert stats.first_divergence is not None

    def test_bit_flip_invisible_without_checksums(self):
        injector = _injector(FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5))
        document = self._document(checksums=False)
        key = _faulted_key(injector, FaultKind.BIT_FLIP, KEYS)
        stats = ParseStats()
        loads(injector.corrupt_netlog(document, key), strict=False, stats=stats)
        assert not stats.damaged  # the motivating gap checksums close

    def test_corruption_is_deterministic_per_key(self):
        spec_sets = [
            (FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.5),),
            (FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5),),
        ]
        document = self._document()
        for specs in spec_sets:
            first = _injector(*specs)
            second = _injector(*specs)
            key = _faulted_key(first, specs[0].kind, KEYS)
            assert first.corrupt_netlog(document, key) == second.corrupt_netlog(
                document, key
            )

    def test_disk_full_raises_then_recovers(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.DISK_FULL, rate=0.2, times=2)
        )
        key = _faulted_key(injector, FaultKind.DISK_FULL, KEYS)
        for _ in range(2):
            with pytest.raises(InjectedDiskFullError):
                injector.archive_write_hook(key)
        injector.archive_write_hook(key)  # transient depth exhausted
        assert injector.injected[FaultKind.DISK_FULL] == 2

    def test_disk_full_is_an_oserror(self):
        # Retry loops catch OSError; the injected kind must be caught too.
        assert issubclass(InjectedDiskFullError, OSError)

    def test_plan_roundtrips_new_kinds(self):
        plan = FaultPlan(
            seed="s",
            faults=(
                FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.1, duration=64),
                FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.1),
                FaultSpec(kind=FaultKind.DISK_FULL, rate=0.1, times=3),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestEmptyPlan:
    def test_noop_at_every_seam(self):
        injector = FaultInjector()
        assert injector.dns_hook("example.com") is None
        assert injector.connect_hook("example.com", 443) is None
        assert injector.connectivity_hook() is False
        assert injector.corrupt_netlog("{}", "k") == "{}"
        injector.storage_hook("k")
        injector.archive_write_hook("k")
        injector.on_visit()
        assert injector.injected_total() == 0


class TestServeSeams:
    def test_slow_client_hook_returns_dwell_seconds(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.SLOW_CLIENT, rate=1.0, duration=200)
        )
        assert injector.slow_client_hook("client-a") == 0.2
        assert injector.injected[FaultKind.SLOW_CLIENT] == 1
        quiet = _injector()
        assert quiet.slow_client_hook("client-a") == 0.0

    def test_slow_client_default_dwell(self):
        injector = _injector(FaultSpec(kind=FaultKind.SLOW_CLIENT, rate=1.0))
        assert injector.slow_client_hook("client-a") == 0.05

    def test_torn_upload_cut_is_stable_and_transient(self):
        spec = FaultSpec(kind=FaultKind.TORN_UPLOAD, rate=1.0, times=2)
        body = b"x" * 1000
        first = _injector(spec).torn_upload_hook(body, "client-a")
        second = _injector(spec).torn_upload_hook(body, "client-a")
        assert first == second
        assert 500 <= len(first) < 1000
        injector = _injector(spec)
        assert len(injector.torn_upload_hook(body, "client-a")) < 1000
        assert len(injector.torn_upload_hook(body, "client-a")) < 1000
        # Depth exhausted: the third upload arrives whole.
        assert injector.torn_upload_hook(body, "client-a") == body

    def test_worker_crash_hook_strikes_then_recovers(self):
        from repro.faults import InjectedWorkerCrashError

        injector = _injector(
            FaultSpec(kind=FaultKind.WORKER_CRASH, rate=1.0, times=1)
        )
        with pytest.raises(InjectedWorkerCrashError):
            injector.worker_crash_hook("sha256:aa")
        injector.worker_crash_hook("sha256:aa")  # recovered
        assert injector.injected[FaultKind.WORKER_CRASH] == 1

    def test_journal_write_hook_raises_disk_full(self):
        from repro.faults import InjectedDiskFullError

        injector = _injector(
            FaultSpec(kind=FaultKind.JOURNAL_DISK_FULL, rate=1.0, times=1)
        )
        with pytest.raises(InjectedDiskFullError):
            injector.journal_write_hook("job:j1:submit")
        injector.journal_write_hook("job:j1:submit")


class TestBinaryNetlogSeam:
    """The same fault plan applied to ``nlbin-v1`` byte documents.

    ``corrupt_netlog`` is polymorphic: a plan damages the same visit
    keys whichever capture format the campaign ran with, and each fault
    kind has the analogous physical shape in both encodings.
    """

    def _document(self, n=8, checksums=False):
        events = [
            NetLogEvent(
                time=float(i),
                type=EventType.URL_REQUEST_START_JOB,
                source=NetLogSource(id=i + 1, type=SourceType.URL_REQUEST),
                phase=EventPhase.BEGIN,
                params={"url": "http://localhost/"},
            )
            for i in range(n)
        ]
        return dumps_binary(events, checksums=checksums)

    def test_truncation_is_salvageable(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5, duration=16)
        )
        document = self._document()
        clean = loads(document)
        key = _faulted_key(injector, FaultKind.NETLOG_TRUNCATION, KEYS)
        damaged = injector.corrupt_netlog(document, key)
        assert isinstance(damaged, bytes)
        assert damaged != document
        assert damaged.endswith(b"\x00" * 16)  # preallocated wound
        stats = ParseStats()
        salvaged = loads(damaged, strict=False, stats=stats)
        assert stats.truncated
        assert salvaged == clean[: len(salvaged)]

    def test_torn_write_is_an_interior_nul_hole(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.5, duration=32)
        )
        # Large enough that the 30-70% hole window clears the constants
        # header and lands in the measurement payload.
        document = self._document(n=48)
        clean = loads(document)
        key = _faulted_key(injector, FaultKind.TORN_WRITE, KEYS)
        damaged = injector.corrupt_netlog(document, key)
        assert damaged != document
        assert len(damaged) == len(document)  # a hole, not a cut
        assert b"\x00" * 32 in damaged
        assert not damaged.startswith(b"\x00") and not damaged.endswith(b"\x00")
        stats = ParseStats()
        salvaged = loads(damaged, strict=False, stats=stats)
        assert stats.damaged
        # Same sticky-EOF semantics as the JSON scanner: records before
        # the hole survive, the untrustworthy tail is abandoned.
        assert salvaged == clean[: len(salvaged)]

    def test_bit_flip_fails_frame_crc(self):
        injector = _injector(FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5))
        document = self._document(checksums=True)
        key = _faulted_key(injector, FaultKind.BIT_FLIP, KEYS)
        damaged = injector.corrupt_netlog(document, key)
        assert damaged != document
        assert len(damaged) == len(document)
        assert sum(a != b for a, b in zip(document, damaged)) == 1
        stats = ParseStats()
        salvaged = loads(damaged, strict=False, stats=stats)
        assert stats.checksum_failures == 1  # the lying record is dropped
        assert stats.first_divergence is not None
        assert len(salvaged) == 7

    def test_bit_flip_caught_even_without_checksums(self):
        # Unlike JSON — where rot in a plain document is invisible — the
        # binary framing always carries per-frame CRCs, so the flip still
        # drops the damaged record; it just cannot be attributed to the
        # end-to-end integrity layer.
        injector = _injector(FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5))
        document = self._document(checksums=False)
        key = _faulted_key(injector, FaultKind.BIT_FLIP, KEYS)
        stats = ParseStats()
        salvaged = loads(
            injector.corrupt_netlog(document, key), strict=False, stats=stats
        )
        assert stats.dropped_malformed == 1
        assert stats.checksum_failures == 0
        assert len(salvaged) == 7

    def test_same_plan_damages_both_formats(self):
        spec = FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5)
        text_injector = _injector(spec)
        bytes_injector = _injector(spec)
        key = _faulted_key(text_injector, FaultKind.NETLOG_TRUNCATION, KEYS)
        text = TestNetlogSeam()._document()
        data = self._document()
        damaged_text = text_injector.corrupt_netlog(text, key)
        damaged_bytes = bytes_injector.corrupt_netlog(data, key)
        assert isinstance(damaged_text, str) and damaged_text != text
        assert isinstance(damaged_bytes, bytes) and damaged_bytes != data

    def test_corruption_is_deterministic_per_key(self):
        spec_sets = [
            (FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5),),
            (FaultSpec(kind=FaultKind.TORN_WRITE, rate=0.5),),
            (FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5),),
        ]
        document = self._document(checksums=True)
        for specs in spec_sets:
            first = _injector(*specs)
            second = _injector(*specs)
            key = _faulted_key(first, specs[0].kind, KEYS)
            assert first.corrupt_netlog(document, key) == second.corrupt_netlog(
                document, key
            )

    def test_unscheduled_document_untouched(self):
        injector = _injector(
            FaultSpec(kind=FaultKind.NETLOG_TRUNCATION, rate=0.5),
            FaultSpec(kind=FaultKind.BIT_FLIP, rate=0.5),
        )
        document = self._document()
        clean_key = next(
            k for k in KEYS
            if not injector.plan.fail_depth(FaultKind.NETLOG_TRUNCATION, k)
            and not injector.plan.fail_depth(FaultKind.BIT_FLIP, k)
        )
        assert injector.corrupt_netlog(document, clean_key) == document
