"""Property tests: FaultPlan JSON serialisation is exact, both ways.

Seeded-random generation (no external property-testing dependency): a few
hundred structurally diverse plans must survive serialise→parse unchanged,
re-serialise byte-identically, and keep their draw semantics.  The strict
half of the contract is also pinned: values JSON would happily carry but
the spec doesn't mean — booleans for numbers, fractional floats for whole
counts — fail with the one-line error convention instead of silently
mutating the plan.
"""

import json
import random

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec

KINDS = tuple(FaultKind)


def _random_spec(rng: random.Random) -> FaultSpec:
    kind = rng.choice(KINDS)
    return FaultSpec(
        kind=kind,
        rate=rng.choice([0.0, 0.25, 0.5, 1.0, round(rng.random(), 6)]),
        times=rng.choice([1, 2, 3, 7, 100]),
        duration=rng.choice([0, 1, 2, 48, 2000]),
        at_count=rng.choice([None, 1, 5, 30, 10_000]),
    )


def _random_plan(rng: random.Random) -> FaultPlan:
    return FaultPlan(
        seed=f"plan-{rng.randrange(1_000_000)}",
        faults=tuple(_random_spec(rng) for _ in range(rng.randrange(0, 6))),
    )


class TestRoundTripProperties:
    def test_spec_round_trip_is_exact(self):
        rng = random.Random(20210)
        for _ in range(300):
            spec = _random_spec(rng)
            assert FaultSpec.from_json(spec.to_json()) == spec

    def test_plan_round_trip_is_exact(self):
        rng = random.Random(20211)
        for _ in range(200):
            plan = _random_plan(rng)
            assert FaultPlan.loads(plan.dumps()) == plan

    def test_reserialisation_is_byte_identical(self):
        # parse(dumps(plan)) must not just be equal — it must re-serialise
        # to the same bytes, so committed plans never churn in review.
        rng = random.Random(20212)
        for _ in range(200):
            plan = _random_plan(rng)
            text = plan.dumps()
            assert FaultPlan.loads(text).dumps() == text

    def test_round_trip_preserves_draw_semantics(self):
        rng = random.Random(20213)
        keys = [f"site-{i}.example" for i in range(50)]
        for _ in range(50):
            plan = _random_plan(rng)
            clone = FaultPlan.loads(plan.dumps())
            for spec in plan.faults:
                assert plan.schedule(spec.kind, keys) == clone.schedule(
                    spec.kind, keys
                )

    def test_default_valued_fields_are_omitted(self):
        record = FaultSpec(kind=FaultKind.DNS, rate=0.5).to_json()
        assert set(record) == {"kind", "rate"}


class TestStrictParsing:
    """JSON lookalikes must be rejected, not silently coerced."""

    @pytest.mark.parametrize("field", ["times", "duration", "at_count"])
    def test_fractional_float_rejected_for_int_fields(self, field):
        record = {"kind": "dns", field: 2.5}
        with pytest.raises(ValueError, match=f"field '{field}' must be a whole number"):
            FaultSpec.from_json(record)

    @pytest.mark.parametrize("field", ["rate", "times", "duration", "at_count"])
    def test_bool_rejected_for_numeric_fields(self, field):
        record = {"kind": "dns", field: True}
        with pytest.raises(ValueError, match=f"field '{field}' must be a"):
            FaultSpec.from_json(record)

    def test_integral_float_still_accepted(self):
        # 2.0 is exactly 2; rejecting it would break hand-written plans.
        spec = FaultSpec.from_json({"kind": "dns", "times": 2.0})
        assert spec.times == 2

    def test_error_messages_are_one_line(self):
        for record in (
            {"kind": "dns", "times": 2.5},
            {"kind": "dns", "rate": True},
            {"kind": "dns", "rate": "fast"},
        ):
            with pytest.raises(ValueError) as excinfo:
                FaultSpec.from_json(record)
            assert "\n" not in str(excinfo.value)

    def test_strictness_via_full_plan_loads(self):
        text = json.dumps(
            {"seed": "s", "faults": [{"kind": "crash", "at_count": 3.5}]}
        )
        with pytest.raises(ValueError, match="whole number"):
            FaultPlan.loads(text)
