"""Tests for campaign resilience: chaos invariance, crash/resume, storage
write faults, and the persistence of connectivity skips."""

import pytest

from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.retry import RetryPolicy
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec, InjectedCrashError
from repro.storage.db import TelemetryStore
from repro.web.population import build_top_population

SCALE = 0.002

CHAOS_PLAN = FaultPlan(
    seed="campaign-test",
    faults=(
        FaultSpec(kind=FaultKind.DNS, rate=0.10, times=2),
        FaultSpec(kind=FaultKind.CONNECTION_RESET, rate=0.03),
    ),
)


def _population():
    return build_top_population(2020, scale=SCALE)


def _table1(result):
    return {
        os_name: (stats.successes, stats.failures, dict(stats.errors or {}))
        for os_name, stats in result.stats.items()
    }


def _fingerprints(result):
    return [finding_fingerprint(finding) for finding in result.findings]


class TestChaosInvariance:
    def test_retried_faults_leave_no_trace(self):
        population = _population()
        baseline = Campaign().run(population)
        campaign = Campaign(
            retry_policy=RetryPolicy(max_attempts=4), fault_plan=CHAOS_PLAN
        )
        chaotic = campaign.run(population)
        assert campaign.last_injector is not None
        assert campaign.last_injector.injected_total() > 0
        assert _table1(chaotic) == _table1(baseline)
        assert _fingerprints(chaotic) == _fingerprints(baseline)

    def test_without_retries_faults_do_surface(self):
        population = _population()
        baseline = Campaign().run(population)
        chaotic = Campaign(fault_plan=CHAOS_PLAN).run(population)
        assert _table1(chaotic) != _table1(baseline)


class TestCrashResume:
    def _crash_plan(self, at_count):
        return FaultPlan(
            seed=CHAOS_PLAN.seed,
            faults=CHAOS_PLAN.faults
            + (FaultSpec(kind=FaultKind.CRASH, at_count=at_count),),
        )

    def test_resume_requires_store(self):
        with pytest.raises(ValueError):
            Campaign().run(_population(), resume=True)

    def test_crash_then_resume_matches_uninterrupted(self):
        population = _population()
        policy = RetryPolicy(max_attempts=4)
        uninterrupted = Campaign(
            retry_policy=policy, fault_plan=CHAOS_PLAN
        ).run(population)

        crash_at = len(population) + 5  # partway into the second OS pass
        store = TelemetryStore()
        with pytest.raises(InjectedCrashError):
            Campaign(
                retry_policy=policy,
                fault_plan=self._crash_plan(crash_at),
                store=store,
                checkpoint_every=10,
            ).run(population)
        persisted = len(store.visits(population.name))
        # The crashed visit itself left no trace.
        assert persisted == crash_at - 1

        resumed = Campaign(
            retry_policy=policy, fault_plan=CHAOS_PLAN, store=store
        ).run(population, resume=True)
        assert _table1(resumed) == _table1(uninterrupted)
        assert _fingerprints(resumed) == _fingerprints(uninterrupted)
        # Nothing was crawled twice: one row per (site, OS).
        assert len(store.visits(population.name)) == len(population) * 3

    def test_resume_of_complete_run_recrawls_nothing(self):
        population = _population()
        store = TelemetryStore()
        first = Campaign(store=store).run(population)
        campaign = Campaign(store=store, fault_plan=CHAOS_PLAN)
        resumed = campaign.run(population, resume=True)
        # Everything restored from the store; the injector never fired.
        assert campaign.last_injector is not None
        assert campaign.last_injector.injected_total() == 0
        assert _table1(resumed) == _table1(first)
        assert _fingerprints(resumed) == _fingerprints(first)


class TestStorageWriteFaults:
    def _plan(self, times=1):
        return FaultPlan(
            seed="storage-test",
            faults=(
                FaultSpec(kind=FaultKind.STORAGE_WRITE, rate=0.2, times=times),
            ),
        )

    def test_transient_write_faults_retried_away(self):
        population = _population()
        store = TelemetryStore()
        campaign = Campaign(
            store=store,
            retry_policy=RetryPolicy(max_attempts=4),
            fault_plan=self._plan(),
        )
        result = campaign.run(population)
        assert campaign.last_injector is not None
        assert campaign.last_injector.injected[FaultKind.STORAGE_WRITE] > 0
        # Every row still landed despite the injected write failures.
        assert len(store.visits(population.name)) == len(population) * 3
        assert _table1(result) == _table1(Campaign().run(population))

    def test_write_fault_beyond_budget_propagates(self):
        population = _population()
        campaign = Campaign(
            store=TelemetryStore(), fault_plan=self._plan(times=5)
        )
        from repro.faults import StorageWriteError

        with pytest.raises(StorageWriteError):
            campaign.run(population)


class TestSkippedPersistence:
    def test_connectivity_skips_stored_as_skips(self):
        # An unbounded outage with no retry budget: every visit is skipped,
        # and the stored rows say so instead of misreporting failures.
        population = build_top_population(2020, scale=0.001)
        injector = FaultInjector(
            plan=FaultPlan(
                seed="skip-test",
                faults=(
                    FaultSpec(kind=FaultKind.OUTAGE, at_count=1, duration=10**6),
                ),
            )
        )
        store = TelemetryStore()
        campaign = Campaign(
            store=store, injector=injector, check_connectivity=True
        )
        result = campaign.run(population)
        rows = store.visits(population.name)
        assert rows and all(row.skipped for row in rows)
        assert all(not row.success for row in rows)
        for os_name, stats in result.stats.items():
            assert stats.skipped == len(population)
            assert stats.successes == 0 and stats.failures == 0
        # Table 1's success/failure counts exclude skipped rows.
        counts = store.success_counts(population.name)
        assert all(counts.get(os, (0, 0)) == (0, 0) for os in result.stats)
