"""Watchdog unit tests: cancellation latency, abandonment, lifecycle."""

import threading
import time

import pytest

from repro.crawler.watchdog import CancelToken, VisitCancelled, Watchdog


def test_cancel_token_checkpoint():
    token = CancelToken()
    token.checkpoint()  # not cancelled: no-op
    assert not token.cancelled
    token.cancel()
    assert token.cancelled
    with pytest.raises(VisitCancelled):
        token.checkpoint()


def test_watchdog_cancels_past_deadline():
    token = CancelToken()
    with Watchdog(poll_interval_s=0.01) as watchdog:
        with watchdog.watch(0, "windows:example.com", 0.05, token):
            # Wait cooperatively, like the executor's hang wedge does.
            started = time.monotonic()
            assert token.wait(2.0), "watchdog never cancelled the visit"
            elapsed = time.monotonic() - started
        # Cancelled after the deadline, within about one poll interval
        # (generous slack for slow CI hosts).
        assert 0.05 <= elapsed < 0.5
        assert watchdog.cancelled == 1
        assert watchdog.abandoned == 0


def test_watchdog_ignores_cleared_guards():
    token = CancelToken()
    with Watchdog(poll_interval_s=0.01) as watchdog:
        with watchdog.watch(0, "windows:fast.example", 10.0, token):
            pass  # attempt finished well inside its deadline
        time.sleep(0.05)
        assert watchdog.cancelled == 0
        assert not token.cancelled


def test_watchdog_abandons_uncooperative_visit():
    abandoned = []
    done = threading.Event()

    def uncooperative(token: CancelToken, watchdog: Watchdog) -> None:
        with watchdog.watch(7, "linux:wedged.example", 0.02, token):
            # Ignore the cancellation entirely — a true wedge.
            while not done.wait(0.005):
                pass

    token = CancelToken()
    with Watchdog(
        poll_interval_s=0.01,
        abandon_grace_s=0.05,
        on_abandon=lambda guard: (abandoned.append(guard), done.set()),
    ) as watchdog:
        thread = threading.Thread(
            target=uncooperative, args=(token, watchdog), daemon=True
        )
        thread.start()
        assert done.wait(5.0), "watchdog never abandoned the wedged visit"
        thread.join(timeout=5.0)
        assert watchdog.cancelled == 1
        assert watchdog.abandoned == 1
    (guard,) = abandoned
    assert guard.worker_id == 7
    assert guard.abandoned
    assert token.cancelled


def test_watchdog_start_stop_idempotent():
    watchdog = Watchdog(poll_interval_s=0.01)
    watchdog.start()
    watchdog.start()  # second start is a no-op
    watchdog.stop()
    watchdog.stop()  # second stop is a no-op
    assert watchdog.active_guards() == []


def test_watchdog_rejects_bad_poll_interval():
    with pytest.raises(ValueError):
        Watchdog(poll_interval_s=0.0)


def test_cancellation_latency_recorded_within_one_poll_interval():
    # Satellite invariant: the watchdog cancels at most one poll interval
    # after the deadline, and the histogram records exactly that latency.
    from repro import obs

    registry = obs.enable()
    poll = 0.25
    try:
        token = CancelToken()
        with Watchdog(poll_interval_s=poll) as watchdog:
            with watchdog.watch(0, "windows:slow.example", 0.05, token):
                assert token.wait(5.0), "watchdog never cancelled the visit"
        hist = registry.get("repro_watchdog_cancel_latency_seconds")
        value = hist.value()
        assert value.count == 1
        # Bounded by construction: deadline -> cancel takes at most one
        # poll interval (plus scheduling slack for loaded CI hosts).
        assert 0.0 <= value.sum <= poll + 0.25
    finally:
        obs.disable()
