"""Shutdown equivalence: a supervised campaign killed mid-run — by a
real SIGINT, a programmatic drain, or an injected hard crash — resumes
from its checkpoint store to results fingerprint-identical to an
uninterrupted run, at several worker counts."""

import signal

import pytest

from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.executor import CampaignInterrupted, ExecutorConfig
from repro.faults import FaultKind, FaultPlan, FaultSpec, InjectedCrashError
from repro.storage.db import TelemetryStore
from repro.web.population import build_top_population

SCALE = 0.002

FAST = dict(
    wall_deadline_s=0.1,
    watchdog_poll_s=0.02,
    quarantine_after=3,
)


def _population():
    return build_top_population(2020, scale=SCALE)


def _table1(result):
    return {
        os_name: (stats.successes, stats.failures, dict(stats.errors or {}))
        for os_name, stats in result.stats.items()
    }


def _fingerprints(result):
    return [finding_fingerprint(finding) for finding in result.findings]


def _config(workers, handle_signals=False):
    return ExecutorConfig(
        workers=workers, handle_signals=handle_signals, **FAST
    )


def _interrupt_after(monkeypatch, visits, trigger):
    """Arm ``trigger()`` to fire once, after the Nth persisted visit."""
    original = TelemetryStore.record_visit
    state = {"count": 0, "fired": False}

    def counting(self, *args, **kwargs):
        visit_id = original(self, *args, **kwargs)
        state["count"] += 1
        if state["count"] == visits and not state["fired"]:
            state["fired"] = True
            trigger()
        return visit_id

    # The wrapper is inert once fired, so it can stay installed for the
    # resumed run (monkeypatch undoes it when the test ends).
    monkeypatch.setattr(TelemetryStore, "record_visit", counting)
    return state


@pytest.mark.parametrize("workers", [1, 4])
def test_drain_then_resume_matches_uninterrupted(
    monkeypatch, workers
):
    """A programmatic drain request (the signal handler's effect)."""
    population = _population()
    uninterrupted = Campaign(executor=_config(workers)).run(population)

    store = TelemetryStore(serialized=True)
    draining = Campaign(store=store, executor=_config(workers))
    # Request the drain from inside the run, as a delivered signal would.
    state = _interrupt_after(
        monkeypatch, 50, lambda: draining.last_executor.request_drain()
    )
    with pytest.raises(CampaignInterrupted):
        draining.run(population)
    assert state["fired"]
    assert draining.last_executor.stats.drained

    # The drain flushed its checkpoints: something persisted, not all.
    persisted = len(store.visits(population.name))
    assert 0 < persisted < len(population) * 3

    resumed = Campaign(store=store, executor=_config(workers)).run(
        population, resume=True
    )
    assert _table1(resumed) == _table1(uninterrupted)
    assert _fingerprints(resumed) == _fingerprints(uninterrupted)
    assert len(store.visits(population.name)) == len(population) * 3


@pytest.mark.parametrize("workers", [1, 4])
def test_sigint_then_resume_matches_uninterrupted(monkeypatch, workers):
    """A real SIGINT delivered mid-run (the installed handler drains)."""
    population = _population()
    uninterrupted = Campaign(executor=_config(workers)).run(population)

    store = TelemetryStore(serialized=True)
    state = _interrupt_after(
        monkeypatch, 50, lambda: signal.raise_signal(signal.SIGINT)
    )
    before = signal.getsignal(signal.SIGINT)
    with pytest.raises(CampaignInterrupted):
        Campaign(
            store=store, executor=_config(workers, handle_signals=True)
        ).run(population)
    assert state["fired"]
    # supervise() restored the previous SIGINT disposition on exit.
    assert signal.getsignal(signal.SIGINT) is before

    resumed = Campaign(store=store, executor=_config(workers)).run(
        population, resume=True
    )
    assert _table1(resumed) == _table1(uninterrupted)
    assert _fingerprints(resumed) == _fingerprints(uninterrupted)


@pytest.mark.parametrize("workers", [1, 4])
def test_injected_crash_then_resume_matches_uninterrupted(workers):
    """A scheduled hard crash partway into the second OS pass."""
    population = _population()
    crash_at = len(population) + 5
    plan = FaultPlan(
        seed="shutdown-test",
        faults=(FaultSpec(kind=FaultKind.CRASH, at_count=crash_at),),
    )
    uninterrupted = Campaign(executor=_config(workers)).run(population)

    store = TelemetryStore(serialized=True)
    with pytest.raises(InjectedCrashError):
        Campaign(
            fault_plan=plan, store=store, executor=_config(workers)
        ).run(population)
    # The crashed visit itself left no trace (it was never dispatched).
    assert len(store.visits(population.name)) == crash_at - 1

    resumed = Campaign(
        fault_plan=plan.without(FaultKind.CRASH),
        store=store,
        executor=_config(workers),
    ).run(population, resume=True)
    assert _table1(resumed) == _table1(uninterrupted)
    assert _fingerprints(resumed) == _fingerprints(uninterrupted)
    assert len(store.visits(population.name)) == len(population) * 3
