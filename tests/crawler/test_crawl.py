"""Tests for the per-OS crawler and its statistics."""

from repro.browser.errors import NetError
from repro.crawler.connectivity import ConnectivityChecker
from repro.crawler.crawl import Crawler, CrawlStats
from repro.crawler.vm import OSEnvironment
from repro.web.behaviors import ResourceFetchBehavior
from repro.web.website import Website


def _crawler(os_name="windows", **kwargs) -> Crawler:
    return Crawler(OSEnvironment.for_os(os_name), **kwargs)


def _active_site(domain="active.example", oses=("windows",)) -> Website:
    return Website(
        domain,
        behaviors=[
            ResourceFetchBehavior(
                name="dev",
                urls=("http://127.0.0.1:8888/wp-content/a.jpg",),
                active_oses=frozenset(oses),
            )
        ],
    )


class TestCrawlSite:
    def test_successful_crawl_detects_activity(self):
        record = _crawler().crawl_site(_active_site())
        assert record.success
        assert record.has_local_activity
        assert record.os_name == "windows"

    def test_inactive_os_sees_no_activity(self):
        record = _crawler("linux").crawl_site(_active_site(oses=("windows",)))
        assert record.success
        assert not record.has_local_activity

    def test_injected_failure_recorded(self):
        site = Website(
            "down.example",
            load_errors={"windows": NetError.ERR_NAME_NOT_RESOLVED},
        )
        record = _crawler().crawl_site(site)
        assert not record.success
        assert record.error_bucket == "NAME_NOT_RESOLVED"
        assert record.detection is None

    def test_failure_only_applies_to_its_os(self):
        site = Website(
            "down.example",
            load_errors={"windows": NetError.ERR_CONNECTION_RESET},
        )
        assert not _crawler("windows").crawl_site(site).success
        assert _crawler("linux").crawl_site(site).success

    def test_connectivity_outage_skips_instead_of_failing(self):
        crawler = _crawler()
        crawler.connectivity.outage = True
        record = crawler.crawl_site(_active_site())
        assert record.connectivity_skipped
        assert record.error is NetError.ERR_INTERNET_DISCONNECTED

    def test_connectivity_can_be_disabled(self):
        crawler = _crawler(check_connectivity=False)
        crawler.connectivity.outage = True
        assert crawler.crawl_site(_active_site()).success


class TestCrawlStats:
    def test_stats_accumulate(self):
        crawler = _crawler()
        sites = [
            _active_site("a.example"),
            Website("b.example", load_errors={"windows": NetError.ERR_TIMED_OUT}),
            Website("c.example"),
        ]
        stats = CrawlStats(os_name="windows", crawl="test")
        for record in crawler.crawl(sites):
            stats.record(record)
        assert stats.successes == 2
        assert stats.failures == 1
        assert stats.errors == {"Others": 1}
        assert stats.total == 3

    def test_skips_counted_separately(self):
        stats = CrawlStats(os_name="windows", crawl="test")
        crawler = _crawler()
        crawler.connectivity.outage = True
        stats.record(crawler.crawl_site(_active_site()))
        assert stats.skipped == 1
        assert stats.total == 0


class TestConnectivityChecker:
    def test_normal_check_passes(self):
        crawler = _crawler()
        checker = ConnectivityChecker(network=crawler.browser.network)
        assert checker.check()
        assert checker.checks == 1
        assert checker.failures == 0

    def test_outage_fails(self):
        crawler = _crawler()
        checker = ConnectivityChecker(network=crawler.browser.network, outage=True)
        assert not checker.check()
        assert checker.failures == 1
