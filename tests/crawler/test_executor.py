"""Supervised executor tests: determinism, deadlines, quarantine.

Fast-by-construction: small populations, short wall deadlines, tight
watchdog polls.  The chaos bench covers the same properties at scale.
"""

import pytest

from repro.browser.errors import NetError
from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.executor import ExecutorConfig, SupervisedExecutor
from repro.crawler.retry import RetryPolicy
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.storage.db import TelemetryStore
from repro.web.population import CrawlPopulation, build_top_population
from repro.web.website import Website

SCALE = 0.002

#: Short wall deadlines keep hang rescues cheap in tests.
FAST = dict(
    wall_deadline_s=0.1,
    watchdog_poll_s=0.02,
    quarantine_after=3,
    handle_signals=False,
)


def _population(scale=SCALE):
    return build_top_population(2020, scale=scale)


def _tiny_population(size=4):
    """A few always-successful sites — hang tests pay real wall time per
    rescue, so they run on the smallest population that still proves
    the behaviour."""
    return CrawlPopulation(
        name="tiny",
        websites=[
            Website(domain=f"site-{i:02}.example", rank=i + 1)
            for i in range(size)
        ],
        oses=("windows", "linux", "mac"),
    )


def _table1(result):
    return {
        os_name: (stats.successes, stats.failures, dict(stats.errors or {}))
        for os_name, stats in result.stats.items()
    }


def _fingerprints(result):
    return [finding_fingerprint(finding) for finding in result.findings]


def _config(workers, **overrides):
    return ExecutorConfig(workers=workers, **{**FAST, **overrides})


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExecutorConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutorConfig(visit_deadline_ms=0)
        with pytest.raises(ValueError):
            ExecutorConfig(wall_deadline_s=0)
        with pytest.raises(ValueError):
            ExecutorConfig(quarantine_after=0)

    def test_deadline_must_exceed_monitor_window(self):
        campaign = Campaign(
            executor=_config(1, visit_deadline_ms=10_000.0)
        )
        with pytest.raises(ValueError, match="monitor window"):
            campaign.run(_population(scale=0.001))

    def test_parallel_workers_need_serialized_store(self):
        campaign = Campaign(
            store=TelemetryStore(),  # serialized=False
            executor=_config(2),
        )
        with pytest.raises(ValueError, match="serialized"):
            campaign.run(_population(scale=0.001))


class TestDeterminism:
    def test_supervised_matches_sequential_without_faults(self):
        population = _population()
        sequential = Campaign().run(population)
        supervised = Campaign(executor=_config(1)).run(population)
        assert _table1(supervised) == _table1(sequential)
        assert _fingerprints(supervised) == _fingerprints(sequential)

    def test_results_invariant_under_worker_count(self):
        population = _population()
        results = [
            Campaign(executor=_config(workers)).run(population)
            for workers in (1, 3, 8)
        ]
        for other in results[1:]:
            assert _table1(other) == _table1(results[0])
            assert _fingerprints(other) == _fingerprints(results[0])


class TestHangSupervision:
    def _plan(self, times):
        # rate=1.0 selects every site; `times` is the transient depth.
        return FaultPlan(
            seed="hang-test",
            faults=(FaultSpec(kind=FaultKind.HANG, rate=1.0, times=times),),
        )

    def test_transient_hang_recovers_with_attempt_accounting(self):
        population = _tiny_population()
        campaign = Campaign(
            fault_plan=self._plan(times=1), executor=_config(2)
        )
        result = campaign.run(population)
        stats = campaign.last_executor.stats
        # Every visit hung once, was cancelled, and recovered on retry.
        assert stats.deadline_cancelled == len(population) * 3
        assert stats.reattempts == len(population) * 3
        assert stats.quarantined == 0
        for os_stats in result.stats.values():
            assert os_stats.failures == 0
            # The absorbed hang shows up in the attempt accounting.
            assert os_stats.total_attempts == len(population) * 2
            assert os_stats.retried == len(population)

    def test_deterministic_hang_is_quarantined_exactly_once(self):
        population = _tiny_population()
        store = TelemetryStore(serialized=True)
        campaign = Campaign(
            fault_plan=self._plan(times=10),  # deeper than quarantine_after
            store=store,
            executor=_config(2),
        )
        result = campaign.run(population)
        stats = campaign.last_executor.stats
        assert stats.quarantined == len(population) * 3
        for os_stats in result.stats.values():
            assert os_stats.successes == 0
            assert os_stats.failures == len(population)
            assert os_stats.errors == {"VISIT_DEADLINE": len(population)}
        letters = store.dead_letters(population.name)
        assert len(letters) == len(population) * 3
        assert all(l.failures == FAST["quarantine_after"] for l in letters)
        assert all(l.error == int(NetError.ERR_VISIT_DEADLINE) for l in letters)
        # The stored visit rows carry the same Table 1 semantics.
        rows = store.visits(population.name)
        assert all(
            not row.success and row.error == int(NetError.ERR_VISIT_DEADLINE)
            for row in rows
        )

    def test_requeued_dead_letters_are_reattempted_on_resume(self):
        population = _tiny_population()
        store = TelemetryStore(serialized=True)
        campaign = Campaign(
            fault_plan=self._plan(times=10), store=store, executor=_config(2)
        )
        campaign.run(population)
        assert store.dead_letters(population.name)

        requeued = store.requeue_dead_letters(population.name)
        assert requeued == len(population) * 3
        assert store.dead_letters(population.name) == []
        # With the hang gone, the resumed run re-attempts exactly the
        # re-queued visits and they all succeed.
        healthy = Campaign(store=store, executor=_config(2))
        result = healthy.run(population, resume=True)
        for os_stats in result.stats.values():
            assert os_stats.failures == 0
        assert healthy.last_executor.stats.dispatched == requeued


class TestSlowSupervision:
    def _plan(self, duration):
        return FaultPlan(
            seed="slow-test",
            faults=(
                FaultSpec(kind=FaultKind.SLOW, rate=1.0, duration=duration),
            ),
        )

    def test_slow_within_budget_is_ridden_out(self):
        population = _tiny_population()
        baseline = Campaign().run(population)
        campaign = Campaign(
            fault_plan=self._plan(duration=3_000), executor=_config(2)
        )
        result = campaign.run(population)
        stats = campaign.last_executor.stats
        assert stats.slow_ridden_out == len(population) * 3
        assert stats.deadline_exceeded == 0
        # Riding out a stall costs simulated time only — results match.
        assert _table1(result) == _table1(baseline)
        assert _fingerprints(result) == _fingerprints(baseline)

    def test_slow_past_budget_is_cancelled_then_recovers(self):
        population = _tiny_population()
        baseline = Campaign().run(population)
        # 20s window + 10s stall > 25s deadline; single-shot (times=1),
        # so the supervisor's re-attempt completes.
        campaign = Campaign(
            fault_plan=self._plan(duration=10_000), executor=_config(2)
        )
        result = campaign.run(population)
        stats = campaign.last_executor.stats
        assert stats.deadline_exceeded == len(population) * 3
        assert stats.reattempts == len(population) * 3
        assert stats.quarantined == 0
        assert _fingerprints(result) == _fingerprints(baseline)


class TestPassPlumbing:
    def test_run_pass_merges_in_submission_order(self):
        population = _tiny_population()
        config = _config(4)
        executor = SupervisedExecutor(config)
        from repro.crawler.crawl import Crawler
        from repro.crawler.vm import OSEnvironment

        environment = OSEnvironment.for_os("windows")
        with executor.supervise():
            outcomes = executor.run_pass(
                "windows",
                population.websites,
                crawler_factory=lambda scoped: Crawler(
                    environment, injector=scoped
                ),
            )
        assert [o.task.index for o in outcomes] == list(
            range(1, len(population) + 1)
        )
        assert [o.task.website.domain for o in outcomes] == [
            w.domain for w in population.websites
        ]

    def test_chaos_plan_interacts_deterministically_with_supervision(self):
        population = _population()
        plan = FaultPlan(
            seed="mixed-chaos",
            faults=(
                FaultSpec(kind=FaultKind.DNS, rate=0.10, times=2),
                FaultSpec(kind=FaultKind.HANG, rate=0.03, times=1),
                FaultSpec(kind=FaultKind.SLOW, rate=0.05, duration=2_000),
            ),
        )
        policy = RetryPolicy(max_attempts=4)
        runs = [
            Campaign(
                retry_policy=policy, fault_plan=plan, executor=_config(workers)
            ).run(population)
            for workers in (1, 6)
        ]
        assert _table1(runs[0]) == _table1(runs[1])
        assert _fingerprints(runs[0]) == _fingerprints(runs[1])
