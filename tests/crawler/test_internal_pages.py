"""Tests for internal-page crawling (§3.3 future-work extension)."""

import pytest

from repro.core.signatures import BehaviorClass
from repro.crawler.campaign import Campaign
from repro.crawler.crawl import Crawler
from repro.crawler.vm import OSEnvironment
from repro.web.behaviors import PortScanBehavior
from repro.web.internal import LOGIN_PAGE_SCANNERS, login_scan_behavior
from repro.web.population import build_top_population
from repro.web.seeds import TM_PORTS
from repro.web.website import Website


def _login_site(domain="bank.example") -> Website:
    return Website(
        domain,
        internal_pages={
            "/signin": [
                PortScanBehavior(
                    name="threatmetrix (login)",
                    scheme="wss",
                    ports=TM_PORTS,
                    active_oses=frozenset({"windows"}),
                )
            ]
        },
    )


class TestWebsiteInternalPages:
    def test_page_lookup(self):
        site = _login_site()
        page = site.page("/signin")
        assert page.url == "https://bank.example/signin"
        assert len(page.scripts) == 1

    def test_unknown_path_raises(self):
        with pytest.raises(KeyError):
            _login_site().page("/nope")

    def test_internal_behaviour_counts_as_local_behaviour(self):
        assert _login_site().has_local_behavior()


class TestCrawlerInternal:
    def test_landing_only_crawl_misses_login_scan(self):
        crawler = Crawler(OSEnvironment.for_os("windows"))
        record = crawler.crawl_site(_login_site())
        assert record.success
        assert not record.has_local_activity

    def test_internal_crawl_finds_login_scan(self):
        crawler = Crawler(
            OSEnvironment.for_os("windows"), include_internal=True
        )
        record = crawler.crawl_site(_login_site())
        assert record.has_local_activity
        assert record.detection is not None
        assert len(record.detection.localhost_requests) == len(TM_PORTS)

    def test_internal_crawl_respects_os_conditional_scripts(self):
        crawler = Crawler(OSEnvironment.for_os("linux"), include_internal=True)
        record = crawler.crawl_site(_login_site())
        assert not record.has_local_activity


class TestLoginScannerSeeds:
    def test_seeded_population_contains_scanners(self, top2020_population):
        for scanner in LOGIN_PAGE_SCANNERS:
            site = top2020_population.website(scanner.domain)
            assert scanner.login_path in site.internal_pages
            assert not site.behaviors  # landing page stays clean
            assert site.calibrated

    def test_login_scan_behavior_shape(self):
        behavior = login_scan_behavior(LOGIN_PAGE_SCANNERS[0])
        assert behavior.scheme == "wss"
        assert behavior.ports == TM_PORTS
        assert behavior.active_oses == frozenset({"windows"})

    def test_opt_out_removes_them(self):
        population = build_top_population(
            2020, scale=0.002, login_page_scanners=False
        )
        assert "chase.com" not in population.by_domain or not (
            population.website("chase.com").internal_pages
        )

    def test_deep_campaign_is_a_strict_superset(self, top2020_population):
        shallow = Campaign().run(top2020_population)
        deep = Campaign(include_internal=True).run(top2020_population)
        shallow_localhost = {
            f.domain for f in shallow.findings if f.has_localhost_activity
        }
        deep_localhost = {
            f.domain for f in deep.findings if f.has_localhost_activity
        }
        assert shallow_localhost < deep_localhost
        assert deep_localhost - shallow_localhost == {
            s.domain for s in LOGIN_PAGE_SCANNERS
        }
        # The surfaced sites classify as fraud detection, like their
        # landing-page cousins.
        for scanner in LOGIN_PAGE_SCANNERS:
            finding = deep.finding(scanner.domain)
            assert finding is not None
            assert finding.behavior is BehaviorClass.FRAUD_DETECTION
