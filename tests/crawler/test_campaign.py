"""Tests for multi-OS campaigns over the seeded populations."""

from repro.core.addresses import Locality
from repro.core.report import per_os_totals
from repro.core.signatures import BehaviorClass


class TestTop2020Campaign:
    def test_localhost_site_count_matches_paper(self, top2020_result):
        localhost = [
            f for f in top2020_result.findings if f.has_localhost_activity
        ]
        assert len(localhost) == 107

    def test_lan_site_count_matches_paper(self, top2020_result):
        lan = [f for f in top2020_result.findings if f.has_lan_activity]
        assert len(lan) == 9

    def test_no_overlap_between_localhost_and_lan_sites(self, top2020_result):
        localhost = {
            f.domain for f in top2020_result.findings if f.has_localhost_activity
        }
        lan = {f.domain for f in top2020_result.findings if f.has_lan_activity}
        assert not localhost & lan

    def test_per_os_totals(self, top2020_result):
        totals = per_os_totals(top2020_result.findings, Locality.LOCALHOST)
        assert totals == {"windows": 92, "linux": 54, "mac": 54}

    def test_behavior_distribution(self, top2020_result):
        from collections import Counter

        counts = Counter(
            f.behavior
            for f in top2020_result.findings
            if f.has_localhost_activity
        )
        assert counts[BehaviorClass.FRAUD_DETECTION] == 35
        assert counts[BehaviorClass.BOT_DETECTION] == 10
        assert counts[BehaviorClass.NATIVE_APPLICATION] == 12
        assert counts[BehaviorClass.DEVELOPER_ERROR] == 45
        assert counts[BehaviorClass.UNKNOWN] == 5

    def test_known_site_examples(self, top2020_result):
        ebay = top2020_result.finding("ebay.com")
        assert ebay is not None
        assert ebay.behavior is BehaviorClass.FRAUD_DETECTION
        assert ebay.oses_with_activity(Locality.LOCALHOST) == ("windows",)
        assert ebay.ports(Locality.LOCALHOST) == {
            3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950,
            6039, 6040, 63333, 7070,
        }
        faceit = top2020_result.finding("faceit.com")
        assert faceit.behavior is BehaviorClass.NATIVE_APPLICATION

    def test_stats_cover_three_oses(self, top2020_result):
        assert set(top2020_result.stats) == {"windows", "linux", "mac"}


class TestTop2021Campaign:
    def test_82_localhost_sites(self, top2021_result):
        localhost = [
            f for f in top2021_result.findings if f.has_localhost_activity
        ]
        assert len(localhost) == 82

    def test_8_lan_sites(self, top2021_result):
        lan = [f for f in top2021_result.findings if f.has_lan_activity]
        assert len(lan) == 8

    def test_no_bot_detection_in_2021(self, top2021_result):
        assert not any(
            f.behavior is BehaviorClass.BOT_DETECTION
            for f in top2021_result.findings
        )

    def test_windows_and_linux_only(self, top2021_result):
        assert set(top2021_result.stats) == {"windows", "linux"}
        totals = per_os_totals(top2021_result.findings, Locality.LOCALHOST)
        assert totals["windows"] == 82
        assert totals["linux"] == 48
        assert totals["mac"] == 0


class TestMaliciousCampaign:
    def test_localhost_marginals_match_table_2(self, malicious_result):
        by_category = {}
        for finding in malicious_result.findings:
            if not finding.has_localhost_activity:
                continue
            per_os = by_category.setdefault(
                finding.category, {"windows": 0, "linux": 0, "mac": 0}
            )
            for os_name in finding.oses_with_activity(Locality.LOCALHOST):
                per_os[os_name] += 1
        assert by_category["malware"] == {"windows": 72, "linux": 83, "mac": 75}
        assert by_category["phishing"] == {"windows": 25, "linux": 41, "mac": 9}
        assert "abuse" not in by_category

    def test_phishing_clones_classified_as_fraud(self, malicious_result):
        clone = malicious_result.finding("customer-ebay.com")
        assert clone is not None
        assert clone.behavior is BehaviorClass.FRAUD_DETECTION

    def test_no_internal_network_attacks(self, malicious_result):
        # Every malicious finding maps to a benign-origin behaviour class;
        # nothing matches an attack profile (there is none to match — the
        # paper found no attack traffic, and neither do we).
        allowed = {
            BehaviorClass.FRAUD_DETECTION,
            BehaviorClass.NATIVE_APPLICATION,
            BehaviorClass.DEVELOPER_ERROR,
            BehaviorClass.UNKNOWN,
        }
        assert {f.behavior for f in malicious_result.findings} <= allowed

    def test_dev_errors_dominate_malicious_localhost(self, malicious_result):
        localhost = [
            f for f in malicious_result.findings if f.has_localhost_activity
        ]
        dev = [
            f
            for f in localhost
            if f.behavior
            in (BehaviorClass.DEVELOPER_ERROR, BehaviorClass.NATIVE_APPLICATION)
        ]
        # Section 4.3.4: >90% of malicious localhost activity is developer
        # error (the clones being the main exception).
        assert len(dev) / len(localhost) > 0.75
