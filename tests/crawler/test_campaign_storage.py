"""Tests for campaigns persisting telemetry to the store."""

from repro.crawler.campaign import Campaign
from repro.storage.db import TelemetryStore
from repro.web.population import build_top_population


class TestCampaignStorage:
    def test_visits_and_local_requests_persisted(self):
        population = build_top_population(2020, scale=0.002)
        with TelemetryStore() as store:
            result = Campaign(store=store).run(population)
            # One visit row per (site, OS).
            assert store.visit_count("top2020") == len(population) * 3

            stored_localhost = set(
                store.domains_with_local_activity("top2020", "localhost")
            )
            measured_localhost = {
                f.domain for f in result.findings if f.has_localhost_activity
            }
            assert stored_localhost == measured_localhost

            stored_lan = set(
                store.domains_with_local_activity("top2020", "lan")
            )
            measured_lan = {
                f.domain for f in result.findings if f.has_lan_activity
            }
            assert stored_lan == measured_lan

    def test_stored_success_counts_match_stats(self):
        population = build_top_population(2020, scale=0.002)
        with TelemetryStore() as store:
            result = Campaign(store=store).run(population)
            stored = store.success_counts("top2020")
            for os_name, stats in result.stats.items():
                assert stored[os_name] == (stats.successes, stats.failures)

    def test_stored_requests_queryable_per_site(self):
        population = build_top_population(2020, scale=0.002)
        with TelemetryStore() as store:
            Campaign(store=store).run(population)
            rows = store.local_requests_for("top2020", "ebay.com")
            assert len(rows) == 14  # the ThreatMetrix scan, Windows only
            assert all(row.scheme == "wss" for row in rows)
            assert all(row.os_name == "windows" for row in rows)
