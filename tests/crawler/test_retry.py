"""Tests for the retry policy, virtual clock, and retrying crawler."""

import pytest

from repro.browser.errors import NetError, is_transient
from repro.crawler.crawl import Crawler, CrawlStats
from repro.crawler.retry import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    RetryPolicy,
    VirtualClock,
)
from repro.crawler.vm import OSEnvironment
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.web.website import Website


class TestErrorClassification:
    def test_transient_errors(self):
        for error in (
            NetError.ERR_NAME_NOT_RESOLVED,
            NetError.ERR_CONNECTION_RESET,
            NetError.ERR_TIMED_OUT,
            NetError.ERR_INTERNET_DISCONNECTED,
        ):
            assert is_transient(error), error

    def test_permanent_errors(self):
        for error in (
            NetError.OK,
            NetError.ERR_CERT_AUTHORITY_INVALID,
            NetError.ERR_CERT_COMMON_NAME_INVALID,
        ):
            assert not is_transient(error), error


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_no_retry_is_disabled(self):
        assert not NO_RETRY.enabled
        assert DEFAULT_RETRY_POLICY.enabled

    def test_should_retry_only_transient_within_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(NetError.ERR_CONNECTION_RESET, 1)
        assert policy.should_retry(NetError.ERR_CONNECTION_RESET, 2)
        assert not policy.should_retry(NetError.ERR_CONNECTION_RESET, 3)
        assert not policy.should_retry(NetError.ERR_CERT_AUTHORITY_INVALID, 1)

    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4)
        waits = [policy.backoff_ms("example.com", a) for a in (1, 2, 3)]
        assert waits[0] < waits[1] < waits[2]
        again = [policy.backoff_ms("example.com", a) for a in (1, 2, 3)]
        assert waits == again

    def test_backoff_jitter_varies_by_key(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.backoff_ms("a.example", 1) != policy.backoff_ms(
            "b.example", 1
        )


class TestVirtualClock:
    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100.0)
        assert clock.advance(50.0) == 150.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


def _faulted_crawler(policy, *, rate=1.0, times=1, seed="retry-test"):
    plan = FaultPlan(
        seed=seed, faults=(FaultSpec(kind=FaultKind.DNS, rate=rate, times=times),)
    )
    return Crawler(
        OSEnvironment.for_os("windows"),
        retry_policy=policy,
        injector=FaultInjector(plan=plan),
    )


class TestRetryingCrawler:
    def test_transient_fault_masked_by_retry(self):
        # rate=1.0 faults every domain; depth 2 < 3 attempts.
        crawler = _faulted_crawler(RetryPolicy(max_attempts=3), times=2)
        record = crawler.crawl_site(Website("flaky.example"))
        assert record.success
        assert record.attempts == 3
        assert record.recovered
        assert record.backoff_ms > 0.0
        assert crawler.clock.now_ms == record.backoff_ms

    def test_transient_fault_deeper_than_budget_fails(self):
        crawler = _faulted_crawler(RetryPolicy(max_attempts=2), times=3)
        record = crawler.crawl_site(Website("flaky.example"))
        assert not record.success
        assert record.error is NetError.ERR_NAME_NOT_RESOLVED
        assert record.attempts == 2
        assert not record.recovered

    def test_no_retry_keeps_seed_behaviour(self):
        crawler = _faulted_crawler(NO_RETRY, times=1)
        record = crawler.crawl_site(Website("flaky.example"))
        assert not record.success
        assert record.attempts == 1
        assert record.backoff_ms == 0.0

    def test_permanent_failure_not_retried(self):
        crawler = Crawler(
            OSEnvironment.for_os("windows"),
            retry_policy=RetryPolicy(max_attempts=5),
        )
        site = Website(
            "blocked.example",
            load_errors={"windows": NetError.ERR_CERT_AUTHORITY_INVALID},
        )
        record = crawler.crawl_site(site)
        assert not record.success
        assert record.attempts == 1

    def test_stats_account_for_retries(self):
        crawler = _faulted_crawler(RetryPolicy(max_attempts=3), times=2)
        stats = CrawlStats(os_name="windows", crawl="test")
        stats.record(crawler.crawl_site(Website("flaky.example")))
        stats.record(
            Crawler(OSEnvironment.for_os("windows")).crawl_site(
                Website("steady.example")
            )
        )
        assert stats.successes == 2
        assert stats.total_attempts == 4
        assert stats.retried == 1
        assert stats.recovered == 1
        assert stats.backoff_ms > 0.0


class TestOutageWaitBudget:
    def _crawler(self, policy, *, at_count=1, duration=1):
        plan = FaultPlan(
            seed="outage-test",
            faults=(
                FaultSpec(
                    kind=FaultKind.OUTAGE, at_count=at_count, duration=duration
                ),
            ),
        )
        return Crawler(
            OSEnvironment.for_os("windows"),
            retry_policy=policy,
            injector=FaultInjector(plan=plan),
            check_connectivity=True,
        )

    def test_bounded_outage_waited_out(self):
        crawler = self._crawler(RetryPolicy(max_attempts=3), duration=2)
        record = crawler.crawl_site(Website("steady.example"))
        assert record.success
        assert not record.connectivity_skipped
        assert record.backoff_ms > 0.0

    def test_outage_beyond_budget_records_skip(self):
        crawler = self._crawler(RetryPolicy(max_attempts=2), duration=50)
        record = crawler.crawl_site(Website("steady.example"))
        assert record.connectivity_skipped
        assert record.error is NetError.ERR_INTERNET_DISCONNECTED

    def test_no_retry_skips_immediately(self):
        crawler = self._crawler(NO_RETRY, duration=1)
        record = crawler.crawl_site(Website("steady.example"))
        assert record.connectivity_skipped
        assert record.backoff_ms == 0.0
