"""Sharded multi-process fabric: crash tolerance and merge equivalence.

The invariant under test is the tentpole claim: an N-shard run — even one
where shard processes are SIGKILLed mid-visit and resumed, stalled and
restarted, or abandoned entirely — merges into a rollup whose campaign
digest, finding fingerprints, and Table 1 statistics are byte-identical
to a serial single-process campaign.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from types import SimpleNamespace

import pytest

import repro
from repro.crawler.campaign import Campaign, finding_fingerprint
from repro.crawler.fabric import (
    CrawlFabric,
    FabricConfig,
    FabricError,
    resolve_shards,
)
from repro.crawler.shard import PopulationSpec, subpopulation
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.storage.db import TelemetryStore
from repro.storage.integrity import campaign_digest

CRAWL = "top2021"
SCALE = 0.003  # 300 domains x 2 OSes = 600 visits per full run


@pytest.fixture(scope="module")
def spec() -> PopulationSpec:
    return PopulationSpec(population=CRAWL, scale=SCALE)


@pytest.fixture(scope="module")
def serial(spec, tmp_path_factory):
    """The single-process ground truth every sharded run must reproduce."""
    path = str(tmp_path_factory.mktemp("serial") / "serial.db")
    with TelemetryStore(path, wal=True) as store:
        result = Campaign(store=store).run(spec.build())
        digest = campaign_digest(store, CRAWL)
    return SimpleNamespace(
        result=result,
        digest=digest,
        fingerprints=[finding_fingerprint(f) for f in result.findings],
        db=path,
    )


def run_fabric(spec, workdir, *, shards, plan=None, **config_kwargs):
    config_kwargs.setdefault("heartbeat_timeout_s", 30.0)
    fabric = CrawlFabric(
        spec,
        FabricConfig(shards=shards, **config_kwargs),
        workdir=str(workdir),
        fault_plan=plan,
    )
    outcome = fabric.run()
    return fabric, outcome


def rollup_digest(fabric) -> str:
    with TelemetryStore(fabric.rollup_path) as store:
        return campaign_digest(store, CRAWL)


def assert_matches_serial(fabric, outcome, serial) -> None:
    assert rollup_digest(fabric) == serial.digest
    assert [
        finding_fingerprint(f) for f in outcome.result.findings
    ] == serial.fingerprints
    assert outcome.result.stats == serial.result.stats


# -- planning units ----------------------------------------------------------


def test_resolve_shards_sentinel_and_validation():
    assert resolve_shards(3) == 3
    assert resolve_shards(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError, match="shards must be >= 0"):
        resolve_shards(-1)


def test_fabric_config_validation():
    with pytest.raises(ValueError, match="shards must be >= 1"):
        FabricConfig(shards=0)
    with pytest.raises(ValueError, match="chunk_size"):
        FabricConfig(shards=1, chunk_size=-1)
    with pytest.raises(ValueError, match="retries"):
        FabricConfig(shards=1, retries=0)


def test_partition_covers_every_domain_once(spec, tmp_path):
    fabric = CrawlFabric(
        spec, FabricConfig(shards=3), workdir=str(tmp_path)
    )
    domains = [w.domain for w in spec.build().websites]
    chunks = fabric._partition(domains)
    flattened = [d for chunk in chunks for d in chunk.domains]
    assert flattened == domains  # order preserved, nothing dropped
    # Auto-sizing leaves surplus to steal: more chunks than shards.
    assert len(chunks) >= 3


def test_subpopulation_preserves_site_identity(spec):
    population = spec.build()
    domains = tuple(w.domain for w in population.websites[10:20])
    sub = subpopulation(population, domains)
    assert [w.domain for w in sub.websites] == list(domains)
    assert sub.name == population.name
    assert sub.oses == population.oses
    assert sub.active_domains == population.active_domains & set(domains)
    # Same objects, not copies: ranks and injected load failures ride along.
    assert sub.websites[0] is population.by_domain[domains[0]]


def test_population_spec_rejects_unknown():
    with pytest.raises(ValueError, match="unknown population"):
        PopulationSpec(population="nope").build()


# -- clean sharded runs ------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 3])
def test_sharded_run_matches_serial(spec, serial, tmp_path, shards):
    fabric, outcome = run_fabric(spec, tmp_path, shards=shards)
    assert_matches_serial(fabric, outcome, serial)
    assert outcome.report.rows_merged == len(
        spec.build().websites
    ) * len(outcome.result.oses)
    assert not outcome.report.restarts
    assert not outcome.report.dead_shards


# -- crash / stall chaos -----------------------------------------------------


def test_sigkilled_shards_resume_to_identical_rollup(
    spec, serial, tmp_path
):
    """Every shard SIGKILLs itself mid-visit; restarts must converge."""
    plan = FaultPlan(
        seed="chaos-crash",
        faults=(
            FaultSpec(kind=FaultKind.SHARD_CRASH, rate=1.0, at_count=7),
        ),
    )
    fabric, outcome = run_fabric(spec, tmp_path, shards=2, plan=plan)
    # Both shards died once (generation 0) and were restarted-with-resume.
    assert sorted(outcome.report.restarts) == [0, 1]
    assert all(
        reasons == ["crash"]
        for reasons in outcome.report.restarts.values()
    )
    assert_matches_serial(fabric, outcome, serial)


def test_stalled_shard_is_killed_and_restarted(spec, serial, tmp_path):
    """A shard that stops heartbeating is detected, killed, restarted."""
    plan = FaultPlan(
        seed="chaos-stall",
        faults=(
            FaultSpec(
                kind=FaultKind.SHARD_STALL, rate=1.0, at_count=5,
                duration=30,
            ),
        ),
    )
    fabric, outcome = run_fabric(
        spec, tmp_path, shards=2, plan=plan, heartbeat_timeout_s=1.5
    )
    assert outcome.report.total_restarts >= 1
    assert any(
        "stall" in reasons
        for reasons in outcome.report.restarts.values()
    )
    assert_matches_serial(fabric, outcome, serial)


def _seed_selecting_only(shard_key: str, other_keys: list[str], rate: float):
    """Find a plan seed whose draw hits ``shard_key`` and nobody else."""
    for attempt in range(10_000):
        seed = f"pick-{attempt}"
        spec_ = FaultSpec(
            kind=FaultKind.SHARD_CRASH, rate=rate, at_count=4, times=99
        )
        plan = FaultPlan(seed=seed, faults=(spec_,))
        if plan.selects(spec_, shard_key) and not any(
            plan.selects(spec_, other) for other in other_keys
        ):
            return plan
    raise AssertionError("no selective seed found")


def test_dead_shard_work_is_reassigned(spec, serial, tmp_path):
    """A shard that dies every generation is abandoned; peers finish."""
    plan = _seed_selecting_only("shard-0", ["shard-1"], rate=0.5)
    fabric, outcome = run_fabric(
        spec, tmp_path, shards=2, plan=plan, max_restarts=1
    )
    assert outcome.report.dead_shards == [0]
    # The dead shard committed rows before each death; the peer re-crawled
    # its chunks, so the merge saw (and verified) duplicate content.
    assert outcome.report.duplicate_rows > 0
    assert_matches_serial(fabric, outcome, serial)


def test_all_shards_dead_raises(spec, tmp_path):
    plan = FaultPlan(
        seed="chaos-doom",
        faults=(
            FaultSpec(
                kind=FaultKind.SHARD_CRASH, rate=1.0, at_count=2, times=99
            ),
        ),
    )
    fabric = CrawlFabric(
        spec,
        FabricConfig(shards=2, max_restarts=1, heartbeat_timeout_s=30.0),
        workdir=str(tmp_path),
        fault_plan=plan,
    )
    with pytest.raises(FabricError, match="restart budget"):
        fabric.run()


# -- merge robustness --------------------------------------------------------


def test_merge_is_idempotent_and_survives_partial_merge(
    spec, serial, tmp_path
):
    """A merge killed mid-fold converges when re-run from scratch.

    Model: a first merge pass folds only one shard store (the state a
    SIGKILL mid-merge leaves behind), then the full merge runs — the
    partial rows must be verified as duplicates, never doubled.
    """
    fabric, outcome = run_fabric(spec, tmp_path, shards=2)
    assert_matches_serial(fabric, outcome, serial)
    partial_rollup = str(tmp_path / "partial-rollup.db")
    rebuilt = CrawlFabric(
        spec,
        FabricConfig(shards=2),
        workdir=str(tmp_path),
        rollup_path=partial_rollup,
    )
    # Partial pass: one shard store only, then "crash".
    with TelemetryStore(partial_rollup, wal=True) as rollup:
        with TelemetryStore(
            rebuilt._shard_store_paths()[0], wal=True
        ) as source:
            rebuilt._merge_store(source, rollup, CRAWL)
        rollup.commit()
    # Re-run the full merge: idempotent, converges to the serial digest.
    rebuilt._merge_all(CRAWL)
    rebuilt._merge_all(CRAWL)
    with TelemetryStore(partial_rollup) as store:
        assert campaign_digest(store, CRAWL) == serial.digest
    assert rebuilt.report.duplicate_rows > 0


def test_fabric_resume_completes_interrupted_run(spec, serial, tmp_path):
    """Simulated coordinator death: some shard stores full, rollup absent.

    ``run(resume=True)`` must fold the orphaned shard stores first and
    crawl only what is missing.
    """
    # Stage: run shard 0's half of the domains into a shard store, as an
    # interrupted fabric would have left it.
    population = spec.build()
    domains = [w.domain for w in population.websites]
    half = tuple(domains[: len(domains) // 2])
    store_path = str(tmp_path / "shard-00.db")
    with TelemetryStore(store_path, wal=True) as store:
        Campaign(store=store).run(subpopulation(population, half))
    fabric = CrawlFabric(
        spec,
        FabricConfig(shards=2, heartbeat_timeout_s=30.0),
        workdir=str(tmp_path),
    )
    outcome = fabric.run(resume=True)
    assert_matches_serial(fabric, outcome, serial)
    # The staged half arrived through the merge, not a re-crawl.
    assert outcome.report.chunks > 0
    assert outcome.report.rows_merged == len(domains) * len(
        population.oses
    )


# -- signal drain end to end -------------------------------------------------


@pytest.mark.slow
def test_sigint_drains_children_then_resume_finishes(tmp_path):
    """SIGINT to the coordinator propagates a drain to every shard,
    shard stores are merged (the coordinator checkpoint), the exit code
    is 130, and a --resume rerun converges to the serial result."""
    scale = 0.01
    db = str(tmp_path / "rollup.db")
    shard_dir = str(tmp_path / "shards")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    command = [
        sys.executable, "-m", "repro.cli", "study",
        "--population", CRAWL, "--scale", str(scale),
        "--shards", "2", "--db", db, "--shard-dir", shard_dir,
    ]
    process = subprocess.Popen(
        command, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    time.sleep(1.2)  # population build + early crawl; well short of done
    process.send_signal(signal.SIGINT)
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 130, (stdout, stderr)
    assert "interrupted" in stderr
    # The drain checkpointed: shard stores exist and were merged.
    assert os.path.exists(db)

    completed = subprocess.run(
        command + ["--resume"], env=env,
        capture_output=True, text=True, timeout=240,
    )
    assert completed.returncode == 0, (completed.stdout, completed.stderr)

    serial_db = str(tmp_path / "serial.db")
    with TelemetryStore(serial_db, wal=True) as store:
        Campaign(store=store).run(
            PopulationSpec(population=CRAWL, scale=scale).build()
        )
        expected = campaign_digest(store, CRAWL)
    with TelemetryStore(db) as store:
        assert campaign_digest(store, CRAWL) == expected
