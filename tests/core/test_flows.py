"""Tests for flow extraction from NetLog event streams."""

from repro.core.flows import extract_flows, page_load_time
from repro.netlog.constants import EventPhase, EventType, SourceType


class TestExtractFlows:
    def test_groups_by_source_id(self, events):
        events.request("http://a.example/", time=0.0)
        events.request("http://b.example/", time=5.0)
        flows = extract_flows(events.events)
        assert len(flows) == 2
        assert {f.url for f in flows} == {
            "http://a.example/",
            "http://b.example/",
        }

    def test_flow_order_matches_first_appearance(self, events):
        events.request("http://late-id.example/", time=0.0)
        events.request("http://early-time.example/", time=0.0)
        flows = extract_flows(events.events)
        assert flows[0].url == "http://late-id.example/"

    def test_browser_internal_sources_filtered(self, events):
        source = events.source(SourceType.BROWSER_INTERNAL)
        events.add(
            0.0,
            EventType.URL_REQUEST_START_JOB,
            source,
            EventPhase.BEGIN,
            url="http://chrome-internal.example/",
        )
        events.request("http://content.example/")
        flows = extract_flows(events.events)
        assert len(flows) == 1
        assert flows[0].url == "http://content.example/"

    def test_captures_method_and_initiator(self, events):
        source = events.source()
        events.add(
            1.0,
            EventType.URL_REQUEST_START_JOB,
            source,
            EventPhase.BEGIN,
            url="https://x.example/",
            method="POST",
            initiator="tracker.js",
        )
        flow = extract_flows(events.events)[0]
        assert flow.method == "POST"
        assert flow.initiator == "tracker.js"
        assert flow.begin_time == 1.0

    def test_redirect_chain_collected_in_order(self, events):
        events.request(
            "http://public.example/",
            redirects=("http://hop.example/", "http://127.0.0.1/"),
        )
        flow = extract_flows(events.events)[0]
        assert flow.redirect_chain == [
            "http://hop.example/",
            "http://127.0.0.1/",
        ]
        assert flow.all_urls() == [
            "http://public.example/",
            "http://hop.example/",
            "http://127.0.0.1/",
        ]

    def test_websocket_flag_and_url(self, events):
        events.request(
            "wss://localhost:5939/", source_type=SourceType.WEB_SOCKET
        )
        flow = extract_flows(events.events)[0]
        assert flow.is_websocket
        assert flow.url == "wss://localhost:5939/"

    def test_error_captured_from_request_alive_end(self, events):
        source = events.source()
        events.add(
            0.0,
            EventType.URL_REQUEST_START_JOB,
            source,
            EventPhase.BEGIN,
            url="http://dead.example/",
        )
        events.add(
            3.0,
            EventType.REQUEST_ALIVE,
            source,
            EventPhase.END,
            net_error=-105,
        )
        flow = extract_flows(events.events)[0]
        assert flow.failed
        assert flow.net_error == -105
        assert flow.duration_ms == 3.0

    def test_socket_error_wins_over_later_alive_end(self, events):
        source = events.source()
        events.add(
            0.0,
            EventType.URL_REQUEST_START_JOB,
            source,
            EventPhase.BEGIN,
            url="http://dead.example/",
        )
        events.add(1.0, EventType.SOCKET_ERROR, source, net_error=-102)
        events.add(2.0, EventType.REQUEST_ALIVE, source, EventPhase.END)
        flow = extract_flows(events.events)[0]
        assert flow.net_error == -102

    def test_truncated_flow_uses_last_event_time(self, events):
        source = events.source()
        events.add(
            0.0,
            EventType.URL_REQUEST_START_JOB,
            source,
            EventPhase.BEGIN,
            url="http://slow.example/",
        )
        events.add(7.5, EventType.TCP_CONNECT, source, EventPhase.END)
        flow = extract_flows(events.events)[0]
        assert flow.end_time == 7.5
        assert not flow.failed

    def test_target_parsing_tolerates_garbage(self, events):
        source = events.source()
        events.add(
            0.0,
            EventType.URL_REQUEST_START_JOB,
            source,
            EventPhase.BEGIN,
            url="garbage://???",
        )
        flow = extract_flows(events.events)[0]
        assert flow.target() is None

    def test_empty_stream(self):
        assert extract_flows([]) == []


class TestPageLoadTime:
    def test_finds_commit_timestamp(self, events):
        events.request("https://site.example/", time=0.0)
        events.page_commit("https://site.example/", time=140.0)
        assert page_load_time(events.events) == 140.0

    def test_none_without_commit(self, events):
        events.request("https://site.example/")
        assert page_load_time(events.events) is None
