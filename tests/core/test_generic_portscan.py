"""Tests for the opt-in generic localhost-portscan signature."""

from repro.core.addresses import parse_target
from repro.core.classifier import BehaviorClassifier
from repro.core.detector import LocalRequest
from repro.core.signatures import (
    GENERIC_PORTSCAN_SIGNATURE,
    BehaviorClass,
    default_signatures,
    iter_signature_names,
)


def _requests(urls):
    return [
        LocalRequest(target=parse_target(url), time=float(i), source_id=i + 1)
        for i, url in enumerate(urls)
    ]


class TestGenericPortScan:
    def test_shape_based_match_on_unknown_scan(self):
        # wowreality.info-style: many ports, one scheme, one path — ports
        # that match no fixed profile.
        urls = [f"http://127.0.0.1:{p}/" for p in range(20_000, 20_012)]
        match = GENERIC_PORTSCAN_SIGNATURE.match(_requests(urls))
        assert match is not None
        assert match.behavior is BehaviorClass.UNKNOWN
        assert "12 distinct localhost ports" in match.detail

    def test_requires_shared_scheme_and_path(self):
        # 12 ports split across two profiles of 6 — below threshold each.
        urls = [f"http://127.0.0.1:{p}/a" for p in range(100, 106)]
        urls += [f"https://127.0.0.1:{p}/b" for p in range(200, 206)]
        assert GENERIC_PORTSCAN_SIGNATURE.match(_requests(urls)) is None

    def test_below_threshold(self):
        urls = [f"http://127.0.0.1:{p}/" for p in range(300, 307)]
        assert GENERIC_PORTSCAN_SIGNATURE.match(_requests(urls)) is None

    def test_ignores_lan_requests(self):
        urls = [f"http://192.168.1.{i}:80/" for i in range(1, 20)]
        assert GENERIC_PORTSCAN_SIGNATURE.match(_requests(urls)) is None

    def test_not_in_default_chain(self):
        # The paper keeps shape-only scanners in Unknown; the default
        # chain must not include this matcher.
        assert "generic-localhost-portscan" not in iter_signature_names(
            default_signatures()
        )

    def test_usable_as_custom_chain_prefix(self):
        """A monitoring deployment watching for *future* scan variants
        prepends this signature to the default chain."""
        chain = [GENERIC_PORTSCAN_SIGNATURE] + default_signatures()
        classifier = BehaviorClassifier(chain)
        # A novel scan profile (evaded ports, per §5.1) gets flagged...
        novel = _requests(
            [f"wss://localhost:{p}/" for p in range(50_001, 50_015)]
        )
        verdict = classifier.classify(novel)
        assert verdict.signature_name == "generic-localhost-portscan"
        # ...while the known profiles are shadowed by the generic matcher
        # only in name; the flagged shape is the same behaviour.
        from repro.core.ports import THREATMETRIX_PORTS

        tm = _requests([f"wss://localhost:{p}/" for p in THREATMETRIX_PORTS])
        assert classifier.classify(tm).signature_name == (
            "generic-localhost-portscan"
        )
