"""Tests for destination locality classification and URL target parsing."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addresses import (
    Locality,
    TargetParseError,
    classify_host,
    classify_url,
    parse_ip,
    parse_target,
)


class TestClassifyHost:
    @pytest.mark.parametrize(
        "host",
        [
            "localhost",
            "LOCALHOST",
            "localhost.",
            "app.localhost",
            "localhost.localdomain",
            "127.0.0.1",
            "127.0.0.2",
            "127.255.255.254",
            "::1",
            "[::1]",
        ],
    )
    def test_localhost_destinations(self, host):
        assert classify_host(host) is Locality.LOCALHOST

    @pytest.mark.parametrize(
        "host",
        [
            "10.0.0.1",
            "10.255.255.255",
            "172.16.0.1",
            "172.31.255.255",
            "192.168.0.1",
            "192.168.255.255",
            "169.254.1.1",  # IPv4 link-local
            "fc00::1",  # IPv6 unique local
            "fdab::17",
            "fe80::1",  # IPv6 link-local
        ],
    )
    def test_lan_destinations(self, host):
        assert classify_host(host) is Locality.LAN

    @pytest.mark.parametrize(
        "host",
        [
            "example.com",
            "www.google.com",
            "8.8.8.8",
            "172.15.255.255",  # just below 172.16/12
            "172.32.0.0",  # just above 172.16/12
            "192.167.255.255",
            "192.169.0.0",
            "11.0.0.0",
            "9.255.255.255",
            "2001:db8::1",
            "",
            "not an ip at all",
            "localhost.evil.com",  # localhost as a label, not a suffix
        ],
    )
    def test_public_destinations(self, host):
        assert classify_host(host) is Locality.PUBLIC

    def test_ipv4_mapped_ipv6_follows_v4_rules(self):
        assert classify_host("::ffff:192.168.1.5") is Locality.LAN
        assert classify_host("::ffff:8.8.8.8") is Locality.PUBLIC

    @given(st.ip_addresses(v=4))
    @settings(max_examples=200, deadline=None)
    def test_matches_stdlib_semantics_v4(self, ip):
        """Our classification must agree with the stdlib's RFC1918 view."""
        verdict = classify_host(str(ip))
        if ip.is_loopback:
            assert verdict is Locality.LOCALHOST
        elif ip.is_private and not ip.is_loopback and (
            ip in ipaddress.ip_network("10.0.0.0/8")
            or ip in ipaddress.ip_network("172.16.0.0/12")
            or ip in ipaddress.ip_network("192.168.0.0/16")
            or ip in ipaddress.ip_network("169.254.0.0/16")
        ):
            assert verdict is Locality.LAN
        else:
            assert verdict is Locality.PUBLIC


class TestParseIp:
    def test_bracketed_v6(self):
        parsed = parse_ip("[fe80::1]")
        assert parsed is not None and parsed.version == 6

    def test_domain_returns_none(self):
        assert parse_ip("example.com") is None


class TestParseTarget:
    def test_defaults_ports_per_scheme(self):
        assert parse_target("http://localhost/").port == 80
        assert parse_target("https://localhost/").port == 443
        assert parse_target("ws://localhost/").port == 80
        assert parse_target("wss://localhost/").port == 443

    def test_explicit_port_and_query(self):
        target = parse_target("http://127.0.0.1:14440/?code=1&dummy=2")
        assert target.port == 14440
        assert target.path == "/?code=1&dummy=2"
        assert target.locality is Locality.LOCALHOST

    def test_empty_path_becomes_root(self):
        assert parse_target("wss://localhost:5939").path == "/"

    def test_origin_and_url_roundtrip(self):
        target = parse_target("wss://localhost:5939/")
        assert target.origin == "wss://localhost:5939"
        assert target.url() == "wss://localhost:5939/"

    def test_url_omits_default_port(self):
        assert parse_target("http://10.0.0.1/a").url() == "http://10.0.0.1/a"

    def test_hostnames_are_lowercased(self):
        assert parse_target("http://LOCALHOST:80/").host == "localhost"

    @pytest.mark.parametrize(
        "url",
        [
            "ftp://example.com/",
            "file:///etc/passwd",
            "http://",
            "not a url",
            "http://example.com:99999/",
        ],
    )
    def test_rejects_unusable_urls(self, url):
        with pytest.raises(TargetParseError):
            parse_target(url)

    def test_ipv6_literal_target(self):
        target = parse_target("http://[::1]:8080/x")
        assert target.locality is Locality.LOCALHOST
        assert target.port == 8080


class TestClassifyUrl:
    def test_malformed_urls_are_public(self):
        assert classify_url("garbage") is Locality.PUBLIC
        assert classify_url("ftp://localhost/") is Locality.PUBLIC

    def test_local_urls(self):
        assert classify_url("ws://localhost:2687/") is Locality.LOCALHOST
        assert classify_url("http://192.168.1.8/a.css") is Locality.LAN

    @given(
        scheme=st.sampled_from(["http", "https", "ws", "wss"]),
        port=st.integers(1, 65535),
        path=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            max_size=12,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_loopback_always_localhost(self, scheme, port, path):
        url = f"{scheme}://127.0.0.1:{port}/{path}"
        assert classify_url(url) is Locality.LOCALHOST
