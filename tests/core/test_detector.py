"""Tests for the local-traffic detector."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addresses import Locality
from repro.core.detector import LocalTrafficDetector
from repro.netlog.constants import SourceType


class TestDetection:
    def test_detects_localhost_request(self, events):
        events.page_commit("https://site.example/", time=100.0)
        events.request("http://localhost:8000/setuid", time=2100.0)
        result = LocalTrafficDetector().detect(events.events)
        assert result.has_local_activity
        (request,) = result.requests
        assert request.locality is Locality.LOCALHOST
        assert request.port == 8000
        assert request.path == "/setuid"

    def test_detects_lan_request(self, events):
        events.request("http://192.168.64.160/wp-content/uploads/a.jpg")
        result = LocalTrafficDetector().detect(events.events)
        assert [r.locality for r in result.requests] == [Locality.LAN]
        assert result.lan_requests and not result.localhost_requests

    def test_public_traffic_ignored(self, events):
        events.request("https://cdn.example/app.js")
        events.request("https://fonts.example/roboto.woff2")
        result = LocalTrafficDetector().detect(events.events)
        assert not result.has_local_activity
        assert result.total_flows == 2

    def test_websocket_localhost(self, events):
        events.request(
            "wss://localhost:5939/", source_type=SourceType.WEB_SOCKET
        )
        result = LocalTrafficDetector().detect(events.events)
        assert result.requests[0].scheme == "wss"

    def test_redirect_to_local_counts(self, events):
        events.request(
            "http://public.example/home", redirects=("http://127.0.0.1:80/",)
        )
        result = LocalTrafficDetector().detect(events.events)
        (request,) = result.requests
        assert request.via_redirect
        assert request.locality is Locality.LOCALHOST

    def test_redirects_can_be_disabled(self, events):
        events.request(
            "http://public.example/home", redirects=("http://127.0.0.1:80/",)
        )
        detector = LocalTrafficDetector(include_redirects=False)
        assert not detector.detect(events.events).has_local_activity

    def test_requests_sorted_by_time(self, events):
        events.request("http://localhost:2/", time=500.0)
        events.request("http://localhost:1/", time=100.0)
        result = LocalTrafficDetector().detect(events.events)
        assert [r.port for r in result.requests] == [1, 2]

    def test_first_delay_uses_page_commit_anchor(self, events):
        events.page_commit("https://site.example/", time=1000.0)
        events.request("http://localhost:9000/x.js", time=4000.0)
        events.request("http://localhost:9001/y.js", time=6000.0)
        result = LocalTrafficDetector().detect(events.events)
        assert result.first_local_request_delay_ms(Locality.LOCALHOST) == 3000.0
        assert result.first_local_request_delay_ms(Locality.LAN) is None

    def test_first_delay_none_without_anchor(self, events):
        events.request("http://localhost:9000/")
        result = LocalTrafficDetector().detect(events.events)
        assert result.first_local_request_delay_ms(Locality.LOCALHOST) is None

    def test_ports_and_schemes_accessors(self, events):
        events.request("http://localhost:80/a")
        events.request("wss://localhost:5939/", source_type=SourceType.WEB_SOCKET)
        events.request("http://10.1.2.3:8080/b")
        result = LocalTrafficDetector().detect(events.events)
        assert result.ports(Locality.LOCALHOST) == {80, 5939}
        assert result.schemes(Locality.LOCALHOST) == {"http", "wss"}
        assert result.ports(Locality.LAN) == {8080}
        assert result.ports() == {80, 5939, 8080}

    def test_initiator_propagates(self, events):
        source = events.source()
        from repro.netlog.constants import EventPhase, EventType

        events.add(
            0.0,
            EventType.URL_REQUEST_START_JOB,
            source,
            EventPhase.BEGIN,
            url="http://localhost:5005/xook.js",
            initiator="xenotix",
        )
        result = LocalTrafficDetector().detect(events.events)
        assert result.requests[0].initiator == "xenotix"

    @given(
        ports=st.lists(st.integers(1, 65535), min_size=1, max_size=20, unique=True)
    )
    @settings(max_examples=30, deadline=None)
    def test_every_localhost_probe_is_found(self, ports):
        from tests.conftest import EventBuilder

        builder = EventBuilder()
        for index, port in enumerate(ports):
            builder.request(f"http://localhost:{port}/", time=float(index))
        result = LocalTrafficDetector().detect(builder.events)
        assert result.ports(Locality.LOCALHOST) == set(ports)


class TestSinkLifecycle:
    def test_sink_refuses_reuse_after_finish(self, events):
        events.request("http://localhost:8000/x")
        sink = LocalTrafficDetector().sink()
        for event in events.events:
            sink.accept(event)
        result = sink.finish()
        assert result.has_local_activity
        import pytest

        with pytest.raises(RuntimeError, match="finish"):
            sink.finish()
        with pytest.raises(RuntimeError, match="fresh sink"):
            sink.accept(events.events[0])

    def test_fresh_sink_per_stream_is_equivalent(self, events):
        events.request("http://localhost:8000/x")
        first = LocalTrafficDetector().sink()
        second = LocalTrafficDetector().sink()
        for event in events.events:
            first.accept(event)
            second.accept(event)
        assert first.finish().requests == second.finish().requests
