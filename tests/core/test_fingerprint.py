"""Tests for the host-fingerprinting study (§5.2 extension)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import (
    DEFAULT_SERVICE_POOL,
    FingerprintStudy,
    HostProfile,
    ScanObservation,
    run_study,
    scan_host,
    synthetic_host_population,
)
from repro.core.ports import THREATMETRIX_PORTS


class TestScanHost:
    def test_observes_exactly_the_open_scanned_ports(self):
        profile = HostProfile(
            label="h", open_ports=frozenset({3389, 6463, 40000})
        )
        observation = scan_host(profile, THREATMETRIX_PORTS)
        # 6463 and 40000 are open but not scanned; only 3389 is both.
        assert observation.open_ports == (3389,)

    def test_clean_host_observes_nothing(self):
        profile = HostProfile(label="clean", open_ports=frozenset())
        observation = scan_host(profile, THREATMETRIX_PORTS)
        assert observation.open_ports == ()
        assert observation.bits_observed == 0

    def test_lan_devices_observed(self):
        profile = HostProfile(
            label="home",
            open_ports=frozenset(),
            lan_devices=frozenset({"192.168.1.1"}),
        )
        observation = scan_host(
            profile, (), devices=("192.168.1.1", "192.168.1.2")
        )
        assert observation.reachable_devices == ("192.168.1.1",)

    def test_observation_is_order_independent(self):
        profile = HostProfile(label="h", open_ports=frozenset({5939, 3389}))
        a = scan_host(profile, (3389, 5939))
        b = scan_host(profile, (5939, 3389))
        assert a == b


class TestFingerprintStudy:
    def test_empty_study(self):
        study = FingerprintStudy()
        assert study.entropy_bits() == 0.0
        assert study.unique_fraction() == 0.0
        assert study.median_anonymity_set() == 0.0

    def test_uniform_population_has_zero_entropy(self):
        study = FingerprintStudy(
            observations=[ScanObservation(open_ports=()) for _ in range(50)]
        )
        assert study.entropy_bits() == 0.0
        assert study.unique_fraction() == 0.0
        assert study.median_anonymity_set() == 50

    def test_all_distinct_population_hits_max_entropy(self):
        study = FingerprintStudy(
            observations=[
                ScanObservation(open_ports=(port,)) for port in range(16)
            ]
        )
        assert study.entropy_bits() == pytest.approx(4.0)
        assert study.entropy_bits() == pytest.approx(study.max_entropy_bits())
        assert study.unique_fraction() == 1.0
        assert study.median_anonymity_set() == 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_entropy_bounded_by_log2_n(self, pairs):
        study = FingerprintStudy(
            observations=[ScanObservation(open_ports=pair) for pair in pairs]
        )
        assert 0.0 <= study.entropy_bits() <= study.max_entropy_bits() + 1e-9
        assert 0.0 <= study.unique_fraction() <= 1.0


class TestSyntheticPopulation:
    def test_deterministic(self):
        pool = [p for p, _ in DEFAULT_SERVICE_POOL]
        rates = [r for _, r in DEFAULT_SERVICE_POOL]
        a = synthetic_host_population(100, service_pool=pool, adoption=rates)
        b = synthetic_host_population(100, service_pool=pool, adoption=rates)
        assert a == b

    def test_adoption_extremes(self):
        always = synthetic_host_population(
            20, service_pool=[80], adoption=[1.0]
        )
        never = synthetic_host_population(
            20, service_pool=[80], adoption=[0.0]
        )
        assert all(80 in h.open_ports for h in always)
        assert all(not h.open_ports for h in never)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            synthetic_host_population(5, service_pool=[80], adoption=[])
        with pytest.raises(ValueError):
            synthetic_host_population(5, service_pool=[80], adoption=[1.5])

    def test_scan_yields_meaningful_entropy(self):
        """The §5.2 claim: local scans carry real identifying signal."""
        pool = [p for p, _ in DEFAULT_SERVICE_POOL]
        rates = [r for _, r in DEFAULT_SERVICE_POOL]
        profiles = synthetic_host_population(
            2000, service_pool=pool, adoption=rates
        )
        study = run_study(profiles, pool)
        assert study.entropy_bits() > 2.0
        # Theoretical per-port entropy sum bounds the measured entropy.
        bound = sum(
            -(r * math.log2(r) + (1 - r) * math.log2(1 - r))
            for _, r in DEFAULT_SERVICE_POOL
            if 0 < r < 1
        )
        assert study.entropy_bits() <= bound + 1e-6
