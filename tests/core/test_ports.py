"""Tests for the port knowledge base (Table 4)."""

import pytest

from repro.core.ports import (
    BIGIP_ASM_PORTS,
    DEFAULT_REGISTRY,
    THREATMETRIX_PORTS,
    PortRegistry,
    PortService,
    ScanPurpose,
)


class TestTable4Contents:
    def test_fourteen_fraud_ports(self):
        assert len(THREATMETRIX_PORTS) == 14
        assert DEFAULT_REGISTRY.ports_for(ScanPurpose.FRAUD_DETECTION) == set(
            THREATMETRIX_PORTS
        )

    def test_seven_bot_ports(self):
        assert len(BIGIP_ASM_PORTS) == 7
        assert DEFAULT_REGISTRY.ports_for(ScanPurpose.BOT_DETECTION) == set(
            BIGIP_ASM_PORTS
        )

    def test_scan_profiles_do_not_overlap(self):
        assert not set(THREATMETRIX_PORTS) & set(BIGIP_ASM_PORTS)

    @pytest.mark.parametrize(
        ("port", "service"),
        [
            (3389, "Windows Remote Desktop"),
            (5939, "TeamViewer"),
            (7070, "AnyDesk Remote Desktop"),
            (17556, "Microsoft Edge WebDriver"),
            (9515, "W32.Loxbot.A"),
        ],
    )
    def test_known_service_names(self, port, service):
        assert DEFAULT_REGISTRY.service_name(port) == service

    def test_malware_ports_match_paper(self):
        # Table 4: 4 of the 7 bot-detection ports belong to known malware.
        assert DEFAULT_REGISTRY.malware_ports() == {4444, 4653, 5555, 9515}

    def test_unknown_port(self):
        assert DEFAULT_REGISTRY.lookup(31337) is None
        assert DEFAULT_REGISTRY.service_name(31337) == "Unknown"

    def test_rows_sorted_by_port(self):
        rows = DEFAULT_REGISTRY.rows()
        assert [r.port for r in rows] == sorted(r.port for r in rows)
        assert len(rows) == len(DEFAULT_REGISTRY)


class TestRegistryMutation:
    def test_register_new_service(self):
        registry = PortRegistry()
        registry.register(
            PortService(6463, "Discord RPC", ScanPurpose.FRAUD_DETECTION)
        )
        assert registry.service_name(6463) == "Discord RPC"
        # The module-level default must not be affected.
        assert DEFAULT_REGISTRY.lookup(6463) is None

    def test_register_replaces(self):
        registry = PortRegistry()
        registry.register(
            PortService(3389, "RDP (renamed)", ScanPurpose.FRAUD_DETECTION)
        )
        assert registry.service_name(3389) == "RDP (renamed)"

    @pytest.mark.parametrize("port", [0, -1, 65536])
    def test_invalid_port_rejected(self, port):
        registry = PortRegistry()
        with pytest.raises(ValueError):
            registry.register(
                PortService(port, "x", ScanPurpose.FRAUD_DETECTION)
            )

    def test_describe(self):
        row = DEFAULT_REGISTRY.lookup(4444)
        assert row is not None
        assert row.describe().startswith("4444: Malware: ")
