"""Tests for behaviour signatures and their matching rules."""

import pytest

from repro.core.addresses import parse_target
from repro.core.detector import LocalRequest
from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS
from repro.core.signatures import (
    BIGIP_ASM_SIGNATURE,
    CENSORSHIP_SIGNATURE,
    DEVELOPER_ERROR_SIGNATURE,
    NATIVE_APP_SIGNATURES,
    THREATMETRIX_SIGNATURE,
    BehaviorClass,
    DeveloperErrorKind,
    PortScanSignature,
    SignatureMatch,
    default_signatures,
    iter_signature_names,
)


def _request(url: str, *, via_redirect: bool = False) -> LocalRequest:
    return LocalRequest(
        target=parse_target(url),
        time=0.0,
        source_id=1,
        via_redirect=via_redirect,
    )


def _scan(scheme: str, ports, path: str = "/"):
    return [_request(f"{scheme}://localhost:{port}{path}") for port in ports]


class TestThreatMetrixSignature:
    def test_full_scan_matches(self):
        match = THREATMETRIX_SIGNATURE.match(_scan("wss", THREATMETRIX_PORTS))
        assert match is not None
        assert match.behavior is BehaviorClass.FRAUD_DETECTION
        assert match.confidence == 1.0

    def test_partial_scan_matches_with_lower_confidence(self):
        match = THREATMETRIX_SIGNATURE.match(
            _scan("wss", THREATMETRIX_PORTS[:8])
        )
        assert match is not None
        assert match.confidence < 1.0

    def test_too_few_ports_do_not_match(self):
        assert THREATMETRIX_SIGNATURE.match(_scan("wss", [3389, 5939])) is None

    def test_wrong_scheme_does_not_match(self):
        assert THREATMETRIX_SIGNATURE.match(_scan("http", THREATMETRIX_PORTS)) is None

    def test_wrong_path_does_not_match(self):
        requests = _scan("wss", THREATMETRIX_PORTS, path="/fingerprint")
        assert THREATMETRIX_SIGNATURE.match(requests) is None

    def test_duplicate_ports_counted_once(self):
        # 12 probes of only 3 distinct ports must not satisfy min_ports.
        requests = _scan("wss", [3389, 5939, 7070] * 4)
        assert THREATMETRIX_SIGNATURE.match(requests) is None


class TestBigIpSignature:
    def test_full_scan_matches(self):
        match = BIGIP_ASM_SIGNATURE.match(_scan("http", BIGIP_ASM_PORTS))
        assert match is not None
        assert match.behavior is BehaviorClass.BOT_DETECTION

    def test_https_variant_does_not_match(self):
        assert BIGIP_ASM_SIGNATURE.match(_scan("https", BIGIP_ASM_PORTS)) is None


class TestNativeAppSignatures:
    @pytest.mark.parametrize(
        ("url", "expected"),
        [
            ("ws://localhost:6463/?v=1", "discord-client"),
            ("ws://localhost:6472/?v=1", "discord-client"),
            ("ws://localhost:28337/", "faceit-client"),
            ("https://127.0.0.1:14443/?code=9&dummy=1", "nprotect-online-security"),
            ("wss://localhost:31027/", "anysign"),
            ("http://127.0.0.1:12071/v1/init.json?api_port=1", "gamehouse-client"),
            ("http://127.0.0.1:2081/version?_=5", "iwin-client"),
            ("ws://localhost:60202/check", "gameslol-client"),
            ("http://127.0.0.1:5320/status", "screenleap-client"),
            ("http://127.0.0.1:6878/webui/api/service", "acestream-client"),
            ("http://127.0.0.1:51505/socket.io", "trustdice-client"),
            ("http://127.0.0.1:16423/get_client_ver?v=2", "iqiyi-client"),
            ("http://127.0.0.1:28317/get_thunder_version/", "thunder-client"),
            ("wss://localhost:64443/service/cryptapi", "eimzo-cryptapi"),
            ("ws://localhost:38684/", "gnway-client"),
            ("https://127.0.0.1:4000/socket.io/?EIO=3", "mcgeeandco-socketio"),
        ],
    )
    def test_each_known_endpoint_matches(self, url, expected):
        request = _request(url)
        matches = [
            s.name
            for s in NATIVE_APP_SIGNATURES
            if s.match([request]) is not None
        ]
        assert expected in matches

    def test_discord_port_with_wrong_path_does_not_match(self):
        discord = next(s for s in NATIVE_APP_SIGNATURES if s.name == "discord-client")
        assert discord.match([_request("ws://localhost:6463/other")]) is None

    def test_wrong_scheme_rejected(self):
        faceit = next(s for s in NATIVE_APP_SIGNATURES if s.name == "faceit-client")
        assert faceit.match([_request("http://127.0.0.1:28337/")]) is None


class TestDeveloperErrorSignature:
    @pytest.mark.parametrize(
        ("url", "kind"),
        [
            ("http://127.0.0.1:8888/wp-content/uploads/x.jpg",
             DeveloperErrorKind.LOCAL_FILE_SERVER),
            ("http://127.0.0.1/wp-includes/js/jquery.js",
             DeveloperErrorKind.LOCAL_FILE_SERVER),
            ("http://127.0.0.1:80/Silk%20Static/intro.mp4",
             DeveloperErrorKind.LOCAL_FILE_SERVER),
            ("http://127.0.0.1/robots.txt",
             DeveloperErrorKind.LOCAL_FILE_SERVER),
            ("http://localhost:5005/xook.js", DeveloperErrorKind.PEN_TEST),
            ("https://localhost:35729/livereload.js",
             DeveloperErrorKind.LIVERELOAD),
            ("http://localhost:9000/sockjs-node/info?t=1",
             DeveloperErrorKind.SOCKJS_NODE),
            ("http://localhost:8000/setuid",
             DeveloperErrorKind.OTHER_LOCAL_SERVICE),
            ("https://localhost:1931/record/state",
             DeveloperErrorKind.OTHER_LOCAL_SERVICE),
        ],
    )
    def test_kind_attribution(self, url, kind):
        match = DEVELOPER_ERROR_SIGNATURE.match([_request(url)])
        assert match is not None
        assert match.behavior is BehaviorClass.DEVELOPER_ERROR
        assert match.dev_error_kind is kind

    def test_pen_test_wins_over_generic_js(self):
        # xook.js ends in .js — the pen-test rule must take precedence.
        match = DEVELOPER_ERROR_SIGNATURE.match(
            [_request("http://localhost:5005/xook.js")]
        )
        assert match is not None
        assert match.dev_error_kind is DeveloperErrorKind.PEN_TEST

    def test_redirect_to_local_root(self):
        match = DEVELOPER_ERROR_SIGNATURE.match(
            [_request("http://127.0.0.1:80/", via_redirect=True)]
        )
        assert match is not None
        assert match.dev_error_kind is DeveloperErrorKind.REDIRECT

    def test_lone_root_localhost_service(self):
        match = DEVELOPER_ERROR_SIGNATURE.match(
            [_request("http://localhost:56666/")]
        )
        assert match is not None
        assert match.dev_error_kind is DeveloperErrorKind.OTHER_LOCAL_SERVICE
        assert match.confidence < 0.5

    def test_lone_root_repeated_across_oses_still_matches(self):
        requests = [_request("http://localhost:56666/") for _ in range(3)]
        assert DEVELOPER_ERROR_SIGNATURE.match(requests) is not None

    def test_multi_port_root_scan_does_not_match(self):
        requests = [
            _request("http://localhost:1080/"),
            _request("http://localhost:3306/"),
        ]
        assert DEVELOPER_ERROR_SIGNATURE.match(requests) is None

    def test_json_poll_does_not_match(self):
        # hola.org's /peers.json polls stay in the Unknown class.
        assert (
            DEVELOPER_ERROR_SIGNATURE.match(
                [_request("http://127.0.0.1:6880/peers.json")]
            )
            is None
        )

    def test_lan_root_does_not_match_lone_root_rule(self):
        assert (
            DEVELOPER_ERROR_SIGNATURE.match([_request("http://10.10.34.35:80/")])
            is None
        )


class TestCensorshipSignature:
    def test_blackhole_iframe_matches(self):
        match = CENSORSHIP_SIGNATURE.match([_request("http://10.10.34.35:80/")])
        assert match is not None
        assert match.behavior is BehaviorClass.UNKNOWN
        assert match.signature == "censorship-lan-iframe"

    def test_other_lan_roots_do_not_match(self):
        assert CENSORSHIP_SIGNATURE.match([_request("http://10.0.0.1:80/")]) is None

    def test_blackhole_with_path_does_not_match(self):
        assert (
            CENSORSHIP_SIGNATURE.match([_request("http://10.10.34.35/x.png")])
            is None
        )


class TestSignatureChain:
    def test_chain_order(self):
        names = iter_signature_names(default_signatures())
        assert names[0] == "lan-sweep"  # the attack class is checked first
        assert names[1] == "threatmetrix"
        assert names[2] == "bigip-asm-bot-defense"
        assert names[-1] == "developer-error"
        assert "censorship-lan-iframe" in names

    def test_confidence_bounds_enforced(self):
        with pytest.raises(ValueError):
            SignatureMatch(
                behavior=BehaviorClass.UNKNOWN, signature="x", confidence=1.5
            )

    def test_port_scan_signature_is_reusable(self):
        custom = PortScanSignature(
            name="custom-scan",
            behavior=BehaviorClass.FRAUD_DETECTION,
            scheme="https",
            ports=frozenset({1, 2, 3, 4}),
            min_ports=2,
        )
        assert custom.match(_scan("https", [1, 2])) is not None
        assert custom.match(_scan("https", [1])) is None
