"""Cross-cutting property-based tests on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addresses import parse_target
from repro.core.classifier import BehaviorClassifier
from repro.core.detector import LocalRequest, LocalTrafficDetector
from repro.core.ports import THREATMETRIX_PORTS
from repro.core.signatures import BehaviorClass
from tests.conftest import EventBuilder

# -- strategies ----------------------------------------------------------

_local_hosts = st.sampled_from(
    ["localhost", "127.0.0.1", "10.0.0.5", "192.168.1.8", "172.16.9.9"]
)
_schemes = st.sampled_from(["http", "https", "ws", "wss"])
_paths = st.sampled_from(
    ["/", "/wp-content/uploads/a.jpg", "/peers.json", "/livereload.js",
     "/?v=1", "/status", "/sockjs-node/info?t=1"]
)


@st.composite
def _local_requests(draw, min_size=1, max_size=30):
    urls = draw(
        st.lists(
            st.builds(
                lambda s, h, p, path: f"{s}://{h}:{p}{path}",
                _schemes,
                _local_hosts,
                st.integers(1, 65535),
                _paths,
            ),
            min_size=min_size,
            max_size=max_size,
        )
    )
    return [
        LocalRequest(target=parse_target(url), time=float(i), source_id=i + 1)
        for i, url in enumerate(urls)
    ]


class TestClassifierProperties:
    @given(_local_requests())
    @settings(max_examples=80, deadline=None)
    def test_always_returns_a_verdict(self, requests):
        verdict = BehaviorClassifier().classify(requests)
        assert isinstance(verdict.behavior, BehaviorClass)

    @given(_local_requests())
    @settings(max_examples=50, deadline=None)
    def test_order_invariance(self, requests):
        classifier = BehaviorClassifier()
        forward = classifier.classify(requests)
        backward = classifier.classify(list(reversed(requests)))
        assert forward.behavior is backward.behavior

    @given(_local_requests())
    @settings(max_examples=50, deadline=None)
    def test_duplication_invariance(self, requests):
        """Seeing the same traffic from three OS crawls must not change
        the verdict (the per-OS pooling case)."""
        classifier = BehaviorClassifier()
        single = classifier.classify(requests)
        tripled = classifier.classify(requests * 3)
        assert single.behavior is tripled.behavior

    @given(st.permutations(list(THREATMETRIX_PORTS)))
    @settings(max_examples=20, deadline=None)
    def test_tm_scan_detected_in_any_probe_order(self, ports):
        requests = [
            LocalRequest(
                target=parse_target(f"wss://localhost:{p}/"),
                time=float(i),
                source_id=i + 1,
            )
            for i, p in enumerate(ports)
        ]
        verdict = BehaviorClassifier().classify(requests)
        assert verdict.behavior is BehaviorClass.FRAUD_DETECTION


class TestDetectorProperties:
    @given(
        st.lists(
            st.tuples(_schemes, _local_hosts, st.integers(1, 65535)),
            min_size=0,
            max_size=20,
        ),
        st.lists(
            st.sampled_from(
                ["https://cdn.example/app.js", "http://fonts.example/r.woff2"]
            ),
            max_size=5,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_detects_exactly_the_local_requests(self, local, public):
        builder = EventBuilder()
        for index, (scheme, host, port) in enumerate(local):
            builder.request(f"{scheme}://{host}:{port}/", time=float(index))
        for index, url in enumerate(public):
            builder.request(url, time=100.0 + index)
        detection = LocalTrafficDetector().detect(builder.events)
        assert len(detection.requests) == len(local)
        assert detection.total_flows == len(local) + len(public)

    @given(_local_requests(min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_detection_via_flows_is_stable(self, requests):
        """Feeding detected requests' URLs back through a fresh event
        stream reproduces identical targets (fixpoint property)."""
        builder = EventBuilder()
        for request in requests:
            builder.request(request.target.url(), time=request.time or 0.0)
        detection = LocalTrafficDetector().detect(builder.events)
        detected = sorted((r.target for r in detection.requests), key=str)
        original = sorted((r.target for r in requests), key=str)
        assert detected == original
