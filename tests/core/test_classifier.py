"""Tests for the behaviour classifier."""

from repro.core.addresses import parse_target
from repro.core.classifier import BehaviorClassifier
from repro.core.detector import LocalRequest
from repro.core.ports import BIGIP_ASM_PORTS, THREATMETRIX_PORTS
from repro.core.signatures import BehaviorClass, DeveloperErrorKind


def _request(url: str, via_redirect: bool = False) -> LocalRequest:
    return LocalRequest(
        target=parse_target(url), time=0.0, source_id=1, via_redirect=via_redirect
    )


def _tm_scan():
    return [_request(f"wss://localhost:{p}/") for p in THREATMETRIX_PORTS]


class TestClassify:
    def test_fraud_detection(self):
        verdict = BehaviorClassifier().classify(_tm_scan())
        assert verdict.behavior is BehaviorClass.FRAUD_DETECTION
        assert verdict.signature_name == "threatmetrix"

    def test_bot_detection(self):
        requests = [_request(f"http://localhost:{p}/") for p in BIGIP_ASM_PORTS]
        verdict = BehaviorClassifier().classify(requests)
        assert verdict.behavior is BehaviorClass.BOT_DETECTION

    def test_native_application(self):
        verdict = BehaviorClassifier().classify(
            [_request("ws://localhost:6463/?v=1")]
        )
        assert verdict.behavior is BehaviorClass.NATIVE_APPLICATION
        assert verdict.signature_name == "discord-client"

    def test_developer_error_with_kind(self):
        verdict = BehaviorClassifier().classify(
            [_request("http://127.0.0.1/wp-content/uploads/x.png")]
        )
        assert verdict.behavior is BehaviorClass.DEVELOPER_ERROR
        assert verdict.dev_error_kind is DeveloperErrorKind.LOCAL_FILE_SERVER

    def test_unknown_residual(self):
        requests = [
            _request(f"http://127.0.0.1:{p}/peers.json") for p in range(6880, 6890)
        ]
        verdict = BehaviorClassifier().classify(requests)
        assert verdict.behavior is BehaviorClass.UNKNOWN
        assert verdict.signature_name is None

    def test_first_match_wins(self):
        # A ThreatMetrix scan plus one dev-error fetch classifies as fraud:
        # specific signatures precede the heuristic catch-all.
        requests = _tm_scan() + [_request("http://127.0.0.1/wp-content/a.png")]
        verdict = BehaviorClassifier().classify(requests)
        assert verdict.behavior is BehaviorClass.FRAUD_DETECTION

    def test_empty_requests_unknown(self):
        assert (
            BehaviorClassifier().classify([]).behavior is BehaviorClass.UNKNOWN
        )

    def test_stats_accumulate(self):
        classifier = BehaviorClassifier()
        classifier.classify(_tm_scan())
        classifier.classify([])
        assert classifier.stats.total == 2
        assert classifier.stats.by_behavior[BehaviorClass.FRAUD_DETECTION] == 1
        assert classifier.stats.by_behavior[BehaviorClass.UNKNOWN] == 1


class TestClassifyPerOs:
    def test_pools_evidence_across_oses(self):
        # Scan only visible on Windows; Linux/Mac contribute nothing.
        verdict = BehaviorClassifier().classify_per_os(
            {"windows": _tm_scan(), "linux": [], "mac": []}
        )
        assert verdict.behavior is BehaviorClass.FRAUD_DETECTION

    def test_custom_signature_chain(self):
        from repro.core.signatures import EndpointSignature

        only = EndpointSignature(
            name="only",
            app="App",
            ports=frozenset({9}),
            path_pattern=r"^/$",
        )
        classifier = BehaviorClassifier([only])
        assert classifier.classify(
            [_request("http://localhost:9/")]
        ).behavior is BehaviorClass.NATIVE_APPLICATION
        # Everything else (even a real TM scan) is UNKNOWN in this chain.
        assert classifier.classify(_tm_scan()).behavior is BehaviorClass.UNKNOWN
