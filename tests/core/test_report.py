"""Tests for SiteFinding and overlap/rollup helpers."""

from repro.core.addresses import Locality, parse_target
from repro.core.detector import DetectionResult, LocalRequest
from repro.core.report import (
    SiteFinding,
    findings_with_activity,
    os_overlap_partition,
    per_os_totals,
)


def _detection(urls: list[str], page_load: float = 100.0) -> DetectionResult:
    requests = [
        LocalRequest(
            target=parse_target(url),
            time=page_load + 1000.0 * (index + 1),
            source_id=index + 2,
        )
        for index, url in enumerate(urls)
    ]
    return DetectionResult(requests=requests, page_load_time=page_load)


def _finding(domain="site.example", rank=1, per_os=None) -> SiteFinding:
    return SiteFinding(domain=domain, rank=rank, per_os=per_os or {})


class TestSiteFinding:
    def test_oses_with_activity_respects_locality(self):
        finding = _finding(
            per_os={
                "windows": _detection(["wss://localhost:3389/"]),
                "linux": _detection(["http://10.0.0.1/a.jpg"]),
            }
        )
        assert finding.oses_with_activity(Locality.LOCALHOST) == ("windows",)
        assert finding.oses_with_activity(Locality.LAN) == ("linux",)
        assert finding.has_localhost_activity and finding.has_lan_activity

    def test_os_order_is_canonical(self):
        finding = _finding(
            per_os={
                "mac": _detection(["http://localhost:1/"]),
                "windows": _detection(["http://localhost:1/"]),
            }
        )
        assert finding.oses_with_activity(Locality.LOCALHOST) == (
            "windows",
            "mac",
        )

    def test_requests_filtering(self):
        finding = _finding(
            per_os={
                "windows": _detection(
                    ["http://localhost:80/a", "http://192.168.1.1/b"]
                )
            }
        )
        assert len(finding.requests()) == 2
        assert len(finding.requests(Locality.LOCALHOST)) == 1
        assert len(finding.requests(Locality.LAN, "windows")) == 1
        assert finding.requests(Locality.LAN, "linux") == []

    def test_ports_schemes_lan_addresses(self):
        finding = _finding(
            per_os={
                "linux": _detection(
                    ["https://192.168.33.10:443/x.png", "http://10.1.1.1:8080/y"]
                )
            }
        )
        assert finding.ports(Locality.LAN) == {443, 8080}
        assert finding.schemes(Locality.LAN) == {"https", "http"}
        assert finding.lan_addresses() == {"192.168.33.10", "10.1.1.1"}

    def test_first_request_delay(self):
        finding = _finding(
            per_os={"mac": _detection(["http://localhost:9/"], page_load=500.0)}
        )
        assert finding.first_request_delay_ms(Locality.LOCALHOST, "mac") == 1000.0
        assert finding.first_request_delay_ms(Locality.LOCALHOST, "linux") is None


class TestRollups:
    def _population(self):
        return [
            _finding("w-only.example", 1, {"windows": _detection(["ws://localhost:1/"])}),
            _finding(
                "all.example",
                2,
                {
                    "windows": _detection(["http://localhost:2/"]),
                    "linux": _detection(["http://localhost:2/"]),
                    "mac": _detection(["http://localhost:2/"]),
                },
            ),
            _finding("lan.example", 3, {"linux": _detection(["http://10.0.0.9/"])}),
            _finding("inactive.example", 4, {}),
        ]

    def test_findings_with_activity(self):
        population = self._population()
        localhost = findings_with_activity(population, Locality.LOCALHOST)
        assert {f.domain for f in localhost} == {"w-only.example", "all.example"}
        lan = findings_with_activity(population, Locality.LAN)
        assert {f.domain for f in lan} == {"lan.example"}

    def test_overlap_partition(self):
        partition = os_overlap_partition(self._population(), Locality.LOCALHOST)
        assert partition[frozenset({"windows"})] == 1
        assert partition[frozenset({"windows", "linux", "mac"})] == 1
        assert len(partition) == 2

    def test_per_os_totals(self):
        totals = per_os_totals(self._population(), Locality.LOCALHOST)
        assert totals == {"windows": 2, "linux": 1, "mac": 1}
