"""Regression tests for the documented CLI exit-code convention.

Every subcommand returns ``EXIT_OK`` (0), ``EXIT_ISSUES`` (1) or
``EXIT_USAGE`` (2) — plus ``EXIT_INTERRUPTED`` (130) for signal stops —
with diagnostics on stderr.  The full table lives in docs/API.md; these
tests pin the behavior the table promises.
"""

import pytest

from repro.cli import (
    EXIT_INTERRUPTED,
    EXIT_ISSUES,
    EXIT_OK,
    EXIT_USAGE,
    main,
)
from repro.serve.report import analyze_report_text

from .serve.conftest import build_upload


@pytest.fixture
def netlog_file(tmp_path):
    path = tmp_path / "visit.netlog.json"
    path.write_bytes(
        build_upload(["http://localhost:8000/x", "https://cdn.example/a.js"])
    )
    return str(path)


@pytest.fixture
def text_file(tmp_path):
    path = tmp_path / "not-a-db.txt"
    path.write_text("definitely not sqlite\n")
    return str(path)


class TestConvention:
    def test_the_contract_is_the_documented_one(self):
        assert (EXIT_OK, EXIT_ISSUES, EXIT_USAGE, EXIT_INTERRUPTED) == (
            0, 1, 2, 130,
        )

    def test_unknown_subcommand_exits_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == EXIT_USAGE
        assert "invalid choice" in capsys.readouterr().err


class TestAnalyze:
    def test_ok(self, netlog_file, capsys):
        assert main(["analyze", netlog_file]) == EXIT_OK
        assert "localhost" in capsys.readouterr().out

    def test_json_emits_canonical_report(self, netlog_file, capsys):
        assert main(["analyze", "--json", netlog_file]) == EXIT_OK
        with open(netlog_file, "rb") as fp:
            expected = analyze_report_text(fp.read())
        assert capsys.readouterr().out == expected

    def test_missing_file_is_usage(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "absent.json")])
        assert code == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_non_netlog_is_usage(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        assert main(["analyze", "--json", str(path)]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err


class TestStoreCommands:
    def test_fsck_missing_db_is_usage(self, tmp_path, capsys):
        code = main(["fsck", "--db", str(tmp_path / "absent.sqlite")])
        assert code == EXIT_USAGE
        assert "no such database" in capsys.readouterr().err

    def test_fsck_non_database_is_usage(self, text_file, capsys):
        assert main(["fsck", "--db", text_file]) == EXIT_USAGE
        assert "not a telemetry database" in capsys.readouterr().err

    def test_deadletter_non_database_is_usage(self, text_file, capsys):
        code = main(["deadletter", "list", "--db", text_file])
        assert code == EXIT_USAGE
        assert "not a telemetry database" in capsys.readouterr().err

    def test_metrics_non_snapshot_is_usage(self, text_file, capsys):
        assert main(["metrics", text_file]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err


def _coverage_record(**overrides):
    record = {
        "format": "repro-chaos-coverage-v1",
        "seed": "chaos-conformance",
        "budget": 40,
        "schedules_run": 1,
        "elapsed_s": 0.5,
        "coverage_percent": 100.0,
        "seams": [
            {
                "kind": "dns",
                "hook": "dns_hook",
                "layer": "browser.dns",
                "driver": "campaign",
                "fires": 3,
                "covered": True,
            }
        ],
        "pairs_fired": [],
        "schedules": [],
        "violations": [],
    }
    record.update(overrides)
    return record


class TestChaos:
    def test_missing_subcommand_is_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos"])
        assert excinfo.value.code == EXIT_USAGE

    def test_run_zero_budget_is_usage(self, capsys):
        assert main(["chaos", "run", "--budget", "0"]) == EXIT_USAGE
        assert "--budget" in capsys.readouterr().err

    def test_run_bad_scale_is_usage(self, capsys):
        assert main(["chaos", "run", "--scale", "0"]) == EXIT_USAGE
        assert "--scale" in capsys.readouterr().err

    def test_run_unknown_driver_is_usage(self, capsys):
        code = main(["chaos", "run", "--drivers", "campaign,bogus"])
        assert code == EXIT_USAGE
        assert "--drivers" in capsys.readouterr().err

    def test_coverage_missing_file_is_usage(self, tmp_path, capsys):
        code = main(["chaos", "coverage", str(tmp_path / "absent.json")])
        assert code == EXIT_USAGE
        assert "cannot read coverage report" in capsys.readouterr().err

    def test_coverage_invalid_json_is_usage(self, text_file, capsys):
        assert main(["chaos", "coverage", text_file]) == EXIT_USAGE
        assert "invalid coverage report" in capsys.readouterr().err

    def test_coverage_wrong_format_is_usage(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text('{"format": "bogus"}')
        assert main(["chaos", "coverage", str(path)]) == EXIT_USAGE
        assert "invalid coverage report" in capsys.readouterr().err

    def test_coverage_complete_report_is_ok(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        path.write_text(json.dumps(_coverage_record()))
        assert main(["chaos", "coverage", str(path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "coverage 100.0%" in out
        assert "violations: none" in out

    def test_coverage_incomplete_report_is_issues(self, tmp_path, capsys):
        import json

        record = _coverage_record(coverage_percent=50.0)
        record["seams"][0]["fires"] = 0
        record["seams"][0]["covered"] = False
        path = tmp_path / "report.json"
        path.write_text(json.dumps(record))
        assert main(["chaos", "coverage", str(path)]) == EXIT_ISSUES
        assert "NO" in capsys.readouterr().out

    def test_coverage_violating_report_is_issues(self, tmp_path, capsys):
        import json

        record = _coverage_record(
            violations=[
                {
                    "schedule": "pair:dns+tls",
                    "driver": "campaign",
                    "invariant": "campaign-digest-equality",
                    "detail": "digest diverged",
                    "repro": None,
                    "shrink_iterations": 6,
                    "minimal_specs": 2,
                }
            ]
        )
        path = tmp_path / "report.json"
        path.write_text(json.dumps(record))
        assert main(["chaos", "coverage", str(path)]) == EXIT_ISSUES
        assert "campaign-digest-equality" in capsys.readouterr().out

    def test_replay_missing_file_is_usage(self, tmp_path, capsys):
        code = main(["chaos", "replay", str(tmp_path / "absent.json")])
        assert code == EXIT_USAGE
        assert "cannot read repro" in capsys.readouterr().err

    def test_replay_invalid_repro_is_usage(self, text_file, capsys):
        assert main(["chaos", "replay", text_file]) == EXIT_USAGE
        assert "invalid repro" in capsys.readouterr().err


class TestServe:
    def test_resume_without_db_is_usage(self, capsys):
        assert main(["serve", "--resume"]) == EXIT_USAGE
        assert "--resume requires --db" in capsys.readouterr().err

    def test_unreadable_fault_plan_is_usage(self, tmp_path, capsys):
        code = main(
            ["serve", "--fault-plan", str(tmp_path / "absent.json")]
        )
        assert code == EXIT_USAGE
        assert "fault plan" in capsys.readouterr().err

    def test_invalid_config_is_usage(self, capsys):
        assert main(["serve", "--workers", "0"]) == EXIT_USAGE
        assert "workers" in capsys.readouterr().err
