"""Tests for blocklist feeds and one-URL-per-domain dedup."""

import pytest

from repro.toplists.blocklists import (
    Blocklist,
    BlocklistEntry,
    dedupe_one_url_per_domain,
    synthesize_feed,
)


class TestBlocklistEntry:
    def test_domain_extraction(self):
        entry = BlocklistEntry(
            url="http://Evil.Example/pay/load.exe",
            category="malware",
            source="urlhaus",
        )
        assert entry.domain == "evil.example"

    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError):
            BlocklistEntry(url="http://x/", category="ads", source="surbl")

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            BlocklistEntry(url="http://x/", category="abuse", source="unknown")


class TestDedup:
    def test_one_url_per_domain(self):
        feed = synthesize_feed(
            "urlhaus",
            "malware",
            ["a.example", "b.example"],
            source="urlhaus",
            urls_per_domain=3,
        )
        assert len(feed) == 6
        selected = dedupe_one_url_per_domain([feed])
        assert len(selected) == 2
        assert {e.domain for e in selected} == {"a.example", "b.example"}

    def test_first_feed_wins_across_lists(self):
        phishtank = synthesize_feed(
            "phishtank", "phishing", ["dual.example"], source="phishtank"
        )
        surbl = synthesize_feed(
            "surbl", "abuse", ["dual.example", "only-surbl.example"],
            source="surbl",
        )
        selected = dedupe_one_url_per_domain([phishtank, surbl])
        by_domain = {e.domain: e for e in selected}
        assert by_domain["dual.example"].category == "phishing"
        assert by_domain["only-surbl.example"].category == "abuse"

    def test_first_url_within_feed_wins(self):
        feed = Blocklist(
            "urlhaus",
            [
                BlocklistEntry(
                    url="http://a.example/first", category="malware",
                    source="urlhaus",
                ),
                BlocklistEntry(
                    url="http://a.example/second", category="malware",
                    source="urlhaus",
                ),
            ],
        )
        (selected,) = dedupe_one_url_per_domain([feed])
        assert selected.url.endswith("/first")

    def test_invalid_urls_per_domain(self):
        with pytest.raises(ValueError):
            synthesize_feed("f", "abuse", [], source="surbl", urls_per_domain=0)
