"""Tests for Tranco-style list building."""

import pytest

from repro.toplists.tranco import TopListEntry, TrancoList, build_top_list


class TestTrancoList:
    def test_lookup_both_ways(self):
        top = TrancoList(
            "t", [TopListEntry(1, "a.example"), TopListEntry(2, "b.example")]
        )
        assert top.rank_of("a.example") == 1
        assert top.rank_of("missing.example") is None
        assert "b.example" in top
        assert top.domains() == ["a.example", "b.example"]

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            TrancoList(
                "t", [TopListEntry(1, "a.example"), TopListEntry(1, "b.example")]
            )

    def test_duplicate_domains_rejected(self):
        with pytest.raises(ValueError):
            TrancoList(
                "t", [TopListEntry(1, "a.example"), TopListEntry(2, "a.example")]
            )

    def test_entries_sorted_by_rank(self):
        top = TrancoList(
            "t", [TopListEntry(5, "e.example"), TopListEntry(2, "b.example")]
        )
        assert [e.rank for e in top] == [2, 5]
        assert top.head(1)[0].domain == "b.example"


class TestBuildTopList:
    def test_seeds_land_on_requested_ranks(self):
        top = build_top_list("t", 100, {"ebay.example": 10, "citi.example": 20})
        assert top.rank_of("ebay.example") == 10
        assert top.rank_of("citi.example") == 20
        assert len(top) == 100

    def test_rank_collisions_shift_down(self):
        top = build_top_list("t", 100, {"a.example": 5, "b.example": 5})
        ranks = sorted([top.rank_of("a.example"), top.rank_of("b.example")])
        assert ranks == [5, 6]

    def test_filler_fills_remaining_slots(self):
        top = build_top_list("t", 10, {"x.example": 3})
        assert len(top) == 10
        assert sum(1 for e in top if e.domain.startswith("site-")) == 9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_top_list("t", 0, {})
        with pytest.raises(ValueError):
            build_top_list("t", 10, {"a.example": 0})
        with pytest.raises(ValueError):
            build_top_list("t", 3, {"a": 1, "b": 2, "c": 3, "d": 4})

    def test_reuse_fraction_controls_overlap(self):
        first = build_top_list("t1", 1000, {}, filler_generation="a")
        second = build_top_list(
            "t2",
            1000,
            {},
            filler_generation="b",
            reuse_filler_from=first,
            reuse_fraction=0.75,
        )
        overlap = len(set(first.domains()) & set(second.domains()))
        assert overlap == 750

    def test_reused_filler_skips_seed_collisions(self):
        first = build_top_list("t1", 20, {}, filler_generation="a")
        seed_domain = first.domains()[0]
        second = build_top_list(
            "t2",
            20,
            {seed_domain: 15},
            filler_generation="b",
            reuse_filler_from=first,
        )
        assert second.rank_of(seed_domain) == 15
        assert len(set(second.domains())) == 20
