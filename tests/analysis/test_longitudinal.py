"""Tests for behaviour-transition longitudinal analysis."""

from repro.analysis.longitudinal import (
    INACTIVE,
    NOT_CRAWLED,
    behavior_transitions,
    class_churn,
)
from repro.core.signatures import BehaviorClass


class TestTransitions:
    def test_bot_detection_vanishes_entirely(
        self, top2020_result, top2021_result, top2021_population
    ):
        crawled_2021 = {w.domain for w in top2021_population.websites}
        matrix = behavior_transitions(
            top2020_result.findings,
            top2021_result.findings,
            second_round_crawled=crawled_2021,
        )
        gone = matrix.stopped(BehaviorClass.BOT_DETECTION)
        assert gone == 10  # every 2020 BIG-IP deployer stopped
        assert (
            matrix.count(
                BehaviorClass.BOT_DETECTION.value,
                BehaviorClass.BOT_DETECTION.value,
            )
            == 0
        )

    def test_fraud_detection_continues_and_churns(
        self, top2020_result, top2021_result, top2021_population
    ):
        crawled_2021 = {w.domain for w in top2021_population.websites}
        matrix = behavior_transitions(
            top2020_result.findings,
            top2021_result.findings,
            second_round_crawled=crawled_2021,
        )
        fraud = BehaviorClass.FRAUD_DETECTION.value
        assert matrix.count(fraud, fraud) == 25  # the continuing deployers
        assert matrix.count(fraud, INACTIVE) == 10  # citi, tiaa, ...
        assert matrix.count(INACTIVE, fraud) == 5  # cibc.com and friends

    def test_off_list_sites_distinguished_from_stopped(
        self, top2020_result, top2021_result, top2021_population
    ):
        crawled_2021 = {w.domain for w in top2021_population.websites}
        matrix = behavior_transitions(
            top2020_result.findings,
            top2021_result.findings,
            second_round_crawled=crawled_2021,
        )
        native = BehaviorClass.NATIVE_APPLICATION.value
        # cponline.pw / screenleap / acestream / runeline fell off the
        # 2021 list; gamehouse stayed listed but stopped.
        assert matrix.count(native, NOT_CRAWLED) == 4
        assert matrix.count(native, INACTIVE) == 1

    def test_render(self, top2020_result, top2021_result):
        matrix = behavior_transitions(
            top2020_result.findings, top2021_result.findings
        )
        text = matrix.render()
        assert "Fraud Detection" in text
        assert "->" in text


class TestClassChurn:
    def test_fraud_churn_numbers(self, top2020_result, top2021_result):
        churn = class_churn(
            top2020_result.findings,
            top2021_result.findings,
            BehaviorClass.FRAUD_DETECTION,
        )
        assert churn.first_round == 35
        assert churn.second_round == 30
        assert churn.continued == 25
        assert churn.stopped == 10
        assert churn.started == 5

    def test_dev_error_churn(self, top2020_result, top2021_result):
        churn = class_churn(
            top2020_result.findings,
            top2021_result.findings,
            BehaviorClass.DEVELOPER_ERROR,
        )
        assert churn.first_round == 45
        assert churn.second_round == 28  # 8 continuing + 20 new
        assert churn.continued == 8
