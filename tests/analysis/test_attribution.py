"""Tests for WHOIS-based initiator/vendor attribution."""

from repro.analysis.attribution import (
    attribute_site,
    initiator_domain,
    third_party_share,
    vendor_rollup,
)
from repro.core.addresses import Locality
from repro.web.whois import WhoisRecord, WhoisRegistry, default_registry


class TestInitiatorDomain:
    def test_behaviour_style_initiators(self):
        assert initiator_domain("threatmetrix@ebay-us.com") == "ebay-us.com"
        assert (
            initiator_domain("dev-file:smartcatdesign.net")
            == "smartcatdesign.net"
        )

    def test_script_url_initiators(self):
        assert (
            initiator_domain("https://regstat.betfair.com/tm.js")
            == "regstat.betfair.com"
        )

    def test_no_domain(self):
        assert initiator_domain("FACEIT client") is None
        assert initiator_domain(None) is None
        assert initiator_domain("") is None


class TestWhoisRegistry:
    def test_exact_lookup(self):
        registry = default_registry()
        assert registry.organization("ebay-us.com") == "ThreatMetrix Inc."

    def test_suffix_lookup(self):
        registry = default_registry()
        assert (
            registry.organization("regstat.betfair.com")
            == "ThreatMetrix Inc."
        )
        # And deeper labels under a registered suffix.
        assert (
            registry.organization("a.b.online-metrix.net")
            == "ThreatMetrix Inc."
        )

    def test_unknown_domain(self):
        assert default_registry().organization("nowhere.example") is None

    def test_register(self):
        registry = WhoisRegistry()
        registry.register(WhoisRecord("corp.example", "Corp"))
        assert registry.organization("www.corp.example") == "Corp"
        assert len(registry) == 1


class TestCampaignAttribution:
    def test_threatmetrix_sites_attributed_to_vendor(self, top2020_result):
        ebay = top2020_result.finding("ebay.com")
        attribution = attribute_site(ebay)
        assert "ebay-us.com" in attribution.third_party_domains
        assert "ThreatMetrix Inc." in attribution.organizations
        assert attribution.is_third_party

    def test_dev_error_sites_are_first_party(self, top2020_result):
        site = top2020_result.finding("smartcatdesign.net")
        attribution = attribute_site(site)
        assert not attribution.is_third_party

    def test_vendor_rollup_counts_tm_deployers(self, top2020_result):
        rollup = vendor_rollup(
            top2020_result.findings, locality=Locality.LOCALHOST
        )
        # All 35 fraud-detection deployers trace to ThreatMetrix Inc.
        assert rollup.sites_by_org["ThreatMetrix Inc."] == 35
        serving = rollup.serving_domains_by_org["ThreatMetrix Inc."]
        assert "ebay-us.com" in serving
        assert "regstat.betfair.com" in serving
        assert "h.online-metrix.net" in serving

    def test_third_party_share(self, top2020_result):
        share = third_party_share(top2020_result.findings)
        # 35 fraud sites of 107 localhost-active are vendor-driven.
        assert abs(share - 35 / 107) < 0.01
