"""Tests for CSV/JSON exports."""

import csv
import io
import json

from repro.analysis.export import (
    export_campaign,
    findings_to_json,
    write_ports_csv,
    write_rank_cdf_csv,
    write_timing_cdf_csv,
)


class TestCsvExports:
    def test_rank_cdf_rows(self, top2020_result):
        buffer = io.StringIO()
        rows = write_rank_cdf_csv(top2020_result.findings, buffer)
        assert rows == 92 + 54 + 54
        reader = csv.DictReader(io.StringIO(buffer.getvalue()))
        parsed = list(reader)
        assert parsed[0].keys() == {"os", "rank", "cdf"}
        windows = [r for r in parsed if r["os"] == "windows"]
        assert float(windows[-1]["cdf"]) == 1.0
        ranks = [int(r["rank"]) for r in windows]
        assert ranks == sorted(ranks)

    def test_timing_cdf_rows(self, top2020_result):
        buffer = io.StringIO()
        rows = write_timing_cdf_csv(top2020_result.findings, buffer)
        assert rows == 92 + 54 + 54
        body = buffer.getvalue()
        assert body.startswith("os,delay_s,cdf")

    def test_ports_rows_sum_to_request_totals(self, top2020_result):
        buffer = io.StringIO()
        write_ports_csv(top2020_result.findings, buffer)
        reader = csv.DictReader(io.StringIO(buffer.getvalue()))
        windows_total = sum(
            int(row["requests"])
            for row in reader
            if row["os"] == "windows"
        )
        from repro.analysis import rq2
        from repro.core.addresses import Locality

        breakdowns = rq2.protocol_port_breakdowns(
            top2020_result.findings, Locality.LOCALHOST
        )
        assert windows_total == breakdowns["windows"].total_requests


class TestJsonExport:
    def test_findings_roundtrip_shape(self, top2020_result):
        data = findings_to_json(top2020_result.findings)
        assert len(data) == len(top2020_result.findings)
        text = json.dumps(data)  # must be JSON-serialisable
        ebay = next(d for d in data if d["domain"] == "ebay.com")
        assert ebay["behavior"] == "Fraud Detection"
        assert ebay["oses_localhost"] == ["windows"]
        assert len(ebay["requests"]) == 14
        assert "wss" in text


class TestExportBundle:
    def test_writes_all_artifacts(self, top2020_result, tmp_path):
        written = export_campaign(
            top2020_result.findings, tmp_path, prefix="top2020"
        )
        assert set(written) == {"findings", "rank_cdf", "timing_cdf", "ports"}
        for path in written.values():
            assert path.exists()
            assert path.stat().st_size > 0
        loaded = json.loads(written["findings"].read_text())
        assert len(loaded) == len(top2020_result.findings)
