"""Edge-case tests: analyses over empty or degenerate inputs."""

from repro.analysis import figures, rq1, rq2, rq3, tables
from repro.analysis.attribution import third_party_share, vendor_rollup
from repro.core.addresses import Locality
from repro.core.report import SiteFinding


class TestEmptyFindings:
    def test_rq1_summary(self):
        summary = rq1.summarize_activity([], Locality.LOCALHOST)
        assert summary.total_sites == 0
        assert summary.per_os == {}
        assert summary.overlap == {}
        assert summary.all_os_equivalent == 0

    def test_rq1_ranks_and_top(self):
        assert rq1.ranks_by_os([], Locality.LOCALHOST) == {}
        assert rq1.top_ranked([], Locality.LOCALHOST, "windows") == []
        assert rq1.sites_within_rank([], Locality.LOCALHOST, 10_000) == []

    def test_rq2_breakdowns(self):
        breakdowns = rq2.protocol_port_breakdowns([], Locality.LOCALHOST)
        for breakdown in breakdowns.values():
            assert breakdown.total_requests == 0
            assert breakdown.dominant_scheme() is None
        assert rq2.first_request_delays_s([], Locality.LOCALHOST) == {}
        assert rq2.websocket_share([], Locality.LOCALHOST, "windows") == 0.0

    def test_rq3_rollups(self):
        assert rq3.behavior_counts([], Locality.LOCALHOST) == {}
        assert rq3.dev_error_breakdown([], Locality.LOCALHOST) == {}
        clones = rq3.detect_phishing_clones([])
        assert clones.count == 0

    def test_attribution(self):
        assert third_party_share([]) == 0.0
        assert vendor_rollup([]).sites_by_org == {}

    def test_tables_render_empty(self):
        assert tables.table_5([]).rows == []
        assert tables.table_6([]).rows == []
        assert tables.table_11([]).rows == []
        assert tables.table_1([]).rows == []

    def test_figures_render_empty(self):
        fig2 = figures.figure_2([])
        assert fig2.data["total"] == 0
        fig3 = figures.figure_3([])
        assert fig3.data["ranks"] == {}
        assert "(no data)" in fig3.text
        fig5 = figures.figure_5([])
        assert fig5.data == {"localhost": {}, "lan": {}}


class TestDegenerateFindings:
    def test_finding_without_rank_excluded_from_rank_series(self):
        finding = SiteFinding(domain="norank.example", rank=None)
        assert rq1.ranks_by_os([finding], Locality.LOCALHOST) == {}

    def test_finding_without_classification(self):
        finding = SiteFinding(domain="x.example", rank=5)
        assert finding.behavior is None
        assert finding.dev_error_kind is None
        # Rollups skip unclassified findings rather than crash.
        assert rq3.behavior_counts([finding], Locality.LOCALHOST) == {}

    def test_rank_cdf_with_single_site(self):
        from repro.core.addresses import parse_target
        from repro.core.detector import DetectionResult, LocalRequest

        detection = DetectionResult(
            requests=[
                LocalRequest(
                    target=parse_target("http://localhost:1/"),
                    time=1.0,
                    source_id=1,
                )
            ],
            page_load_time=0.0,
        )
        finding = SiteFinding(
            domain="solo.example", rank=42, per_os={"windows": detection}
        )
        fig = figures.figure_3([finding])
        assert fig.data["ranks"] == {"windows": [42]}
