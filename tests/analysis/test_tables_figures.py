"""Tests for the table and figure renderers."""

from repro.analysis import figures, tables
from repro.core.signatures import BehaviorClass
from repro.web import seeds as S


class TestTable1:
    def test_rows_and_text(self, top2020_result):
        rendered = tables.table_1(list(top2020_result.stats.values()))
        assert len(rendered.rows) == 3
        assert "NAME_NOT_RESOLVED" in rendered.text
        windows_row = next(r for r in rendered.rows if r["os"] == "windows")
        stats = top2020_result.stats["windows"]
        assert windows_row["successes"] == stats.successes
        assert windows_row["failures"] == stats.failures
        assert sum(windows_row["errors"].values()) == stats.failures
        assert windows_row["errors"]["NAME_NOT_RESOLVED"] > 0


class TestTable2:
    def test_marginals(self, malicious_result):
        rendered = tables.table_2(
            malicious_result.findings,
            malicious_result.stats,
            {
                "malware": S.MALWARE_COUNT,
                "abuse": S.ABUSE_COUNT,
                "phishing": S.PHISHING_COUNT,
            },
        )
        malware = next(r for r in rendered.rows if r["category"] == "malware")
        assert malware["localhost"] == {"windows": 72, "linux": 83, "mac": 75}
        assert malware["lan"] == {"windows": 8, "linux": 7, "mac": 7}
        abuse = next(r for r in rendered.rows if r["category"] == "abuse")
        assert abuse["localhost"] == {"windows": 0, "linux": 0, "mac": 0}
        assert abuse["lan"] == {"windows": 1, "linux": 1, "mac": 1}


class TestTable3:
    def test_windows_column_top(self, top2020_result):
        rendered = tables.table_3(top2020_result.findings)
        (data,) = rendered.rows
        windows = data["windows"]
        assert windows[0][1] == "ebay.com"
        assert len(windows) == 10
        assert data["linux"][0][1] == "hola.org"


class TestTable4:
    def test_contents(self):
        rendered = tables.table_4()
        assert len(rendered.rows) == 21
        assert "Windows Remote Desktop" in rendered.text
        assert "TeamViewer" in rendered.text


class TestLocalhostTables:
    def test_table5_row_population(self, top2020_result):
        rendered = tables.table_5(top2020_result.findings)
        assert len(rendered.rows) == 107
        fraud = [
            r for r in rendered.rows
            if r["behavior"] is BehaviorClass.FRAUD_DETECTION
        ]
        assert len(fraud) == 35
        assert all("wss" in r["schemes"] for r in fraud)
        assert "ebay.com" in rendered.text

    def test_table7_excludes_2020_active_sites(
        self, top2021_result, top2020_result
    ):
        rendered = tables.table_7(
            top2021_result.findings, top2020_result.findings
        )
        domains = {r["domain"] for r in rendered.rows}
        assert "iqiyi.com" in domains
        assert "cibc.com" in domains
        assert "ebay.com" not in domains  # continuing, not new
        # 39 newly-observed sites (Table 7 lists 40 rows, one of which —
        # betfair.com — also appears in Table 5 as continuing; see
        # EXPERIMENTS.md).
        assert len(rendered.rows) == 39

    def test_table8_covers_categories(self, malicious_result):
        rendered = tables.table_8(malicious_result.findings)
        categories = {r["category"] for r in rendered.rows}
        assert categories == {"malware", "phishing"}
        assert len(rendered.rows) == 148

    def test_table11_dev_kind_sections(self, top2020_result):
        rendered = tables.table_11(top2020_result.findings)
        assert len(rendered.rows) == 45
        assert "livereload" in rendered.text.lower()


class TestLanTables:
    def test_table6(self, top2020_result):
        rendered = tables.table_6(top2020_result.findings)
        assert len(rendered.rows) == 9
        addresses = {a for r in rendered.rows for a in r["addresses"]}
        assert "10.10.34.35" in addresses
        assert "192.168.64.160" in addresses

    def test_table9(self, malicious_result):
        rendered = tables.table_9(malicious_result.findings)
        assert len(rendered.rows) == 9
        assert {r["category"] for r in rendered.rows} == {"malware", "abuse"}

    def test_table10(self, top2021_result):
        rendered = tables.table_10(top2021_result.findings)
        assert len(rendered.rows) == 8
        assert any(r["domain"] == "unib.ac.id" for r in rendered.rows)


class TestFigures:
    def test_figure2_regions(self, top2020_result):
        fig = figures.figure_2(top2020_result.findings)
        assert fig.data["total"] == 107
        assert fig.data["regions"]["windows"] == 48
        assert fig.data["regions"]["linux+mac+windows"] == 41

    def test_figure3_series(self, top2020_result):
        fig = figures.figure_3(top2020_result.findings)
        assert set(fig.data["ranks"]) == {"windows", "linux", "mac"}
        assert "Windows (n=92)" in fig.text

    def test_figure4_combined(self, top2020_result, malicious_result):
        fig = figures.figure_4(
            top2020_result.findings, malicious_result.findings
        )
        assert "top" in fig.data and "malicious" in fig.data
        windows_wss = fig.data["top"]["windows"]["wss"]
        assert sum(windows_wss.values()) >= 490

    def test_figure5_timing(self, top2020_result):
        fig = figures.figure_5(top2020_result.findings)
        assert set(fig.data["localhost"]) == {"windows", "linux", "mac"}
        assert set(fig.data["lan"]) == {"windows", "linux", "mac"}
        assert "seconds to first request" in fig.text

    def test_figure6_has_no_mac(self, top2021_result):
        fig = figures.figure_6(top2021_result.findings)
        assert "mac" not in fig.data["localhost"]

    def test_figure8(self, top2021_result):
        fig = figures.figure_8(top2021_result.findings)
        assert set(fig.data) <= {"windows", "linux"}
        assert fig.data["windows"]["wss"]

    def test_figure9(self, top2021_result):
        fig = figures.figure_9(top2021_result.findings)
        assert len(fig.data["ranks"]["windows"]) == 82
        assert len(fig.data["ranks"]["linux"]) == 48
