"""Tests (including property-based) for the statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    Summary,
    ascii_cdf,
    ecdf,
    fraction_below,
    median,
    quantile,
)

_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestEcdf:
    def test_simple(self):
        xs, ps = ecdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ps == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        assert ecdf([]) == ([], [])

    @given(_samples)
    @settings(max_examples=50, deadline=None)
    def test_monotone_and_ends_at_one(self, values):
        xs, ps = ecdf(values)
        assert xs == sorted(values)
        assert all(a <= b for a, b in zip(ps, ps[1:]))
        assert ps[-1] == pytest.approx(1.0)


class TestQuantile:
    def test_median_of_odd(self):
        assert median([1.0, 9.0, 5.0]) == 5.0

    def test_median_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_extremes(self):
        values = [4.0, 1.0, 7.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    @given(_samples, st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_min_max(self, values, q):
        result = quantile(values, q)
        assert min(values) <= result <= max(values)

    @given(_samples)
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_q(self, values):
        qs = [0.0, 0.25, 0.5, 0.75, 1.0]
        results = [quantile(values, q) for q in qs]
        assert all(a <= b for a, b in zip(results, results[1:]))


class TestSummary:
    def test_of(self):
        summary = Summary.of([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.minimum == 1.0
        assert summary.median == 3.0
        assert summary.maximum == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.of([])


class TestFractionBelow:
    def test_basic(self):
        assert fraction_below([1.0, 2.0, 3.0, 4.0], 2.0) == 0.5

    def test_empty(self):
        assert fraction_below([], 10.0) == 0.0

    @given(_samples)
    @settings(max_examples=50, deadline=None)
    def test_at_max_everything_is_below(self, values):
        assert fraction_below(values, max(values)) == 1.0


class TestAsciiCdf:
    def test_renders_all_series(self):
        text = ascii_cdf(
            {"Windows": [1.0, 2.0], "Linux": [0.5]}, title="delays"
        )
        assert "delays" in text
        assert "Windows" in text and "Linux" in text

    def test_empty_series_handled(self):
        assert "(no data)" in ascii_cdf({"Windows": []})

    def test_final_row_reaches_one(self):
        text = ascii_cdf({"s": [1.0, 5.0]}, max_x=5.0)
        assert text.strip().splitlines()[-1].split()[-1] == "1.000"
