"""Tests for the RQ1/RQ2/RQ3 analysis modules over campaign fixtures."""

import pytest

from repro.analysis import rq1, rq2, rq3
from repro.core.addresses import Locality
from repro.core.signatures import BehaviorClass, DeveloperErrorKind


class TestRq1:
    def test_summary_matches_figure_2a(self, top2020_result):
        summary = rq1.summarize_activity(
            top2020_result.findings, Locality.LOCALHOST
        )
        assert summary.total_sites == 107
        assert summary.per_os == {"windows": 92, "linux": 54, "mac": 54}
        assert summary.os_exclusive("windows") == 48
        assert summary.os_exclusive("linux") == 2
        assert summary.os_exclusive("mac") == 5
        assert summary.all_os_equivalent == 41

    def test_rank_series_cover_all_active_sites(self, top2020_result):
        series = rq1.ranks_by_os(top2020_result.findings, Locality.LOCALHOST)
        assert len(series["windows"]) == 92
        assert series["windows"] == sorted(series["windows"])

    def test_top_ranked_windows_leads_with_ebay(self, top2020_result):
        top = rq1.top_ranked(
            top2020_result.findings, Locality.LOCALHOST, "windows", n=10
        )
        assert top[0].domain == "ebay.com"
        assert len(top) == 10

    def test_top_ranked_linux_leads_with_hola(self, top2020_result):
        top = rq1.top_ranked(
            top2020_result.findings, Locality.LOCALHOST, "linux", n=3
        )
        assert top[0].domain == "hola.org"

    def test_sites_within_top_10k(self, top2020_result):
        # The paper reports 19 sites ranked within the top 10K showing
        # local activity.  At reduced population scale the seeded ranks
        # compress by the same factor, so we scale the threshold.
        scale = 0.005
        threshold = int(10_000 * scale)
        high = rq1.sites_within_rank(
            top2020_result.findings, Locality.LOCALHOST, threshold
        )
        assert len(high) >= 15

    def test_compare_rounds(self, top2020_result, top2021_result):
        crawled_2020 = {"citi.com", "iqiyi.com", "ebay.com"}
        comparison = rq1.compare_rounds(
            top2020_result.findings,
            top2021_result.findings,
            Locality.LOCALHOST,
            first_round_crawled=crawled_2020 | {
                f.domain for f in top2020_result.findings
            },
        )
        assert comparison.second_round_total == 82
        assert "citi.com" in comparison.stopped
        assert "ebay.com" in comparison.continuing
        assert "iqiyi.com" in comparison.newly_active_previously_crawled
        assert "didox.uz" in comparison.newly_active_not_previously_crawled


class TestRq2:
    def test_windows_wss_dominates_2020(self, top2020_result):
        breakdowns = rq2.protocol_port_breakdowns(
            top2020_result.findings, Locality.LOCALHOST
        )
        windows = breakdowns["windows"]
        assert windows.dominant_scheme() == "wss"
        assert windows.by_scheme["wss"][3389] == 35  # one probe per TM site
        share = rq2.websocket_share(
            top2020_result.findings, Locality.LOCALHOST, "windows"
        )
        assert share > 0.5

    def test_linux_mac_prefer_http(self, top2020_result):
        breakdowns = rq2.protocol_port_breakdowns(
            top2020_result.findings, Locality.LOCALHOST
        )
        for os_name in ("linux", "mac"):
            totals = breakdowns[os_name].scheme_totals()
            http_like = totals.get("http", 0) + totals.get("https", 0)
            assert http_like / breakdowns[os_name].total_requests > 0.5

    def test_lan_requests_use_web_ports(self, top2020_result):
        breakdowns = rq2.protocol_port_breakdowns(
            top2020_result.findings, Locality.LAN
        )
        for breakdown in breakdowns.values():
            for scheme, ports in breakdown.by_scheme.items():
                assert scheme in ("http", "https")
                assert set(ports) <= {80, 443}

    def test_timing_medians_match_figure_5a(self, top2020_result):
        from repro.analysis.stats import median

        delays = rq2.first_request_delays_s(
            top2020_result.findings, Locality.LOCALHOST
        )
        # Windows median ≈ 10 s; Linux and Mac ≈ 5 s or less (Figure 5a).
        assert 7.0 <= median(delays["windows"]) <= 12.0
        assert median(delays["linux"]) <= 6.0
        assert median(delays["mac"]) <= 6.0
        # Everything lands inside the 20-second monitoring window.
        assert max(max(v) for v in delays.values()) < 20.0

    def test_lan_timing_tails(self, top2020_result):
        delays = rq2.first_request_delays_s(
            top2020_result.findings, Locality.LAN
        )
        assert max(delays["windows"]) <= 5.5  # Figure 5b: max 5 s on Windows
        assert max(delays["linux"]) > 10.0  # 16 s Linux tail
        assert max(delays["mac"]) > 10.0  # 15 s Mac tail


class TestRq3:
    def test_behavior_counts(self, top2020_result):
        counts = rq3.behavior_counts(top2020_result.findings, Locality.LOCALHOST)
        assert counts[BehaviorClass.FRAUD_DETECTION] == 35
        assert counts[BehaviorClass.DEVELOPER_ERROR] == 45

    def test_dev_error_breakdown_matches_table_11(self, top2020_result):
        breakdown = rq3.dev_error_breakdown(
            top2020_result.findings, Locality.LOCALHOST
        )
        assert breakdown[DeveloperErrorKind.LOCAL_FILE_SERVER] == 25
        assert breakdown[DeveloperErrorKind.PEN_TEST] == 1
        assert breakdown[DeveloperErrorKind.LIVERELOAD] == 5
        assert breakdown[DeveloperErrorKind.REDIRECT] == 2
        assert breakdown[DeveloperErrorKind.SOCKJS_NODE] == 5
        assert breakdown[DeveloperErrorKind.OTHER_LOCAL_SERVICE] == 7

    def test_scanners_are_windows_only(self, top2020_result):
        assert (
            rq3.windows_only_fraction(
                top2020_result.findings,
                BehaviorClass.FRAUD_DETECTION,
                Locality.LOCALHOST,
            )
            == 1.0
        )
        assert (
            rq3.windows_only_fraction(
                top2020_result.findings,
                BehaviorClass.DEVELOPER_ERROR,
                Locality.LOCALHOST,
            )
            < 0.2
        )

    def test_phishing_clone_detection(self, malicious_result):
        clones = rq3.detect_phishing_clones(malicious_result.findings)
        assert clones.count == 18
        assert "customer-ebay.com" in clones.clone_domains
        assert clones.impersonated_hint["customer-ebay.com"] == "ebay.com"

    def test_attribution_table_shape(self, top2020_result):
        rows = rq3.attribution_table(top2020_result.findings, Locality.LOCALHOST)
        assert len(rows) == 107
        domains = [row[0] for row in rows]
        assert "ebay.com" in domains


@pytest.mark.parametrize("locality", [Locality.LOCALHOST, Locality.LAN])
def test_summaries_are_internally_consistent(top2020_result, locality):
    summary = rq1.summarize_activity(top2020_result.findings, locality)
    assert sum(summary.overlap.values()) == summary.total_sites
    for os_name, total in summary.per_os.items():
        from_regions = sum(
            count for oses, count in summary.overlap.items() if os_name in oses
        )
        assert from_regions == total
