"""Tests for the full study report generator."""

from repro.analysis.report_doc import StudyResults, render_report


class TestRenderReport:
    def test_full_report(self, top2020_result, top2021_result, malicious_result):
        report = render_report(
            StudyResults(
                top2020=top2020_result,
                top2021=top2021_result,
                malicious=malicious_result,
            )
        )
        # One document containing every section.
        assert "Crawl statistics (Table 1)" in report
        assert "RQ1" in report and "RQ2" in report and "RQ3" in report
        assert "107 localhost-active sites" in report
        assert "ThreatMetrix Inc." in report
        assert "The 2021 re-measurement" in report
        assert "Malicious webpages" in report
        assert "Phishing clones inheriting anti-fraud scans: 18" in report
        assert "ebay.com" in report
        assert "rank CDFs" in report

    def test_top2020_only_report(self, top2020_result):
        report = render_report(StudyResults(top2020=top2020_result))
        assert "The 2021 re-measurement" not in report
        assert "Malicious webpages" not in report
        assert "107 localhost-active sites" in report
