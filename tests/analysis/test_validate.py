"""Tests for the paper-target scorecard validator."""

import pytest

from repro.analysis.validate import (
    Scorecard,
    validate,
    validate_malicious,
    validate_top2020,
    validate_top2021,
)


class TestScorecard:
    def test_exact_check(self):
        card = Scorecard()
        card.add("x", 10, 10)
        card.add("y", 10, 11)
        assert card.passed == 1
        assert card.failed == 1
        assert not card.all_passed
        assert [c.name for c in card.failures()] == ["y"]

    def test_tolerances(self):
        card = Scorecard()
        card.add("atol", 100, 102, atol=3)
        card.add("rtol", 100, 104, rtol=0.05)
        card.add("tight", 100, 104, rtol=0.01)
        assert [c.passed for c in card.checks] == [True, True, False]

    def test_render(self):
        card = Scorecard()
        card.add("thing", 1, 2, note="why")
        text = card.render()
        assert "[FAIL] thing" in text
        assert "why" in text
        assert "0/1 checks passed" in text


class TestCampaignValidation:
    def test_top2020_all_pass(self, top2020_result):
        card = validate_top2020(top2020_result)
        assert card.all_passed, card.render()
        assert len(card.checks) >= 14

    def test_top2021_all_pass(self, top2021_result):
        card = validate_top2021(top2021_result)
        assert card.all_passed, card.render()

    def test_malicious_all_pass(self, malicious_result):
        card = validate_malicious(malicious_result)
        assert card.all_passed, card.render()

    def test_dispatch_by_name(self, top2020_result):
        card = validate(top2020_result)
        assert card.all_passed

    def test_unknown_campaign_rejected(self, top2020_result):
        from dataclasses import replace

        broken = replace(top2020_result)  # CampaignResult is not frozen…
        broken.name = "mystery"
        with pytest.raises(ValueError):
            validate(broken)

    def test_detects_regressions(self, top2020_result):
        """Drop a finding and the scorecard must notice."""
        from dataclasses import replace

        pruned = replace(top2020_result)
        pruned.findings = [
            f for f in top2020_result.findings if f.domain != "ebay.com"
        ]
        card = validate_top2020(pruned)
        assert not card.all_passed
        names = {c.name for c in card.failures()}
        assert "2020 localhost sites" in names
